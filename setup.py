"""Setup shim.

The offline environment lacks the ``wheel`` package, so pip's PEP-517
editable path (which shells out to ``bdist_wheel``) fails. This shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (and plain
``python setup.py develop``) work; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
