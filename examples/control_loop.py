"""Fault injection beyond neural networks: a PID control loop.

The paper: "BFI can be used to inject faults into programs other than
neural networks, with the only assumption being that of end-to-end
differentiability." This example runs the complete BDLFI pipeline on a
PID controller driving a second-order plant:

* the controller's stored gains (kp, ki, kd) are the fault surface,
* the spec is "settles the setpoint within tolerance",
* campaigns measure how often bit flips in the gains push trajectories
  out of spec, and gradient sensitivity finds the most dangerous bit.

Run:  python examples/control_loop.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import BayesianFaultInjector
from repro.faults import TargetSpec
from repro.programs import PIDController, make_pid_dataset
from repro.protect import ProtectionScheme, evaluate_scheme
from repro.sensitivity import TaylorSensitivity, critical_bit_search


def main() -> None:
    controller = PIDController(kp=8.0, ki=2.0, kd=3.0)
    setpoints, labels = make_pid_dataset(controller, n=48, rng=0)
    print(f"golden controller: {np.mean(labels == 0):.0%} of setpoints settle within spec")

    injector = BayesianFaultInjector(
        controller, setpoints, labels, spec=TargetSpec.weights_and_biases(), seed=0
    )

    print("\nverdict divergence vs flip probability in the stored gains:")
    rows = []
    for p in (1e-4, 1e-3, 1e-2, 1e-1):
        campaign = injector.forward_campaign(p, samples=120)
        lo, hi = campaign.posterior.credible_interval()
        rows.append({"p": p, "diverged_%": 100 * campaign.mean_error,
                     "ci_lo_%": 100 * lo, "ci_hi_%": 100 * hi})
    print(format_table(rows))

    # Which single bit is most dangerous? (differentiability at work)
    sensitivity = TaylorSensitivity(controller, setpoints, labels, injector.parameter_targets)
    result = critical_bit_search(injector, sensitivity, candidates=16)
    if result.found:
        target, element, bit = result.sites[0]
        print(f"\nmost critical stored bit: {target}[{element}] bit {bit} "
              f"(found in {result.forward_passes} simulations)")

    # Protect the exponent bits of the gains (ECC on one byte per word).
    comparison = evaluate_scheme(
        injector, ProtectionScheme.field_everywhere("exponent"), p=1e-2, samples=120
    )
    print("\nexponent-byte ECC on the gain registers:")
    print(format_table([comparison.summary_row()]))


if __name__ == "__main__":
    main()
