"""One-call resilience assessment.

``assess_model`` runs the full BDLFI battery — golden run, probability
sweep with knee detection, masked/SDC/DUE outcome taxonomy at the knee,
gradient bit-field sensitivity, and per-layer vulnerability — and renders
the result as a markdown report a reliability engineer can file.

Run:  python examples/assessment.py
"""

from repro.core import assess_model
from repro.data import ArrayDataset, DataLoader, two_moons
from repro.nn import paper_mlp
from repro.train import Adam, Trainer


def main() -> None:
    train_x, train_y = two_moons(800, noise=0.12, rng=0)
    model = paper_mlp(rng=0)
    Trainer(model, Adam(model.parameters(), lr=0.01)).fit(
        DataLoader(ArrayDataset(train_x, train_y), batch_size=32, shuffle=True, rng=1),
        epochs=40,
    )
    eval_x, eval_y = two_moons(300, noise=0.12, rng=5)

    assessment = assess_model(
        model,
        eval_x,
        eval_y,
        seed=2019,
        samples_per_point=120,
        outcome_samples=200,
        layerwise_samples=60,
    )
    print(assessment.to_markdown())


if __name__ == "__main__":
    main()
