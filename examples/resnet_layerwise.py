"""Layer-by-layer injection into ResNet-18 (paper Fig. 3, finding F3).

Trains a reduced-width ResNet-18 (identical topology to the paper's
network) on the procedural image dataset, then injects faults into one
layer at a time and tests whether layer depth predicts vulnerability.
The paper — contradicting Li et al. SC'17 — finds it does not.

Expect a few minutes of CPU time (it trains a ResNet from scratch).

Run:  python examples/resnet_layerwise.py
"""

import numpy as np

from repro.analysis import format_table, rank_correlation, scatter_plot
from repro.core import LayerwiseCampaign
from repro.data import DataLoader, SyntheticImageConfig, make_synthetic_images
from repro.nn.models import resnet18_cifar_small
from repro.train import Adam, Trainer


def main() -> None:
    config = SyntheticImageConfig(image_size=12, noise=4.5, seed=11)
    train_set, test_set = make_synthetic_images(config, 2000, 300)

    model = resnet18_cifar_small(num_classes=config.num_classes, rng=0)
    print(f"training ResNet-18 ({model.num_parameters():,} parameters) ...")
    result = Trainer(model, Adam(model.parameters(), lr=2e-3)).fit(
        DataLoader(train_set, batch_size=64, shuffle=True, rng=3),
        epochs=6,
        val_loader=DataLoader(test_set, batch_size=200),
    )
    print(f"golden accuracy: {result.final_val_accuracy:.1%}")

    campaign = LayerwiseCampaign(
        model,
        test_set.features[:64],
        test_set.labels[:64],
        p=1e-4,
        samples=25,
        chains=1,
        seed=0,
    ).run()

    table = campaign.table()
    print(format_table(table, columns=["depth", "layer", "error_pct", "parameters"]))

    depths = np.asarray([row["depth"] for row in table], dtype=float)
    errors = np.asarray([row["error_pct"] for row in table], dtype=float)
    print(scatter_plot(depths, errors, title="error (%) vs injected-layer depth", marker="x"))

    depth_stats = campaign.depth_correlation()
    print(f"\ndepth vs error:  Spearman rho = {depth_stats['spearman_rho']:+.3f} "
          f"(p = {depth_stats['spearman_p']:.3f})  -> finding F3: no depth relationship")

    # What *does* predict vulnerability? Layer size.
    sizes = np.asarray([row["parameters"] for row in table], dtype=float)
    size_stats = rank_correlation(sizes, errors)
    print(f"size  vs error:  Spearman rho = {size_stats['spearman_rho']:+.3f} "
          f"(p = {size_stats['spearman_p']:.2e})  -> exposure scales with stored bits")


if __name__ == "__main__":
    main()
