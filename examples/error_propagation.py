"""Tracing a fault through the network, and guarding against the damage.

Two post-campaign analyses on the two-moons MLP:

1. **propagation trace** — follow a concrete bit flip layer by layer
   (clean-vs-faulted activation divergence), the mechanistic view behind
   the paper's finding F3;
2. **margin guard** — the runtime counterpart of finding F1: flag
   low-confidence inputs for verified execution and measure how many
   fault-induced misclassifications that captures.

Run:  python examples/error_propagation.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import BayesianFaultInjector, trace_fault_propagation
from repro.data import ArrayDataset, DataLoader, two_moons
from repro.faults import BernoulliBitFlipModel, FaultConfiguration, TargetSpec
from repro.nn import paper_mlp
from repro.protect import MarginGuard
from repro.train import Adam, Trainer


def main() -> None:
    train_x, train_y = two_moons(800, noise=0.12, rng=0)
    model = paper_mlp(rng=0)
    Trainer(model, Adam(model.parameters(), lr=0.01)).fit(
        DataLoader(ArrayDataset(train_x, train_y), batch_size=32, shuffle=True, rng=1),
        epochs=40,
    )
    eval_x, eval_y = two_moons(300, noise=0.12, rng=5)
    injector = BayesianFaultInjector(
        model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )

    # --- 1. trace one sampled fault configuration ---------------------- #
    rng = np.random.default_rng(7)
    configuration = FaultConfiguration.sample(
        injector.parameter_targets, BernoulliBitFlipModel(2e-3), rng
    )
    trace = trace_fault_propagation(model, eval_x, configuration)
    print(f"fault configuration: {configuration}")
    print(format_table(trace.table()))
    print(f"first corrupted layer : {trace.first_corrupted_layer()}")
    print(f"divergence amplification (output/first): {trace.amplification():.2f}x")
    print(f"predictions changed   : {trace.prediction_change_fraction:.1%}")

    # --- 2. margin-guard coverage curve -------------------------------- #
    guard = MarginGuard(model)
    curve = guard.coverage_curve(
        eval_x,
        BernoulliBitFlipModel(1e-4),
        injector.parameter_targets,
        flag_fractions=(0.05, 0.1, 0.2, 0.4),
        samples=200,
        rng=1,
    )
    print("\nmargin-guard coverage (flag low-confidence inputs for verification):")
    print(format_table([evaluation.summary_row() for evaluation in curve]))


if __name__ == "__main__":
    main()
