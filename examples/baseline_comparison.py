"""BDLFI vs traditional fault injection (paper Section I / experiment E7).

Runs three estimators of the single-bit-flip SDC rate over the same golden
network — the exhaustive Ares-style sweep (ground truth), a Li-et-al-style
random injector, and BDLFI's conditional K=1 campaign — and checks they
agree; then shows the capability the traditional injectors lack: BDLFI's
full multi-bit Bernoulli posterior at several flip probabilities.

Run:  python examples/baseline_comparison.py
"""

import numpy as np

from repro.analysis import format_table
from repro.baselines import ExhaustiveBitInjector, RandomFaultInjector, compare_estimators
from repro.core import BayesianFaultInjector, StratifiedErrorEstimator
from repro.data import ArrayDataset, DataLoader, two_moons
from repro.faults import FaultConfiguration, TargetSpec
from repro.nn import paper_mlp
from repro.train import Adam, Trainer


def main() -> None:
    train_x, train_y = two_moons(800, noise=0.12, rng=0)
    model = paper_mlp(rng=0)
    Trainer(model, Adam(model.parameters(), lr=0.01)).fit(
        DataLoader(ArrayDataset(train_x, train_y), batch_size=32, shuffle=True, rng=1),
        epochs=40,
    )
    eval_x, eval_y = two_moons(300, noise=0.12, rng=5)
    spec = TargetSpec.weights_and_biases()

    # Ground truth: every (element, bit) site once.
    exhaustive = ExhaustiveBitInjector(model, eval_x, eval_y, spec=spec, seed=2)
    truth = exhaustive.run()
    sites = sum(truth.count_by_bit.values())
    truth_hits = int(round(sum(truth.sdc_by_bit[b] * truth.count_by_bit[b] for b in truth.sdc_by_bit)))
    print(f"exhaustive sweep: {sites} sites, ground-truth SDC rate {truth_hits / sites:.3%}")
    print("\nper-field breakdown (why most flips are benign):")
    print(format_table(truth.field_table()))

    # Traditional random FI.
    random_fi = RandomFaultInjector(model, eval_x, eval_y, spec=spec, seed=1)
    campaign = random_fi.run(500)
    print(f"\nrandom FI (500 injections): {campaign.summary()}")

    # BDLFI under the matched model.
    injector = BayesianFaultInjector(model, eval_x, eval_y, spec=spec, seed=3)
    estimator = StratifiedErrorEstimator(injector, samples_per_stratum=1)
    rng = np.random.default_rng(4)
    golden_predictions = injector.predictions_under(
        FaultConfiguration.empty(injector.parameter_targets)
    )
    hits = 0
    n = 500
    for _ in range(n):
        configuration = estimator.configuration_with_flips(1, rng)
        predictions = injector.predictions_under(configuration)
        hits += int((predictions != golden_predictions).any())
    print(f"BDLFI conditional K=1 ({n} draws): SDC-like rate {hits / n:.3%}")

    agreement = compare_estimators("bdlfi", hits, n, "random-fi",
                                   int(round(campaign.sdc_rate * len(campaign))), len(campaign))
    print(f"two-proportion test p = {agreement.p_value:.3f} -> agree: {agreement.agree}")

    # And the part traditional FI cannot do: the full Bernoulli posterior.
    print("\nBDLFI multi-bit Bernoulli campaigns (beyond traditional FI):")
    rows = []
    for p in (1e-4, 1e-3, 1e-2):
        result = injector.forward_campaign(p, samples=200)
        lo, hi = result.posterior.credible_interval()
        rows.append({"p": p, "mean_error_%": 100 * result.mean_error,
                     "ci_lo_%": 100 * lo, "ci_hi_%": 100 * hi,
                     "mean_flips/draw": result.mean_flips})
    print(format_table(rows))


if __name__ == "__main__":
    main()
