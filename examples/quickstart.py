"""Quickstart: train a golden network and run your first BDLFI campaign.

Walks the paper's four-step procedure end to end:

1. train the network to obtain the golden weights;
2. choose the bit-flip fault model (Bernoulli per-bit AVF);
3. build the Bayesian fault injector over the golden network;
4. infer the distribution of classification error under faults, with the
   MCMC-mixing completeness check.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis import histogram_plot
from repro.core import BayesianFaultInjector
from repro.data import ArrayDataset, DataLoader, two_moons
from repro.faults import TargetSpec
from repro.nn import paper_mlp
from repro.train import Adam, Trainer


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Golden run: train the paper's Fig. 1 MLP (32 hidden units).
    # ------------------------------------------------------------------ #
    train_x, train_y = two_moons(800, noise=0.12, rng=0)
    model = paper_mlp(in_features=2, num_classes=2, rng=0)
    trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
    result = trainer.fit(
        DataLoader(ArrayDataset(train_x, train_y), batch_size=32, shuffle=True, rng=1),
        epochs=40,
    )
    print(f"golden network trained: accuracy {result.final_train_accuracy:.1%}")

    # ------------------------------------------------------------------ #
    # 2–3. Fault model + injector. TargetSpec picks the fault surfaces —
    # here every stored weight and bias, the paper's W' = e ⊕ W model.
    # ------------------------------------------------------------------ #
    eval_x, eval_y = two_moons(300, noise=0.12, rng=5)
    injector = BayesianFaultInjector(
        model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=42
    )
    print(f"golden classification error: {injector.golden_error:.2%}")

    # ------------------------------------------------------------------ #
    # 4. Inference: the distribution of classification error at p = 1e-3.
    # ------------------------------------------------------------------ #
    campaign = injector.forward_campaign(p=1e-3, samples=400, chains=4)
    posterior = campaign.posterior
    lo, hi = posterior.credible_interval()
    print(f"\nfault-injected error at p=1e-3: {posterior.mean:.2%} "
          f"(95% CI [{lo:.2%}, {hi:.2%}]), vs golden {posterior.golden_error:.2%}")
    print(f"P(faults degrade the network)  : {posterior.exceedance_probability():.1%}")

    counts, edges = posterior.histogram(bins=12)
    print("\nerror distribution under faults (cf. paper Fig. 1 (3)):")
    print(histogram_plot(counts, edges))

    # The BDLFI stopping rule: keep injecting until MCMC mixing says the
    # campaign is complete (more injections cannot move the estimate).
    adaptive = injector.run_until_complete(p=1e-3, chains=4, batch_steps=50, max_steps=1000)
    print(f"\nadaptive campaign: {adaptive.completeness}")
    print(f"forward passes spent: {adaptive.total_evaluations}")


if __name__ == "__main__":
    main()
