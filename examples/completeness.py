"""Campaign completeness via MCMC mixing (paper advantage #1).

Shows the diagnostics BDLFI uses to decide when an injection campaign is
complete — split-R̂ (Gelman–Rubin), effective sample size, and Monte-Carlo
standard error — converging as chains grow, and the adaptive campaign
stopping as soon as the criterion fires.

Run:  python examples/completeness.py
"""

from repro.analysis import format_table
from repro.core import BayesianFaultInjector
from repro.data import ArrayDataset, DataLoader, two_moons
from repro.faults import TargetSpec
from repro.mcmc import CompletenessCriterion, effective_sample_size, split_r_hat
from repro.nn import paper_mlp
from repro.train import Adam, Trainer


def main() -> None:
    train_x, train_y = two_moons(800, noise=0.12, rng=0)
    model = paper_mlp(rng=0)
    Trainer(model, Adam(model.parameters(), lr=0.01)).fit(
        DataLoader(ArrayDataset(train_x, train_y), batch_size=32, shuffle=True, rng=1),
        epochs=40,
    )

    eval_x, eval_y = two_moons(300, noise=0.12, rng=5)
    injector = BayesianFaultInjector(
        model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )

    # A 4-chain MCMC campaign; watch the diagnostics as the chains grow.
    campaign = injector.mcmc_campaign(p=5e-3, chains=4, steps=500)
    matrix = campaign.chains.matrix()
    rows = []
    for steps in (25, 50, 100, 200, 350, 500):
        prefix = matrix[:, :steps]
        rows.append(
            {
                "steps/chain": steps,
                "R-hat": round(split_r_hat(prefix), 4),
                "ESS": round(effective_sample_size(prefix), 1),
                "estimate_%": round(100 * prefix.mean(), 2),
            }
        )
    print("mixing diagnostics as the campaign grows (4 MH chains):")
    print(format_table(rows))

    # The stopping rule in action: stop as soon as further injections
    # cannot move the measured hypothesis by more than the tolerance.
    criterion = CompletenessCriterion(r_hat_threshold=1.05, min_ess=100, stderr_tolerance=0.01)
    adaptive = injector.run_until_complete(
        p=5e-3, criterion=criterion, chains=4, batch_steps=50, max_steps=2000
    )
    print(f"\nadaptive campaign: {adaptive.completeness}")
    print(f"stopped after {adaptive.total_evaluations} forward passes "
          f"(a naive fixed-N campaign would guess a budget in advance)")


if __name__ == "__main__":
    main()
