"""Error vs flip probability with two-regime detection (paper Figs. 2/4).

Sweeps the paper's log grid of flip probabilities over a trained MLP and
fits the two-regime model: a flat region where faults are absorbed, a knee,
and a steep region where error climbs — "operating at the knee of these
curves provides the optimal performance-reliability trade-offs".

Run:  python examples/flip_sweep.py
"""

import numpy as np

from repro.analysis import format_table, line_plot
from repro.core import BayesianFaultInjector, ProbabilitySweep
from repro.data import ArrayDataset, DataLoader, two_moons
from repro.faults import TargetSpec
from repro.nn import paper_mlp
from repro.train import Adam, Trainer


def main() -> None:
    train_x, train_y = two_moons(800, noise=0.12, rng=0)
    model = paper_mlp(rng=0)
    Trainer(model, Adam(model.parameters(), lr=0.01)).fit(
        DataLoader(ArrayDataset(train_x, train_y), batch_size=32, shuffle=True, rng=1),
        epochs=40,
    )

    eval_x, eval_y = two_moons(300, noise=0.12, rng=5)
    injector = BayesianFaultInjector(
        model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=2019
    )

    sweep = ProbabilitySweep(
        injector, p_values=tuple(np.logspace(-5, -1, 13)), samples=150, chains=2
    ).run()

    print(format_table(sweep.table()))
    print()
    print(
        line_plot(
            sweep.probabilities(),
            100 * sweep.errors(),
            log_x=True,
            title="classification error (%) vs flip probability",
            x_label="flip probability p",
            y_label="% error",
            reference=100 * sweep.golden_error,
        )
    )

    fit = sweep.fit_regimes(truncate_saturation=True)
    print(f"\ntwo regimes detected: {fit.has_two_regimes}")
    print(f"knee (optimal reliability/performance trade-off) at p = {fit.knee_p:.2e}")
    print(f"flat-regime slope : {fit.slope_flat:+.4f} error/decade")
    print(f"steep-regime slope: {fit.slope_steep:+.4f} error/decade")


if __name__ == "__main__":
    main()
