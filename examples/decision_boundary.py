"""Decision-boundary fault sensitivity (paper Fig. 1 ③, finding F1).

Trains the paper MLP on two-moons, then maps the probability that a
Bernoulli fault draw changes the prediction at each point of the input
plane. The ASCII heatmap is the log-error-probability panel of Fig. 1;
the band table and rank correlation quantify "the most likely
classification errors are produced as a result of faults that happen at
the decision boundary".

Run:  python examples/decision_boundary.py
"""

from repro.analysis import format_table, heatmap
from repro.core import DecisionBoundaryAnalysis
from repro.data import ArrayDataset, DataLoader, two_moons
from repro.faults import BernoulliBitFlipModel
from repro.nn import paper_mlp
from repro.train import Adam, Trainer


def main() -> None:
    train_x, train_y = two_moons(800, noise=0.12, rng=0)
    model = paper_mlp(rng=0)
    Trainer(model, Adam(model.parameters(), lr=0.01)).fit(
        DataLoader(ArrayDataset(train_x, train_y), batch_size=32, shuffle=True, rng=1),
        epochs=40,
    )

    analysis = DecisionBoundaryAnalysis(
        model,
        bounds=(-1.5, 2.5, -1.2, 1.7),
        resolution=48,
        fault_model=BernoulliBitFlipModel(1e-3),
        seed=7,
    )
    boundary_map = analysis.run(samples=150)

    print("golden decision regions (class id per cell):")
    print(heatmap(boundary_map.golden_prediction.astype(float), legend="class"))

    print("\nlog10 P(prediction flips under a fault draw):")
    print(heatmap(boundary_map.log_flip_probability(), legend="log10 flip probability"))

    print("\nmean flip probability by distance band (near boundary -> far):")
    print(format_table(boundary_map.band_summary(6)))

    correlation = boundary_map.distance_correlation()
    print(
        f"\nSpearman(distance to boundary, flip probability) = "
        f"{correlation['spearman_rho']:+.3f} (p = {correlation['spearman_p']:.2e})"
    )
    print("negative rho == errors concentrate at the boundary (finding F1)")


if __name__ == "__main__":
    main()
