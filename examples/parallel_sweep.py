"""Declarative campaign specs and the parallel execution engine.

Builds the same probability sweep as ``flip_sweep.py`` but drives it
through the CampaignSpec API: each point of the sweep becomes a frozen
``ForwardSpec``, and a ``ParallelCampaignExecutor`` fans the specs over a
process pool. Because every campaign draws its randomness from a stream
keyed by (seed, stream name, p) — never by execution order — the parallel
sweep is bit-identical to the sequential one, which the script verifies.

Run:  python examples/parallel_sweep.py
"""

import functools
import time

import numpy as np

from repro.analysis import format_table
from repro.core import BayesianFaultInjector, ProbabilitySweep
from repro.data import ArrayDataset, DataLoader, two_moons
from repro.exec import ForwardSpec, InjectorRecipe, ParallelCampaignExecutor
from repro.faults import TargetSpec
from repro.nn import paper_mlp
from repro.train import Adam, Trainer

P_VALUES = tuple(np.logspace(-5, -1, 13))


def main() -> None:
    train_x, train_y = two_moons(800, noise=0.12, rng=0)
    model = paper_mlp(rng=0)
    Trainer(model, Adam(model.parameters(), lr=0.01)).fit(
        DataLoader(ArrayDataset(train_x, train_y), batch_size=32, shuffle=True, rng=1),
        epochs=40,
    )
    eval_x, eval_y = two_moons(300, noise=0.12, rng=5)

    # A recipe is everything a worker process needs to rebuild the injector:
    # the golden weights (shipped as a state dict), the eval batch, the
    # target spec, and the seed. The model builder recreates the
    # architecture on the worker; the recipe restores the trained weights.
    recipe = InjectorRecipe.from_model(
        model,
        eval_x,
        eval_y,
        spec=TargetSpec.weights_and_biases(),
        seed=2019,
        model_builder=functools.partial(paper_mlp, rng=0),
    )

    # One frozen, validated spec per sweep point.
    specs = [ForwardSpec(p=p, samples=150, chains=2) for p in P_VALUES]

    executor = ParallelCampaignExecutor(recipe, workers=4)
    started = time.perf_counter()
    results = executor.run(specs)
    parallel_s = time.perf_counter() - started
    stats = executor.stats

    print(format_table([r.summary_row() for r in results]))
    print(
        f"\n{stats.tasks} campaigns in {parallel_s:.2f}s "
        f"(parallel={stats.parallel}, retries={stats.retries}, "
        f"crashes={stats.crashes})"
    )

    # The same sweep through the one-process path — bit-identical results.
    injector = BayesianFaultInjector(
        model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=2019
    )
    sequential = ProbabilitySweep(
        injector, p_values=P_VALUES, spec=ForwardSpec(p=1e-3, samples=150, chains=2)
    ).run()
    identical = all(
        np.array_equal(par.chains.matrix(), seq.campaign.chains.matrix())
        for par, seq in zip(results, sequential.points)
    )
    print(f"parallel results bit-identical to sequential: {identical}")


if __name__ == "__main__":
    main()
