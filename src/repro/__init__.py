"""repro — BDLFI: Bayesian Deep Learning based Fault Injection.

A full reproduction of *"Towards a Bayesian Approach for Assessing Fault
Tolerance of Deep Neural Networks"* (Banerjee, Cyriac, Jha, Kalbarczyk,
Iyer — DSN 2019), including every substrate the paper depends on, built
from scratch on numpy:

============  =========================================================
subpackage    role
============  =========================================================
``tensor``    reverse-mode autodiff engine (the differentiable substrate)
``nn``        layers, hooks, and the model zoo (paper MLP, ResNet-18)
``train``     losses / optimizers / Trainer / checkpoints (golden runs)
``data``      2-D toys and the procedural CIFAR-10 stand-in
``bits``      IEEE-754 float32 bit manipulation and mask sampling
``faults``    fault models (Bernoulli AVF et al.), targets, injection
``bayes``     distributions and Bayesian-network graphs (Fig. 1 ②)
``mcmc``      samplers, convergence diagnostics, completeness criterion
``core``      BDLFI: campaigns, sweeps, layerwise & boundary studies
``baselines`` traditional random/exhaustive FI comparators
``analysis``  statistics, ASCII figures, result persistence
``utils``     deterministic RNG streams, logging, timing
``sensitivity`` gradient (Taylor) fault-impact prediction & bit search
``protect``   selective ECC-style protection schemes and allocation
``programs``  fault-injectable differentiable non-NN programs
``quant``     int8 storage + code-space fault model
``moments``   analytic (ADF) propagation of fault distributions
``cli``       ``python -m repro`` train/campaign/sweep/assess commands
============  =========================================================

Quickstart::

    from repro.core import BayesianFaultInjector
    from repro.faults import TargetSpec

    injector = BayesianFaultInjector(model, x_eval, y_eval,
                                     spec=TargetSpec.weights_and_biases(),
                                     seed=42)
    campaign = injector.forward_campaign(p=1e-3, samples=500)
    print(campaign.posterior)            # error distribution vs golden run
    print(injector.run_until_complete(1e-3).completeness)  # stop-when-mixed
"""

from repro.core.injector import BayesianFaultInjector
from repro.exec.executor import InjectorRecipe, ParallelCampaignExecutor
from repro.exec.specs import (
    AdaptiveSpec,
    CampaignSpec,
    ForwardSpec,
    McmcSpec,
    StratifiedSpec,
    TemperedSpec,
    TemperingSpec,
)
from repro.faults.targets import FaultSurface, TargetSpec
from repro.faults.bernoulli import BernoulliBitFlipModel

__version__ = "1.1.0"

__all__ = [
    "BayesianFaultInjector",
    "CampaignSpec",
    "ForwardSpec",
    "McmcSpec",
    "TemperedSpec",
    "TemperingSpec",
    "AdaptiveSpec",
    "StratifiedSpec",
    "InjectorRecipe",
    "ParallelCampaignExecutor",
    "FaultSurface",
    "TargetSpec",
    "BernoulliBitFlipModel",
    "__version__",
]
