"""Parallel campaign execution over a multiprocessing worker pool.

Large BDLFI studies decompose into many *independent* campaigns — one per
flip probability, per layer, per chain configuration. Each campaign is
described by a :class:`~repro.exec.specs.CampaignSpec` and runs against a
:class:`~repro.core.injector.BayesianFaultInjector`; this module ships the
golden weights plus a model builder to worker processes, rebuilds the
injector there, and executes specs concurrently.

Determinism is structural, not accidental: every campaign draws exclusively
from named :class:`~repro.utils.rng.RngFactory` substreams keyed by
``(seed, stream, p)``, so a spec produces bit-identical chains whether it
runs in-process, in a worker, before or after its siblings. Parallel sweeps
therefore match sequential sweeps exactly.

Fault tolerance (fitting, for a fault-injection tool): each task runs in
its own worker process with a per-task timeout; a worker that crashes or
times out is terminated and the task retried a bounded number of attempts
before the executor gives up. ``workers=1`` — or an environment where
process spawning fails — degrades gracefully to in-process sequential
execution.

Attach a :class:`~repro.exec.journal.CampaignJournal` and execution also
becomes *durable*: every completed task is fsync'd to the journal from the
driver process (so it survives worker SIGKILL), journaled tasks are skipped
on re-execution, and — because task identity is the RNG key — a resumed run
is bit-identical to an uninterrupted one.

Failure policy: retries back off exponentially with deterministic jitter,
retry accounting is broken out by cause (crash / timeout / chaos), and a
*poison* task — one that exhausts ``max_attempts`` — either aborts the run
(``on_failure="abort"``, the default) or is quarantined into
``stats.failed_tasks`` with the run continuing degraded
(``on_failure="degrade"``); degraded results carry explicit completeness
accounting so downstream summaries stay honest about what completed.

Chaos sites (:mod:`repro.exec.chaos`): ``worker.sigkill`` /
``worker.hang`` / ``worker.slow_start`` fire inside the worker keyed on
``(task index, attempt)``; ``pipe.drop`` / ``pipe.duplicate`` perturb the
driver's result pipe. All compile to a ``None`` check when chaos is off.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

import repro.obs as obs
from repro.exec import chaos as chaos_mod
from repro.exec.specs import CampaignSpec
from repro.obs import flight as flight_mod
from repro.obs.estimator import publish_outcome
from repro.obs.profile import clock_s
from repro.faults.targets import TargetSpec
from repro.utils.logging import get_logger

__all__ = [
    "InjectorRecipe",
    "CampaignTask",
    "FailedTask",
    "ExecutionStats",
    "ParallelCampaignExecutor",
    "CampaignExecutionError",
]

#: retry causes tracked individually (satellite accounting + metrics names)
RETRY_CAUSES = ("crash", "timeout", "chaos")

_LOGGER = get_logger("exec")


class CampaignExecutionError(RuntimeError):
    """A campaign task failed permanently (attempts exhausted or it raised)."""


@dataclass(frozen=True)
class InjectorRecipe:
    """Everything a worker needs to rebuild a ``BayesianFaultInjector``.

    Two transport modes:

    * *builder + state* (preferred): ``model_builder`` is a picklable
      zero-argument callable constructing the architecture (e.g.
      ``functools.partial(paper_mlp, rng=0)``) and ``state`` is the golden
      checkpoint (a ``state_dict`` of numpy arrays) loaded into it;
    * *embedded model*: the model object itself rides along. Convenient for
      in-process use and fork-started workers; requires the model to pickle
      under spawn-started pools.

    Recipes are immutable and reusable: one recipe can back every task of a
    sweep, while layerwise campaigns build one recipe per layer (different
    target spec and seed).
    """

    inputs: np.ndarray
    labels: np.ndarray
    seed: int = 0
    target_spec: TargetSpec | None = None
    model_builder: Callable[[], Any] | None = None
    state: Mapping[str, np.ndarray] | None = None
    model: Any | None = None
    #: fast-path selection forwarded to the injector (None = auto-detect);
    #: workers rebuild their own prefix caches and batched evaluators, so
    #: the choice travels with the recipe rather than the live injector
    fast: bool | None = None

    def __post_init__(self) -> None:
        if (self.model is None) == (self.model_builder is None):
            raise ValueError("provide exactly one of model / model_builder")
        if self.model is not None and self.state is not None:
            raise ValueError("state only applies to the model_builder transport")

    @classmethod
    def from_model(
        cls,
        model: Any,
        inputs: np.ndarray,
        labels: np.ndarray,
        *,
        spec: TargetSpec | None = None,
        seed: int = 0,
        model_builder: Callable[[], Any] | None = None,
        fast: bool | None = None,
    ) -> "InjectorRecipe":
        """Capture a live golden model, preferring checkpoint transport.

        With ``model_builder`` given, only the architecture recipe and the
        current weights travel to workers; otherwise the model object is
        embedded whole.
        """
        if model_builder is None:
            return cls(
                inputs=inputs, labels=labels, seed=seed, target_spec=spec, model=model, fast=fast
            )
        state = {name: array.copy() for name, array in model.state_dict().items()}
        return cls(
            inputs=inputs,
            labels=labels,
            seed=seed,
            target_spec=spec,
            model_builder=model_builder,
            state=state,
            fast=fast,
        )

    def build(self):
        """Construct the injector (golden model in eval mode + eval batch)."""
        from repro.core.injector import BayesianFaultInjector

        if self.model is not None:
            model = self.model
        else:
            model = self.model_builder()
            if self.state is not None:
                model.load_state_dict(dict(self.state))
        return BayesianFaultInjector(
            model, self.inputs, self.labels, spec=self.target_spec, seed=self.seed, fast=self.fast
        )


@dataclass(frozen=True)
class CampaignTask:
    """One schedulable unit: a spec bound to the recipe that hosts it."""

    spec: CampaignSpec
    recipe: InjectorRecipe


@dataclass(frozen=True)
class FailedTask:
    """One poison task quarantined under ``on_failure="degrade"``."""

    index: int
    key: str | None
    reason: str
    attempts: int
    cause: str  # "crash" | "timeout" | "chaos" | "error"

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "key": self.key,
            "reason": self.reason,
            "attempts": self.attempts,
            "cause": self.cause,
        }


@dataclass
class ExecutionStats:
    """Bookkeeping from the last ``execute`` call."""

    tasks: int = 0
    timeouts: int = 0
    crashes: int = 0
    duration_s: float = 0.0
    parallel: bool = False
    #: tasks satisfied from the campaign journal instead of being re-run
    journal_hits: int = 0
    #: liveness beats emitted for still-running workers (``heartbeat_s``)
    heartbeats: int = 0
    #: retries broken out by cause; ``retries`` is their exact sum
    retries_by_cause: dict[str, int] = field(
        default_factory=lambda: {cause: 0 for cause in RETRY_CAUSES}
    )
    #: result-pipe messages the driver discarded / saw twice (chaos accounting)
    pipe_drops: int = 0
    pipe_duplicates: int = 0
    #: journal appends that failed durably but were tolerated under degrade
    journal_errors: int = 0
    #: poison tasks quarantined instead of aborting (``on_failure="degrade"``)
    failed_tasks: list[FailedTask] = field(default_factory=list)
    #: longest a running worker went without any sign of life (beat or result)
    worst_heartbeat_gap_s: float = 0.0

    @property
    def retries(self) -> int:
        """Total retries across causes (always equals the per-cause sum)."""
        return sum(self.retries_by_cause.values())

    @property
    def failed(self) -> int:
        return len(self.failed_tasks)

    @property
    def completed(self) -> int:
        """Tasks with a usable result (fresh runs plus journal hits)."""
        return self.tasks - self.failed

    def count_retry(self, cause: str) -> None:
        self.retries_by_cause[cause] = self.retries_by_cause.get(cause, 0) + 1

    def note_gap(self, gap_s: float) -> None:
        """Record one observed worker-silence interval (keeps the max)."""
        if gap_s > self.worst_heartbeat_gap_s:
            self.worst_heartbeat_gap_s = gap_s

    def accounting(self) -> dict:
        """Explicit completeness accounting for degraded results.

        ``completed + failed == tasks`` by construction — a task is either
        delivered or named in ``failed_tasks``; there is no third bucket,
        so no silent task loss.
        """
        return {
            "tasks": self.tasks,
            "completed": self.completed,
            "failed": self.failed,
            "failed_tasks": [task.to_dict() for task in self.failed_tasks],
        }

    def to_dict(self) -> dict:
        """Full JSON view of the stats (postmortem bundles, status server)."""
        return {
            **self.accounting(),
            "duration_s": self.duration_s,
            "parallel": self.parallel,
            "journal_hits": self.journal_hits,
            "journal_errors": self.journal_errors,
            "heartbeats": self.heartbeats,
            "worst_heartbeat_gap_s": self.worst_heartbeat_gap_s,
            "retries": self.retries,
            "retries_by_cause": dict(self.retries_by_cause),
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "pipe_drops": self.pipe_drops,
            "pipe_duplicates": self.pipe_duplicates,
        }

    def summary(self) -> str:
        """One-line completion summary (printed by the CLI).

        Leads with wall elapsed and the mean completion rate, then only
        the nonzero extras — a failure line should carry its own timing
        context for triage.
        """
        mode = "parallel" if self.parallel else "sequential"
        rate = f", {self.tasks / self.duration_s:.1f} tasks/s" if self.duration_s > 0 else ""
        line = f"{self.tasks} task(s) in {self.duration_s:.2f}s ({mode}{rate})"
        retry_parts = [
            f"{cause} {count}" for cause, count in self.retries_by_cause.items() if count
        ]
        extras = [
            f"{name} {value}"
            for name, value in (
                ("journal hits", self.journal_hits),
                ("retries", f"{self.retries} ({', '.join(retry_parts)})" if retry_parts else 0),
                ("timeouts", self.timeouts),
                ("crashes", self.crashes),
                ("failed", self.failed),
                (
                    "worst heartbeat gap",
                    f"{self.worst_heartbeat_gap_s:.2f}s" if self.worst_heartbeat_gap_s else 0,
                ),
            )
            if value
        ]
        return f"{line}; {', '.join(extras)}" if extras else line


@dataclass
class _Running:
    process: multiprocessing.process.BaseProcess
    connection: Any
    deadline: float | None
    started: float = 0.0
    last_beat: float = 0.0


def _enact_worker_chaos(chaos_ctx) -> None:
    """Install the shipped plan in the worker and enact the ``worker.*`` sites.

    Decisions key off ``(task index, attempt)``, so they are identical no
    matter which pool slot or machine runs the attempt — and a retried
    attempt rolls fresh coordinates, so a crashy site does not doom a task
    forever (bounded by ``max_attempts`` either way).
    """
    plan, index, attempt = chaos_ctx
    injector = chaos_mod.install(plan)
    if injector.should_fire("worker.sigkill", key=(index, attempt)):
        os._exit(137)  # SIGKILL exit signature: no cleanup, no pipe message
    if injector.should_fire("worker.hang", key=(index, attempt)):
        time.sleep(plan.hang_s)
    if injector.should_fire("worker.slow_start", key=(index, attempt)):
        time.sleep(plan.slow_start_s)


def _worker_main(task: CampaignTask, connection, obs_config=None, chaos_ctx=None) -> None:
    """Worker entry point: rebuild the injector, run the spec, ship the result.

    ``obs_config`` is the driver's :class:`~repro.obs.WorkerObsConfig`:
    applying it first replaces any observability state inherited through
    ``fork`` (and the default WARNING verbosity under spawn) with fresh
    instruments, so worker logs honour the driver's ``set_verbosity`` and
    worker trace events never duplicate driver-recorded ones. Worker-side
    observations ride home as a third tuple element on the result pipe.

    ``chaos_ctx`` is ``(ChaosPlan, task index, attempt)`` when chaos is
    on: the plan is installed worker-side (so journal/persist hooks fire
    in workers too) and the ``worker.*`` sites are enacted at startup.
    """
    try:
        if obs_config is not None:
            obs.apply_worker_config(obs_config)
        if chaos_ctx is not None:
            _enact_worker_chaos(chaos_ctx)
        with obs.span("worker.task", kind=task.spec.kind, p=task.spec.p):
            injector = task.recipe.build()
            result = injector.run(task.spec)
        connection.send(("ok", result, obs.drain_worker_report()))
    except BaseException as exc:  # noqa: BLE001 — everything must cross the pipe
        try:
            connection.send(("error", exc))
        except Exception:
            connection.send(("error", RuntimeError(f"unpicklable worker error: {exc!r}")))
    finally:
        connection.close()


class ParallelCampaignExecutor:
    """Fan a list of campaign specs out over worker processes.

    Parameters
    ----------
    recipe:
        Default :class:`InjectorRecipe` for :meth:`run`; :meth:`execute`
        accepts per-task recipes and ignores this.
    workers:
        Pool width. ``1`` (or an unavailable pool) runs everything
        sequentially in-process — same results, no processes.
    timeout_s:
        Per-task wall-clock budget. A task over budget is terminated and
        counts as a failed attempt. ``None`` disables the timeout.
    max_attempts:
        Total tries per task (first run + retries) before
        :class:`CampaignExecutionError` is raised. Worker *crashes* and
        timeouts are retried; exceptions raised by the campaign itself are
        deterministic and propagate immediately.
    start_method:
        Multiprocessing start method; defaults to ``fork`` where available
        (cheapest, and tolerant of closure-carrying recipes), else the
        platform default.
    journal:
        Optional :class:`~repro.exec.journal.CampaignJournal`. Completed
        tasks are durably recorded (fsync before scheduling continues) and
        journaled tasks are served from the journal instead of re-running —
        bit-identically, since task keys encode the full RNG identity.
    heartbeat_s:
        Liveness interval for still-running workers. Every ``heartbeat_s``
        seconds a running task emits an ``executor.heartbeat`` progress
        event (task index, worker pid, elapsed time), so a hung worker is
        visible long before its timeout fires. ``None`` disables beats.
    on_failure:
        ``"abort"`` (default): a task that exhausts ``max_attempts`` — or
        raises deterministically — raises :class:`CampaignExecutionError`,
        as before. ``"degrade"``: the poison task is quarantined into
        ``stats.failed_tasks``, its result slot stays ``None``, and the
        rest of the run completes; ``stats.accounting()`` then reports
        exactly which tasks completed and which failed.
    backoff_s:
        Base delay before re-scheduling a retried task. Attempt *n* waits
        ``backoff_s * 2**(n-1)``, scaled by a deterministic jitter in
        [0.5, 1.5) derived from the task index and attempt — no RNG
        stream is consumed, and two retried tasks never thundering-herd
        the pool in lockstep. ``0`` (default) retries immediately.
    chaos:
        Optional :class:`~repro.exec.chaos.ChaosPlan`. Installed for the
        duration of :meth:`execute` (unless a plan is already active
        process-wide) and shipped to workers, so the ``worker.*`` and
        ``pipe.*`` sites fire deterministically. Chaos never touches
        campaign RNG streams: a chaos run that completes is bit-identical
        to a clean one.
    """

    def __init__(
        self,
        recipe: InjectorRecipe | None = None,
        workers: int | None = None,
        timeout_s: float | None = None,
        max_attempts: int = 3,
        start_method: str | None = None,
        journal=None,
        heartbeat_s: float | None = None,
        on_failure: str = "abort",
        backoff_s: float = 0.0,
        chaos=None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be positive, got {heartbeat_s}")
        if on_failure not in ("abort", "degrade"):
            raise ValueError(f'on_failure must be "abort" or "degrade", got {on_failure!r}')
        if backoff_s < 0:
            raise ValueError(f"backoff_s must be non-negative, got {backoff_s}")
        self.recipe = recipe
        self.workers = workers
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self._start_method = start_method
        self.journal = journal
        self.heartbeat_s = heartbeat_s
        self.on_failure = on_failure
        self.backoff_s = backoff_s
        self.chaos = chaos
        self.stats = ExecutionStats()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def run(self, specs: Sequence[CampaignSpec], recipe: InjectorRecipe | None = None) -> list:
        """Execute ``specs`` against one recipe; results in spec order."""
        recipe = recipe or self.recipe
        if recipe is None:
            raise ValueError("no recipe: pass one here or to the constructor")
        return self.execute([CampaignTask(spec, recipe) for spec in specs])

    def execute(self, tasks: Sequence[CampaignTask]) -> list:
        """Execute arbitrary (spec, recipe) tasks; results in task order.

        Under ``on_failure="degrade"`` the returned list carries ``None``
        at quarantined-task indexes; consult ``stats.accounting()`` for
        the explicit completed/failed breakdown.
        """
        for task in tasks:
            if not isinstance(task.spec, CampaignSpec):
                raise TypeError(f"task spec must be a CampaignSpec, got {type(task.spec).__name__}")
        self.stats = ExecutionStats(tasks=len(tasks), parallel=self.workers > 1)
        started = clock_s()
        aborted = False
        installed_chaos = False
        if self.chaos is not None and chaos_mod.active() is None:
            chaos_mod.install(self.chaos)
            installed_chaos = True
        try:
            if not tasks:
                return []
            obs.publish("executor.start", tasks=len(tasks), workers=self.workers)
            results: list[Any] = [None] * len(tasks)
            keys, pending = self._partition(tasks, results)
            if not pending:
                return results
            if self.workers == 1:
                self._execute_sequential(tasks, pending, results, keys)
                return results
            try:
                self._execute_parallel(tasks, pending, results, keys)
            except _PoolUnavailable as exc:
                _LOGGER.warning("worker pool unavailable (%s); falling back to sequential", exc)
                self.stats.parallel = False
                failed = {failure.index for failure in self.stats.failed_tasks}
                remaining = [
                    index for index in pending if results[index] is None and index not in failed
                ]
                self._execute_sequential(tasks, remaining, results, keys)
            return results
        except CampaignExecutionError:
            aborted = True
            raise
        finally:
            self.stats.duration_s = clock_s() - started
            self._flush_stats()
            # postmortem before chaos uninstalls, so the bundle names the plan
            if aborted:
                flight_mod.autodump("executor.abort", stats=self.stats.to_dict())
            elif self.stats.failed:
                flight_mod.autodump("executor.degraded", stats=self.stats.to_dict())
            if installed_chaos:
                chaos_mod.uninstall()

    def _flush_stats(self) -> None:
        """Fold executor bookkeeping into the metrics registry and progress stream."""
        stats = self.stats
        registry = obs.metrics()
        if registry is not None:
            registry.inc("executor.tasks", stats.tasks)
            # the aggregate is always the exact sum of the per-cause counters
            registry.inc("executor.retries", stats.retries)
            for cause, count in stats.retries_by_cause.items():
                registry.inc(f"executor.retries.{cause}", count)
            registry.inc("executor.timeouts", stats.timeouts)
            registry.inc("executor.crashes", stats.crashes)
            registry.inc("executor.journal_hits", stats.journal_hits)
            registry.inc("executor.journal_errors", stats.journal_errors)
            registry.inc("executor.heartbeats", stats.heartbeats)
            registry.inc("executor.failed", stats.failed)
            registry.inc("executor.pipe_drops", stats.pipe_drops)
            registry.inc("executor.pipe_duplicates", stats.pipe_duplicates)
            registry.observe("executor.duration_s", stats.duration_s)
            if stats.worst_heartbeat_gap_s:
                registry.set_gauge("executor.worst_heartbeat_gap_s", stats.worst_heartbeat_gap_s)
        obs.publish(
            "executor.complete",
            tasks=stats.tasks,
            duration_s=stats.duration_s,
            parallel=stats.parallel,
            journal_hits=stats.journal_hits,
            retries=stats.retries,
            retries_by_cause=dict(stats.retries_by_cause),
            timeouts=stats.timeouts,
            crashes=stats.crashes,
            heartbeats=stats.heartbeats,
            worst_heartbeat_gap_s=stats.worst_heartbeat_gap_s,
            failed=stats.failed,
        )

    # ------------------------------------------------------------------ #
    # journal plumbing
    # ------------------------------------------------------------------ #

    def _partition(self, tasks: Sequence[CampaignTask], results: list) -> tuple[list, list[int]]:
        """Split tasks into journal hits (filled into ``results``) and pending."""
        if self.journal is None:
            return [None] * len(tasks), list(range(len(tasks)))
        from repro.exec.journal import journal_key

        keys = [journal_key(task) for task in tasks]
        pending: list[int] = []
        for index, key in enumerate(keys):
            cached = self.journal.get(key)
            if cached is not None:
                results[index] = cached
                self.stats.journal_hits += 1
                # journaled results never re-run, so their stamped digest is
                # the only way their work reaches the driver's totals —
                # same for their estimator contribution
                obs.merge_campaign_metrics(cached)
                publish_outcome(
                    index, cached,
                    spec=tasks[index].spec, target=tasks[index].recipe.target_spec,
                )
            else:
                pending.append(index)
        if self.stats.journal_hits:
            _LOGGER.info(
                "journal: %d/%d task(s) already complete; running %d",
                self.stats.journal_hits, len(tasks), len(pending),
            )
        return keys, pending

    def _record(self, key, outcome) -> None:
        """Durably journal one completed task (driver process, fsync'd).

        A failed append (full disk, dying device) aborts the run under
        ``on_failure="abort"`` — losing durability silently would betray
        the resume contract — and is tolerated with accounting under
        ``"degrade"``: the task's *result* is intact, only its journal
        record is missing, so a later resume re-runs it bit-identically.
        """
        if self.journal is None or key is None:
            return
        from repro.exec.journal import JournalWriteError

        try:
            with obs.phase("journal.fsync"):
                self.journal.record(key, outcome)
        except (JournalWriteError, OSError) as exc:
            self.stats.journal_errors += 1
            if self.on_failure == "abort":
                raise CampaignExecutionError(
                    f"journal append failed for task {key!r}: {exc}"
                ) from exc
            _LOGGER.warning(
                "journal append failed for task %r (%s); continuing degraded — "
                "this task will re-run on resume", key, exc,
            )

    # ------------------------------------------------------------------ #
    # sequential fallback
    # ------------------------------------------------------------------ #

    def _execute_sequential(
        self,
        tasks: Sequence[CampaignTask],
        pending: Sequence[int],
        results: list,
        keys: Sequence,
    ) -> None:
        # Rebuild each distinct recipe once; sweeps share a single recipe
        # across every point, so this costs one golden evaluation total.
        injectors: dict[int, Any] = {}
        for index in pending:
            task = tasks[index]
            recipe_key = id(task.recipe)
            try:
                if recipe_key not in injectors:
                    injectors[recipe_key] = task.recipe.build()
                # injector.run merges the campaign digest in-process here, so
                # this path must not merge again (that would double-count)
                outcome = injectors[recipe_key].run(task.spec)
            except Exception as exc:
                # in-process failures are deterministic: retrying cannot help
                if self.on_failure == "abort":
                    raise
                self._quarantine(index, keys[index], f"campaign raised: {exc!r}", 1, "error")
                continue
            results[index] = outcome
            self._record(keys[index], outcome)
            obs.publish("executor.task_done", task=index, campaign=task.spec.kind, p=task.spec.p)
            publish_outcome(index, outcome, spec=task.spec, target=task.recipe.target_spec)

    # ------------------------------------------------------------------ #
    # process-per-task scheduler
    # ------------------------------------------------------------------ #

    def _context(self):
        if self._start_method is not None:
            return multiprocessing.get_context(self._start_method)
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _spawn(self, ctx, task: CampaignTask, obs_config, index: int, attempt: int) -> _Running:
        parent, child = ctx.Pipe(duplex=False)
        plan = self.chaos if self.chaos is not None else chaos_mod.active_plan()
        chaos_ctx = None if plan is None else (plan, index, attempt)
        process = ctx.Process(
            target=_worker_main, args=(task, child, obs_config, chaos_ctx), daemon=True
        )
        try:
            process.start()
        except (OSError, PermissionError, ValueError) as exc:
            parent.close()
            child.close()
            raise _PoolUnavailable(str(exc)) from exc
        child.close()  # the worker holds the write end now
        now = clock_s()
        deadline = None if self.timeout_s is None else now + self.timeout_s
        return _Running(
            process=process, connection=parent, deadline=deadline, started=now, last_beat=now
        )

    def _execute_parallel(
        self,
        tasks: Sequence[CampaignTask],
        pending_indexes: Sequence[int],
        results: list,
        keys: Sequence,
    ) -> None:
        ctx = self._context()
        obs_config = obs.worker_config()
        attempts = {index: 0 for index in pending_indexes}
        # pending entries are (index, not-before time): retries with backoff
        # re-enter the queue with a future ready time and wait their turn
        pending: deque[tuple[int, float]] = deque((index, 0.0) for index in pending_indexes)
        running: dict[int, _Running] = {}
        try:
            while pending or running:
                now = clock_s()
                for _ in range(len(pending)):
                    if len(running) >= self.workers:
                        break
                    index, ready = pending.popleft()
                    if ready > now:
                        pending.append((index, ready))  # not due yet; rotate
                        continue
                    attempts[index] += 1
                    running[index] = self._spawn(ctx, tasks[index], obs_config, index, attempts[index])
                progressed = self._poll(tasks, results, keys, attempts, pending, running)
                if not progressed and (running or pending):
                    time.sleep(0.005)
        finally:
            for entry in running.values():
                entry.process.terminate()
                entry.process.join()
                entry.connection.close()

    def _poll(self, tasks, results, keys, attempts, pending, running) -> bool:
        """One scheduler pass; returns whether any task finished or failed."""
        progressed = False
        for index in list(running):
            entry = running[index]
            if entry.connection.poll(0):
                self.stats.note_gap(clock_s() - entry.last_beat)
                try:
                    with obs.phase("ipc.recv"):
                        message = entry.connection.recv()
                    status, payload = message[0], message[1]
                    report = message[2] if len(message) > 2 else None
                except EOFError:  # died mid-send
                    status, payload, report = None, None, None
                self._reap(entry)
                del running[index]
                progressed = True
                if status == "ok" and chaos_mod.should_fire(
                    "pipe.drop", key=(index, attempts[index])
                ):
                    # the result evaporated in transit; indistinguishable
                    # from a crash at the driver, so it retries as one
                    self.stats.pipe_drops += 1
                    self.stats.crashes += 1
                    self._retry_or_fail(
                        tasks, keys, attempts, pending, index,
                        "result message dropped in transit", cause="chaos",
                    )
                elif status == "ok":
                    self._deliver(tasks, results, keys, index, payload, report)
                    if chaos_mod.should_fire("pipe.duplicate", key=(index, attempts[index])):
                        # re-deliver the same message: the completed-slot
                        # guard must drop it without double-counting
                        self._deliver(tasks, results, keys, index, payload, report)
                elif status == "error":
                    if self.on_failure == "degrade":
                        # deterministic failure: retrying cannot help
                        self._quarantine(
                            index, keys[index], f"failed in worker: {payload!r}",
                            attempts[index], "error",
                        )
                    else:
                        raise CampaignExecutionError(
                            f"campaign {tasks[index].spec!r} failed in worker: {payload!r}"
                        ) from payload
                else:
                    self.stats.crashes += 1
                    self._retry_or_fail(
                        tasks, keys, attempts, pending, index, "crashed mid-result", cause="crash"
                    )
            elif not entry.process.is_alive():
                self.stats.note_gap(clock_s() - entry.last_beat)
                exitcode = entry.process.exitcode
                self._reap(entry)
                del running[index]
                progressed = True
                self.stats.crashes += 1
                self._retry_or_fail(
                    tasks, keys, attempts, pending, index,
                    f"worker died (exit code {exitcode})", cause="crash",
                )
            elif entry.deadline is not None and clock_s() > entry.deadline:
                self.stats.note_gap(clock_s() - entry.last_beat)
                entry.process.terminate()
                self._reap(entry)
                del running[index]
                progressed = True
                self.stats.timeouts += 1
                self._retry_or_fail(
                    tasks, keys, attempts, pending, index,
                    f"timed out after {self.timeout_s:g}s", cause="timeout",
                )
            else:
                self._maybe_beat(index, entry, attempts[index])
        return progressed

    def _deliver(self, tasks, results, keys, index: int, payload, report) -> None:
        """Accept one completed result — exactly once.

        A duplicated result-pipe message (chaos, or a future distributed
        transport that redelivers) lands here for an already-filled slot;
        it is dropped before journaling or metrics so nothing
        double-counts. The journal's own ``record`` is idempotent too —
        defence in depth.
        """
        if results[index] is not None:
            self.stats.pipe_duplicates += 1
            _LOGGER.warning("duplicate result for task %d dropped (already delivered)", index)
            return
        results[index] = payload
        # journal from the driver: a later worker SIGKILL can
        # never take this completed task down with it
        self._record(keys[index], payload)
        self._absorb(tasks[index], index, payload, report)

    def _absorb(self, task: CampaignTask, index: int, payload, report) -> None:
        """Reduce one worker result's observations into the driver.

        The digest stamped on the result carries the worker's metrics
        (merged here exactly once — the worker's own registry dies with
        its process); worker trace events merge into the driver tracer,
        already pid-tagged so Perfetto shows them on worker tracks.
        """
        obs.merge_campaign_metrics(payload)
        if report and report.get("trace"):
            obs.tracer().merge(report["trace"])
        if report and report.get("profile"):
            driver_profiler = obs.profiler()
            if driver_profiler is not None:
                driver_profiler.merge(report["profile"])
        obs.publish("executor.task_done", task=index, campaign=task.spec.kind, p=task.spec.p)
        publish_outcome(index, payload, spec=task.spec, target=task.recipe.target_spec)

    def _maybe_beat(self, index: int, entry: _Running, attempt: int) -> None:
        """Emit a liveness beat for a still-running worker when one is due."""
        if self.heartbeat_s is None:
            return
        now = clock_s()
        if now - entry.last_beat < self.heartbeat_s:
            return
        self.stats.note_gap(now - entry.last_beat)
        entry.last_beat = now
        self.stats.heartbeats += 1
        elapsed = now - entry.started
        _LOGGER.info(
            "task %d still running in pid %s after %.1fs (attempt %d)",
            index, entry.process.pid, elapsed, attempt,
        )
        obs.publish(
            "executor.heartbeat",
            task=index,
            pid=entry.process.pid,
            elapsed_s=elapsed,
            attempt=attempt,
        )

    @staticmethod
    def _reap(entry: _Running) -> None:
        entry.process.join()
        entry.connection.close()

    def _retry_or_fail(
        self, tasks, keys, attempts, pending, index: int, reason: str, cause: str
    ) -> None:
        """Reschedule a failed attempt with backoff, or give up on a poison task.

        Giving up means :class:`CampaignExecutionError` under
        ``on_failure="abort"`` and quarantine under ``"degrade"``.
        """
        if attempts[index] >= self.max_attempts:
            full_reason = f"{reason}; gave up after {attempts[index]} attempt(s)"
            if self.on_failure == "degrade":
                self._quarantine(index, keys[index], full_reason, attempts[index], cause)
                return
            raise CampaignExecutionError(f"campaign {tasks[index].spec!r} {full_reason}")
        self.stats.count_retry(cause)
        delay = self._backoff_delay(index, attempts[index])
        obs.publish(
            "executor.retry", task=index, cause=cause, attempt=attempts[index], backoff_s=delay
        )
        _LOGGER.warning(
            "campaign task %d %s; retrying (attempt %d/%d%s)",
            index, reason, attempts[index] + 1, self.max_attempts,
            f", backoff {delay:.3f}s" if delay else "",
        )
        pending.append((index, clock_s() + delay))

    def _backoff_delay(self, index: int, attempt: int) -> float:
        """Exponential backoff with deterministic jitter in [0.5, 1.5).

        The jitter is a pure hash of ``(task index, attempt)`` — no RNG
        stream is consumed (bit-identity), yet retried tasks de-sync
        instead of thundering back onto the pool in lockstep.
        """
        if self.backoff_s <= 0:
            return 0.0
        jitter = 0.5 + chaos_mod.chaos_uniform(0, "retry.backoff", (index, attempt))
        return self.backoff_s * (2.0 ** (attempt - 1)) * jitter

    def _quarantine(self, index: int, key, reason: str, attempts: int, cause: str) -> None:
        """Record one poison task into ``failed_tasks`` and keep going.

        The result slot stays ``None``; ``stats.accounting()`` names the
        task explicitly, so a degraded result can never silently shrink
        the task space.
        """
        failure = FailedTask(index=index, key=key, reason=reason, attempts=attempts, cause=cause)
        self.stats.failed_tasks.append(failure)
        _LOGGER.error("campaign task %d quarantined (%s): %s", index, cause, reason)
        obs.publish("executor.task_failed", task=index, cause=cause, attempts=attempts)
        registry = obs.metrics()
        if registry is not None:
            registry.inc("executor.task_failed")


class _PoolUnavailable(RuntimeError):
    """Process creation failed; the caller should fall back to sequential."""
