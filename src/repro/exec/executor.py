"""Parallel campaign execution over a multiprocessing worker pool.

Large BDLFI studies decompose into many *independent* campaigns — one per
flip probability, per layer, per chain configuration. Each campaign is
described by a :class:`~repro.exec.specs.CampaignSpec` and runs against a
:class:`~repro.core.injector.BayesianFaultInjector`; this module ships the
golden weights plus a model builder to worker processes, rebuilds the
injector there, and executes specs concurrently.

Determinism is structural, not accidental: every campaign draws exclusively
from named :class:`~repro.utils.rng.RngFactory` substreams keyed by
``(seed, stream, p)``, so a spec produces bit-identical chains whether it
runs in-process, in a worker, before or after its siblings. Parallel sweeps
therefore match sequential sweeps exactly.

Fault tolerance (fitting, for a fault-injection tool): each task runs in
its own worker process with a per-task timeout; a worker that crashes or
times out is terminated and the task retried a bounded number of attempts
before the executor gives up. ``workers=1`` — or an environment where
process spawning fails — degrades gracefully to in-process sequential
execution.

Attach a :class:`~repro.exec.journal.CampaignJournal` and execution also
becomes *durable*: every completed task is fsync'd to the journal from the
driver process (so it survives worker SIGKILL), journaled tasks are skipped
on re-execution, and — because task identity is the RNG key — a resumed run
is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

import repro.obs as obs
from repro.exec.specs import CampaignSpec
from repro.obs.profile import clock_s
from repro.faults.targets import TargetSpec
from repro.utils.logging import get_logger

__all__ = [
    "InjectorRecipe",
    "CampaignTask",
    "ExecutionStats",
    "ParallelCampaignExecutor",
    "CampaignExecutionError",
]

_LOGGER = get_logger("exec")


class CampaignExecutionError(RuntimeError):
    """A campaign task failed permanently (attempts exhausted or it raised)."""


@dataclass(frozen=True)
class InjectorRecipe:
    """Everything a worker needs to rebuild a ``BayesianFaultInjector``.

    Two transport modes:

    * *builder + state* (preferred): ``model_builder`` is a picklable
      zero-argument callable constructing the architecture (e.g.
      ``functools.partial(paper_mlp, rng=0)``) and ``state`` is the golden
      checkpoint (a ``state_dict`` of numpy arrays) loaded into it;
    * *embedded model*: the model object itself rides along. Convenient for
      in-process use and fork-started workers; requires the model to pickle
      under spawn-started pools.

    Recipes are immutable and reusable: one recipe can back every task of a
    sweep, while layerwise campaigns build one recipe per layer (different
    target spec and seed).
    """

    inputs: np.ndarray
    labels: np.ndarray
    seed: int = 0
    target_spec: TargetSpec | None = None
    model_builder: Callable[[], Any] | None = None
    state: Mapping[str, np.ndarray] | None = None
    model: Any | None = None
    #: fast-path selection forwarded to the injector (None = auto-detect);
    #: workers rebuild their own prefix caches and batched evaluators, so
    #: the choice travels with the recipe rather than the live injector
    fast: bool | None = None

    def __post_init__(self) -> None:
        if (self.model is None) == (self.model_builder is None):
            raise ValueError("provide exactly one of model / model_builder")
        if self.model is not None and self.state is not None:
            raise ValueError("state only applies to the model_builder transport")

    @classmethod
    def from_model(
        cls,
        model: Any,
        inputs: np.ndarray,
        labels: np.ndarray,
        *,
        spec: TargetSpec | None = None,
        seed: int = 0,
        model_builder: Callable[[], Any] | None = None,
        fast: bool | None = None,
    ) -> "InjectorRecipe":
        """Capture a live golden model, preferring checkpoint transport.

        With ``model_builder`` given, only the architecture recipe and the
        current weights travel to workers; otherwise the model object is
        embedded whole.
        """
        if model_builder is None:
            return cls(
                inputs=inputs, labels=labels, seed=seed, target_spec=spec, model=model, fast=fast
            )
        state = {name: array.copy() for name, array in model.state_dict().items()}
        return cls(
            inputs=inputs,
            labels=labels,
            seed=seed,
            target_spec=spec,
            model_builder=model_builder,
            state=state,
            fast=fast,
        )

    def build(self):
        """Construct the injector (golden model in eval mode + eval batch)."""
        from repro.core.injector import BayesianFaultInjector

        if self.model is not None:
            model = self.model
        else:
            model = self.model_builder()
            if self.state is not None:
                model.load_state_dict(dict(self.state))
        return BayesianFaultInjector(
            model, self.inputs, self.labels, spec=self.target_spec, seed=self.seed, fast=self.fast
        )


@dataclass(frozen=True)
class CampaignTask:
    """One schedulable unit: a spec bound to the recipe that hosts it."""

    spec: CampaignSpec
    recipe: InjectorRecipe


@dataclass
class ExecutionStats:
    """Bookkeeping from the last ``execute`` call."""

    tasks: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    duration_s: float = 0.0
    parallel: bool = False
    #: tasks satisfied from the campaign journal instead of being re-run
    journal_hits: int = 0
    #: liveness beats emitted for still-running workers (``heartbeat_s``)
    heartbeats: int = 0

    def summary(self) -> str:
        """One-line completion summary (printed by the CLI)."""
        mode = "parallel" if self.parallel else "sequential"
        line = f"{self.tasks} task(s) in {self.duration_s:.2f}s ({mode})"
        extras = [
            f"{name} {value}"
            for name, value in (
                ("journal hits", self.journal_hits),
                ("retries", self.retries),
                ("timeouts", self.timeouts),
                ("crashes", self.crashes),
            )
            if value
        ]
        return f"{line}; {', '.join(extras)}" if extras else line


@dataclass
class _Running:
    process: multiprocessing.process.BaseProcess
    connection: Any
    deadline: float | None
    started: float = 0.0
    last_beat: float = 0.0


def _worker_main(task: CampaignTask, connection, obs_config=None) -> None:
    """Worker entry point: rebuild the injector, run the spec, ship the result.

    ``obs_config`` is the driver's :class:`~repro.obs.WorkerObsConfig`:
    applying it first replaces any observability state inherited through
    ``fork`` (and the default WARNING verbosity under spawn) with fresh
    instruments, so worker logs honour the driver's ``set_verbosity`` and
    worker trace events never duplicate driver-recorded ones. Worker-side
    observations ride home as a third tuple element on the result pipe.
    """
    try:
        if obs_config is not None:
            obs.apply_worker_config(obs_config)
        with obs.span("worker.task", kind=task.spec.kind, p=task.spec.p):
            injector = task.recipe.build()
            result = injector.run(task.spec)
        connection.send(("ok", result, obs.drain_worker_report()))
    except BaseException as exc:  # noqa: BLE001 — everything must cross the pipe
        try:
            connection.send(("error", exc))
        except Exception:
            connection.send(("error", RuntimeError(f"unpicklable worker error: {exc!r}")))
    finally:
        connection.close()


class ParallelCampaignExecutor:
    """Fan a list of campaign specs out over worker processes.

    Parameters
    ----------
    recipe:
        Default :class:`InjectorRecipe` for :meth:`run`; :meth:`execute`
        accepts per-task recipes and ignores this.
    workers:
        Pool width. ``1`` (or an unavailable pool) runs everything
        sequentially in-process — same results, no processes.
    timeout_s:
        Per-task wall-clock budget. A task over budget is terminated and
        counts as a failed attempt. ``None`` disables the timeout.
    max_attempts:
        Total tries per task (first run + retries) before
        :class:`CampaignExecutionError` is raised. Worker *crashes* and
        timeouts are retried; exceptions raised by the campaign itself are
        deterministic and propagate immediately.
    start_method:
        Multiprocessing start method; defaults to ``fork`` where available
        (cheapest, and tolerant of closure-carrying recipes), else the
        platform default.
    journal:
        Optional :class:`~repro.exec.journal.CampaignJournal`. Completed
        tasks are durably recorded (fsync before scheduling continues) and
        journaled tasks are served from the journal instead of re-running —
        bit-identically, since task keys encode the full RNG identity.
    heartbeat_s:
        Liveness interval for still-running workers. Every ``heartbeat_s``
        seconds a running task emits an ``executor.heartbeat`` progress
        event (task index, worker pid, elapsed time), so a hung worker is
        visible long before its timeout fires. ``None`` disables beats.
    """

    def __init__(
        self,
        recipe: InjectorRecipe | None = None,
        workers: int | None = None,
        timeout_s: float | None = None,
        max_attempts: int = 3,
        start_method: str | None = None,
        journal=None,
        heartbeat_s: float | None = None,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be positive, got {heartbeat_s}")
        self.recipe = recipe
        self.workers = workers
        self.timeout_s = timeout_s
        self.max_attempts = max_attempts
        self._start_method = start_method
        self.journal = journal
        self.heartbeat_s = heartbeat_s
        self.stats = ExecutionStats()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def run(self, specs: Sequence[CampaignSpec], recipe: InjectorRecipe | None = None) -> list:
        """Execute ``specs`` against one recipe; results in spec order."""
        recipe = recipe or self.recipe
        if recipe is None:
            raise ValueError("no recipe: pass one here or to the constructor")
        return self.execute([CampaignTask(spec, recipe) for spec in specs])

    def execute(self, tasks: Sequence[CampaignTask]) -> list:
        """Execute arbitrary (spec, recipe) tasks; results in task order."""
        for task in tasks:
            if not isinstance(task.spec, CampaignSpec):
                raise TypeError(f"task spec must be a CampaignSpec, got {type(task.spec).__name__}")
        self.stats = ExecutionStats(tasks=len(tasks), parallel=self.workers > 1)
        started = clock_s()
        try:
            if not tasks:
                return []
            obs.publish("executor.start", tasks=len(tasks), workers=self.workers)
            results: list[Any] = [None] * len(tasks)
            keys, pending = self._partition(tasks, results)
            if not pending:
                return results
            if self.workers == 1:
                self._execute_sequential(tasks, pending, results, keys)
                return results
            try:
                self._execute_parallel(tasks, pending, results, keys)
            except _PoolUnavailable as exc:
                _LOGGER.warning("worker pool unavailable (%s); falling back to sequential", exc)
                self.stats.parallel = False
                remaining = [index for index in pending if results[index] is None]
                self._execute_sequential(tasks, remaining, results, keys)
            return results
        finally:
            self.stats.duration_s = clock_s() - started
            self._flush_stats()

    def _flush_stats(self) -> None:
        """Fold executor bookkeeping into the metrics registry and progress stream."""
        stats = self.stats
        registry = obs.metrics()
        if registry is not None:
            registry.inc("executor.tasks", stats.tasks)
            registry.inc("executor.retries", stats.retries)
            registry.inc("executor.timeouts", stats.timeouts)
            registry.inc("executor.crashes", stats.crashes)
            registry.inc("executor.journal_hits", stats.journal_hits)
            registry.inc("executor.heartbeats", stats.heartbeats)
            registry.observe("executor.duration_s", stats.duration_s)
        obs.publish(
            "executor.complete",
            tasks=stats.tasks,
            duration_s=stats.duration_s,
            parallel=stats.parallel,
            journal_hits=stats.journal_hits,
            retries=stats.retries,
            timeouts=stats.timeouts,
            crashes=stats.crashes,
            heartbeats=stats.heartbeats,
        )

    # ------------------------------------------------------------------ #
    # journal plumbing
    # ------------------------------------------------------------------ #

    def _partition(self, tasks: Sequence[CampaignTask], results: list) -> tuple[list, list[int]]:
        """Split tasks into journal hits (filled into ``results``) and pending."""
        if self.journal is None:
            return [None] * len(tasks), list(range(len(tasks)))
        from repro.exec.journal import journal_key

        keys = [journal_key(task) for task in tasks]
        pending: list[int] = []
        for index, key in enumerate(keys):
            cached = self.journal.get(key)
            if cached is not None:
                results[index] = cached
                self.stats.journal_hits += 1
                # journaled results never re-run, so their stamped digest is
                # the only way their work reaches the driver's totals
                obs.merge_campaign_metrics(cached)
            else:
                pending.append(index)
        if self.stats.journal_hits:
            _LOGGER.info(
                "journal: %d/%d task(s) already complete; running %d",
                self.stats.journal_hits, len(tasks), len(pending),
            )
        return keys, pending

    def _record(self, key, outcome) -> None:
        """Durably journal one completed task (driver process, fsync'd)."""
        if self.journal is not None and key is not None:
            with obs.phase("journal.fsync"):
                self.journal.record(key, outcome)

    # ------------------------------------------------------------------ #
    # sequential fallback
    # ------------------------------------------------------------------ #

    def _execute_sequential(
        self,
        tasks: Sequence[CampaignTask],
        pending: Sequence[int],
        results: list,
        keys: Sequence,
    ) -> None:
        # Rebuild each distinct recipe once; sweeps share a single recipe
        # across every point, so this costs one golden evaluation total.
        injectors: dict[int, Any] = {}
        for index in pending:
            task = tasks[index]
            recipe_key = id(task.recipe)
            if recipe_key not in injectors:
                injectors[recipe_key] = task.recipe.build()
            # injector.run merges the campaign digest in-process here, so
            # this path must not merge again (that would double-count)
            outcome = injectors[recipe_key].run(task.spec)
            results[index] = outcome
            self._record(keys[index], outcome)
            obs.publish("executor.task_done", task=index, campaign=task.spec.kind, p=task.spec.p)

    # ------------------------------------------------------------------ #
    # process-per-task scheduler
    # ------------------------------------------------------------------ #

    def _context(self):
        if self._start_method is not None:
            return multiprocessing.get_context(self._start_method)
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _spawn(self, ctx, task: CampaignTask, obs_config) -> _Running:
        parent, child = ctx.Pipe(duplex=False)
        process = ctx.Process(target=_worker_main, args=(task, child, obs_config), daemon=True)
        try:
            process.start()
        except (OSError, PermissionError, ValueError) as exc:
            parent.close()
            child.close()
            raise _PoolUnavailable(str(exc)) from exc
        child.close()  # the worker holds the write end now
        now = clock_s()
        deadline = None if self.timeout_s is None else now + self.timeout_s
        return _Running(
            process=process, connection=parent, deadline=deadline, started=now, last_beat=now
        )

    def _execute_parallel(
        self,
        tasks: Sequence[CampaignTask],
        pending_indexes: Sequence[int],
        results: list,
        keys: Sequence,
    ) -> None:
        ctx = self._context()
        obs_config = obs.worker_config()
        attempts = {index: 0 for index in pending_indexes}
        pending: deque[int] = deque(pending_indexes)
        running: dict[int, _Running] = {}
        try:
            while pending or running:
                while pending and len(running) < self.workers:
                    index = pending.popleft()
                    attempts[index] += 1
                    running[index] = self._spawn(ctx, tasks[index], obs_config)
                progressed = self._poll(tasks, results, keys, attempts, pending, running)
                if not progressed and running:
                    time.sleep(0.005)
        finally:
            for entry in running.values():
                entry.process.terminate()
                entry.process.join()
                entry.connection.close()

    def _poll(self, tasks, results, keys, attempts, pending, running) -> bool:
        """One scheduler pass; returns whether any task finished or failed."""
        progressed = False
        for index in list(running):
            entry = running[index]
            if entry.connection.poll(0):
                try:
                    with obs.phase("ipc.recv"):
                        message = entry.connection.recv()
                    status, payload = message[0], message[1]
                    report = message[2] if len(message) > 2 else None
                except EOFError:  # died mid-send
                    status, payload, report = None, None, None
                self._reap(entry)
                del running[index]
                progressed = True
                if status == "ok":
                    results[index] = payload
                    # journal from the driver: a later worker SIGKILL can
                    # never take this completed task down with it
                    self._record(keys[index], payload)
                    self._absorb(tasks[index], index, payload, report)
                elif status == "error":
                    raise CampaignExecutionError(
                        f"campaign {tasks[index].spec!r} failed in worker: {payload!r}"
                    ) from payload
                else:
                    self.stats.crashes += 1
                    self._retry_or_raise(tasks, attempts, pending, index, "crashed mid-result")
            elif not entry.process.is_alive():
                exitcode = entry.process.exitcode
                self._reap(entry)
                del running[index]
                progressed = True
                self.stats.crashes += 1
                self._retry_or_raise(
                    tasks, attempts, pending, index, f"worker died (exit code {exitcode})"
                )
            elif entry.deadline is not None and clock_s() > entry.deadline:
                entry.process.terminate()
                self._reap(entry)
                del running[index]
                progressed = True
                self.stats.timeouts += 1
                self._retry_or_raise(
                    tasks, attempts, pending, index, f"timed out after {self.timeout_s:g}s"
                )
            else:
                self._maybe_beat(index, entry, attempts[index])
        return progressed

    def _absorb(self, task: CampaignTask, index: int, payload, report) -> None:
        """Reduce one worker result's observations into the driver.

        The digest stamped on the result carries the worker's metrics
        (merged here exactly once — the worker's own registry dies with
        its process); worker trace events merge into the driver tracer,
        already pid-tagged so Perfetto shows them on worker tracks.
        """
        obs.merge_campaign_metrics(payload)
        if report and report.get("trace"):
            obs.tracer().merge(report["trace"])
        if report and report.get("profile"):
            driver_profiler = obs.profiler()
            if driver_profiler is not None:
                driver_profiler.merge(report["profile"])
        obs.publish("executor.task_done", task=index, campaign=task.spec.kind, p=task.spec.p)

    def _maybe_beat(self, index: int, entry: _Running, attempt: int) -> None:
        """Emit a liveness beat for a still-running worker when one is due."""
        if self.heartbeat_s is None:
            return
        now = clock_s()
        if now - entry.last_beat < self.heartbeat_s:
            return
        entry.last_beat = now
        self.stats.heartbeats += 1
        elapsed = now - entry.started
        _LOGGER.info(
            "task %d still running in pid %s after %.1fs (attempt %d)",
            index, entry.process.pid, elapsed, attempt,
        )
        obs.publish(
            "executor.heartbeat",
            task=index,
            pid=entry.process.pid,
            elapsed_s=elapsed,
            attempt=attempt,
        )

    @staticmethod
    def _reap(entry: _Running) -> None:
        entry.process.join()
        entry.connection.close()

    def _retry_or_raise(self, tasks, attempts, pending, index: int, reason: str) -> None:
        if attempts[index] >= self.max_attempts:
            raise CampaignExecutionError(
                f"campaign {tasks[index].spec!r} {reason}; "
                f"gave up after {attempts[index]} attempt(s)"
            )
        self.stats.retries += 1
        _LOGGER.warning(
            "campaign task %d %s; retrying (attempt %d/%d)",
            index, reason, attempts[index] + 1, self.max_attempts,
        )
        pending.append(index)


class _PoolUnavailable(RuntimeError):
    """Process creation failed; the caller should fall back to sequential."""
