"""Deterministic infrastructure fault injection for the campaign stack.

The library injects faults into *networks* all day; this module injects
faults into *ourselves* — the executor, the journal, the persistence
layer — so the recovery paths the Bayesian assessment depends on are
exercised instead of trusted. A :class:`ChaosPlan` names the sites to
perturb (worker SIGKILL, dropped result-pipe messages, failing fsyncs,
torn journal tails, a full disk) with per-site rates, and the execution
stack consults :func:`should_fire` at each site.

Design constraints, in order:

* **Deterministic.** Every fire/no-fire decision is a pure function of
  ``(plan seed, site, coordinates)`` — a hash, not a live RNG — so a
  chaos run is reproducible from its seed and, crucially, *never touches
  the campaign RNG streams*: a campaign that completes under chaos is
  bit-identical to a clean run.
* **Free when off.** Sites compile to a module-global ``None`` check;
  nothing is imported, allocated, or hashed until a plan is installed.
* **Observable.** Every fired event counts into the attached
  :class:`~repro.obs.MetricsRegistry` (``chaos.fired.<site>``), emits a
  trace span, and publishes a ``chaos.fired`` progress event, so chaos
  runs are forensically reconstructable from their telemetry.

Coordinates: driver-side sites (journal/persist) key decisions off a
per-site visit counter; executor sites key off ``(task index, attempt)``
so the decision for a retry is independent of scheduling order and
identical whether evaluated in the driver or inside the worker process.
"""

from __future__ import annotations

import errno
import hashlib
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = [
    "SITES",
    "ChaosError",
    "ChaosRule",
    "ChaosPlan",
    "ChaosInjector",
    "active",
    "active_plan",
    "install",
    "uninstall",
    "chaos_enabled",
    "should_fire",
    "chaos_uniform",
    "disk_full_error",
]

#: every named injection site wired through the campaign stack
SITES = frozenset(
    {
        "worker.sigkill",      # worker process dies hard at task start
        "worker.hang",         # worker stalls past any reasonable deadline
        "worker.slow_start",   # worker stalls briefly before running
        "pipe.drop",           # a completed result message is discarded
        "pipe.duplicate",      # a completed result message is delivered twice
        "journal.fsync",       # journal fsync raises OSError (EIO)
        "journal.torn_tail",   # the just-appended record is truncated mid-line
        "journal.corrupt_tail",  # the just-appended record is bit-corrupted
        "disk.full",           # journal/persist writes raise ENOSPC
        "persist.fsync",       # atomic-write fsync raises OSError (EIO)
        "persist.replace",     # atomic-write os.replace raises OSError (EIO)
    }
)


class ChaosError(ValueError):
    """A chaos plan is malformed (unknown site, bad rate, bad syntax)."""


@dataclass(frozen=True)
class ChaosRule:
    """Fire policy for one site: probability per visit, capped fire count."""

    rate: float = 0.0
    #: maximum number of fires across the process lifetime (``None`` = unbounded)
    count: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ChaosError(f"chaos rate must be in [0, 1], got {self.rate}")
        if self.count is not None and self.count < 1:
            raise ChaosError(f"chaos count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class ChaosPlan:
    """A frozen, picklable (site → rule) schedule plus the decision seed.

    Plans travel whole to worker processes, so worker-side sites
    (``worker.*``) make the same deterministic decisions the driver would.
    """

    rules: tuple[tuple[str, ChaosRule], ...] = ()
    seed: int = 0
    #: how long a ``worker.hang`` stalls (long enough to trip any timeout)
    hang_s: float = 3600.0
    #: how long a ``worker.slow_start`` stalls (short; exercises heartbeats)
    slow_start_s: float = 0.05

    def __post_init__(self) -> None:
        for site, rule in self.rules:
            if site not in SITES:
                raise ChaosError(f"unknown chaos site {site!r}; choose from {sorted(SITES)}")
            if not isinstance(rule, ChaosRule):
                raise ChaosError(f"site {site!r}: expected a ChaosRule, got {type(rule).__name__}")
        object.__setattr__(self, "rules", tuple(sorted(self.rules)))

    @classmethod
    def from_rates(
        cls, rates: Mapping[str, float | ChaosRule], seed: int = 0, **kwargs
    ) -> "ChaosPlan":
        """Build a plan from a plain ``{site: rate}`` (or rule) mapping."""
        rules = tuple(
            (site, rule if isinstance(rule, ChaosRule) else ChaosRule(rate=float(rule)))
            for site, rule in rates.items()
        )
        return cls(rules=rules, seed=seed, **kwargs)

    @classmethod
    def parse(cls, specs: Iterable[str] | str, seed: int = 0) -> "ChaosPlan":
        """Parse the CLI syntax ``site=rate[:count]``, comma- or list-separated.

        Example: ``worker.sigkill=0.3,journal.torn_tail=0.5:2``.
        """
        if isinstance(specs, str):
            specs = specs.split(",")
        rules: list[tuple[str, ChaosRule]] = []
        for item in specs:
            item = item.strip()
            if not item:
                continue
            site, _, value = item.partition("=")
            if not value:
                raise ChaosError(f"chaos spec {item!r} is not of the form site=rate[:count]")
            rate_text, _, count_text = value.partition(":")
            try:
                rate = float(rate_text)
                count = int(count_text) if count_text else None
            except ValueError as exc:
                raise ChaosError(f"chaos spec {item!r}: {exc}") from exc
            rules.append((site.strip(), ChaosRule(rate=rate, count=count)))
        return cls(rules=tuple(rules), seed=seed)

    def rule(self, site: str) -> ChaosRule | None:
        for name, rule in self.rules:
            if name == site:
                return rule
        return None

    def describe(self) -> str:
        return ",".join(
            f"{site}={rule.rate:g}" + (f":{rule.count}" if rule.count is not None else "")
            for site, rule in self.rules
        )


def chaos_uniform(seed: int, site: str, key: object) -> float:
    """Deterministic uniform in [0, 1) for one (seed, site, coordinate).

    A SHA-256 hash, not an RNG stream: no state, no ordering sensitivity,
    and no interaction with the campaign's ``RngFactory`` substreams.
    """
    digest = hashlib.sha256(f"chaos:{seed}:{site}:{key!r}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class ChaosInjector:
    """Runtime decision engine for one installed :class:`ChaosPlan`.

    Thread-safe; one instance per process. Worker processes build their
    own from the plan the executor ships them.
    """

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._visits: dict[str, int] = {}
        self._fired: dict[str, int] = {}

    def should_fire(self, site: str, key: object = None) -> bool:
        """Decide (deterministically) whether ``site`` misbehaves this visit.

        ``key`` pins the decision to explicit coordinates (task index,
        attempt); without one, a per-site visit counter is used.
        """
        if site not in SITES:
            raise ChaosError(f"unknown chaos site {site!r}")
        rule = self.plan.rule(site)
        if rule is None or rule.rate <= 0.0:
            return False
        with self._lock:
            visit = self._visits.get(site, 0)
            self._visits[site] = visit + 1
            if rule.count is not None and self._fired.get(site, 0) >= rule.count:
                return False
            fire = chaos_uniform(self.plan.seed, site, key if key is not None else visit) < rule.rate
            if fire:
                self._fired[site] = self._fired.get(site, 0) + 1
        if fire:
            self._observe(site, key)
        return fire

    def _observe(self, site: str, key: object) -> None:
        """Route one fired event into the obs stack (metrics + trace + progress)."""
        import repro.obs as obs

        registry = obs.metrics()
        if registry is not None:
            registry.inc("chaos.fired")
            registry.inc(f"chaos.fired.{site}")
        with obs.span("chaos.fired", category="chaos", site=site, key=repr(key)):
            pass
        obs.publish("chaos.fired", site=site, key=repr(key))

    def fired(self) -> dict[str, int]:
        """Fire counts per site (telemetry / soak-harness assertions)."""
        with self._lock:
            return dict(sorted(self._fired.items()))

    def visits(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._visits.items()))

    def __repr__(self) -> str:
        return f"ChaosInjector(plan={self.plan.describe()!r}, fired={sum(self.fired().values())})"


# ---------------------------------------------------------------------- #
# process-global installation (mirrors repro.obs.configure)
# ---------------------------------------------------------------------- #

_active: ChaosInjector | None = None


def active() -> ChaosInjector | None:
    """The installed injector, or ``None`` (chaos off — the default)."""
    return _active


def active_plan() -> ChaosPlan | None:
    """The installed plan, or ``None``; what the executor ships to workers."""
    return None if _active is None else _active.plan


def install(plan: ChaosPlan) -> ChaosInjector:
    """Install a plan process-wide; returns the live injector."""
    global _active
    _active = ChaosInjector(plan)
    return _active


def uninstall() -> None:
    """Disable chaos (every site back to a no-op)."""
    global _active
    _active = None


@contextmanager
def chaos_enabled(plan: ChaosPlan):
    """Scoped install — the test/soak-harness entry point."""
    injector = install(plan)
    try:
        yield injector
    finally:
        uninstall()


def should_fire(site: str, key: object = None) -> bool:
    """Module-level site hook: free (``None`` check) when chaos is off."""
    if _active is None:
        return False
    return _active.should_fire(site, key)


def disk_full_error(path: str) -> OSError:
    """The OSError a full disk raises (ENOSPC), for injection sites."""
    return OSError(errno.ENOSPC, "No space left on device (chaos)", path)
