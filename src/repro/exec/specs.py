"""Declarative campaign specifications.

A :class:`CampaignSpec` captures *everything* about one fault-injection
campaign — inference method, flip probability, sample budget, RNG stream
name — as a frozen, validated, picklable value. Specs decouple the
description of a campaign from the engine that runs it, which is what makes
campaigns schedulable: a list of specs can be executed sequentially by
:meth:`BayesianFaultInjector.run`, or fanned out over a worker pool by
:class:`~repro.exec.executor.ParallelCampaignExecutor` with bit-identical
results (all randomness flows through named
:class:`~repro.utils.rng.RngFactory` substreams derived from the injector
seed, so results never depend on *where* or *when* a spec runs).

The six spec types mirror the injector's inference procedures:

==================  ====================================================
spec                procedure
==================  ====================================================
:class:`ForwardSpec`     i.i.d. ancestral sampling from the fault prior
:class:`McmcSpec`        multi-chain Metropolis–Hastings + diagnostics
:class:`TemperedSpec`    failure-biased MCMC with importance reweighting
:class:`TemperingSpec`   replica-exchange (parallel tempering) ladder
:class:`AdaptiveSpec`    grow-until-complete i.i.d. campaign
:class:`StratifiedSpec`  Hamming-weight-stratified exact decomposition
==================  ====================================================

Validation happens once, at construction; the execution layers can then
trust every field. ``spec.with_p(p)`` rebinds the flip probability, which
is how sweeps turn one *template* spec into a grid of per-point specs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar

from repro.faults.model import FaultModel
from repro.mcmc.mixing import CompletenessCriterion

__all__ = [
    "CampaignSpec",
    "ForwardSpec",
    "McmcSpec",
    "TemperedSpec",
    "TemperingSpec",
    "AdaptiveSpec",
    "StratifiedSpec",
    "spec_from_method",
    "METHOD_SPECS",
]


@dataclass(frozen=True)
class CampaignSpec:
    """Base class: one campaign at one flip probability.

    Attributes
    ----------
    p:
        Bit-flip probability of the Bernoulli fault prior, in (0, 1].
    fault_model:
        Optional explicit fault model; ``None`` means Bernoulli(p).
    stream:
        Root name of the RNG substreams the campaign draws; campaigns with
        distinct stream names (or distinct ``p``) are statistically
        independent and individually reproducible.
    """

    #: dispatch key — ``BayesianFaultInjector.run`` routes to ``_execute_<kind>``
    kind: ClassVar[str] = ""

    p: float
    fault_model: FaultModel | None = None
    stream: str = ""

    def __post_init__(self) -> None:
        if type(self) is CampaignSpec:
            raise TypeError("CampaignSpec is abstract; instantiate a concrete spec")
        if not 0.0 < self.p <= 1.0:
            raise ValueError(f"flip probability must be in (0, 1], got {self.p}")
        # Normalise numpy scalars: RNG stream names embed repr(p), so a
        # np.float64 p would silently select different substreams than the
        # numerically equal python float.
        object.__setattr__(self, "p", float(self.p))
        if not self.stream:
            object.__setattr__(self, "stream", self.kind)

    def with_p(self, p: float) -> "CampaignSpec":
        """A copy of this spec at a different flip probability."""
        return dataclasses.replace(self, p=float(p))

    @staticmethod
    def _require_positive(**fields: int) -> None:
        for name, value in fields.items():
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    @staticmethod
    def _require_fraction(**fields: float) -> None:
        for name, value in fields.items():
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")


@dataclass(frozen=True)
class ForwardSpec(CampaignSpec):
    """i.i.d. Monte Carlo over the fault prior (``forward_campaign``)."""

    kind: ClassVar[str] = "forward"

    samples: int = 200
    chains: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        self._require_positive(samples=self.samples, chains=self.chains)


@dataclass(frozen=True)
class McmcSpec(CampaignSpec):
    """Multi-chain Metropolis–Hastings on the fault prior (``mcmc_campaign``).

    ``fast`` selects the delta-forward chain path for this campaign:
    ``None`` inherits the injector's ``fast`` knob (auto-engage when the
    model supports it), ``True`` requires it (raising when unavailable),
    ``False`` forces the standard per-proposal forward. Results are
    bit-identical either way.
    """

    kind: ClassVar[str] = "mcmc"

    chains: int = 4
    steps: int = 250
    toggle_weight: float = 0.5
    resample_weight: float = 0.5
    discard_fraction: float = 0.25
    criterion: CompletenessCriterion | None = None
    fast: bool | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self._require_positive(chains=self.chains, steps=self.steps)
        self._require_fraction(discard_fraction=self.discard_fraction)
        if self.toggle_weight < 0 or self.resample_weight < 0:
            raise ValueError("proposal weights must be non-negative")
        if self.toggle_weight + self.resample_weight <= 0:
            raise ValueError("at least one of toggle_weight/resample_weight must be positive")


@dataclass(frozen=True)
class TemperedSpec(CampaignSpec):
    """Failure-biased MCMC with importance reweighting (``tempered_campaign``).

    Running this spec yields ``(CampaignResult, weighted_error)`` — the
    self-normalised importance-weighted estimate of the prior-expected
    classification error.
    """

    kind: ClassVar[str] = "tempered"

    beta: float = 0.0
    chains: int = 4
    steps: int = 250
    discard_fraction: float = 0.25
    #: delta-forward selection (None = inherit injector, see :class:`McmcSpec`)
    fast: bool | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.beta < 0:
            raise ValueError(f"beta must be non-negative, got {self.beta}")
        self._require_positive(chains=self.chains, steps=self.steps)
        self._require_fraction(discard_fraction=self.discard_fraction)


@dataclass(frozen=True)
class TemperingSpec(CampaignSpec):
    """Replica-exchange ladder (``parallel_tempering_campaign``)."""

    kind: ClassVar[str] = "tempering"

    chains: int = 2
    sweeps: int = 250
    betas: tuple[float, ...] = (0.0, 5.0, 20.0, 80.0)
    discard_fraction: float = 0.25
    #: delta-forward selection (None = inherit injector, see :class:`McmcSpec`)
    fast: bool | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self._require_positive(chains=self.chains, sweeps=self.sweeps)
        self._require_fraction(discard_fraction=self.discard_fraction)
        if len(self.betas) < 2:
            raise ValueError(f"tempering needs at least two rungs, got {self.betas!r}")
        if any(b < 0 for b in self.betas):
            raise ValueError(f"betas must be non-negative, got {self.betas!r}")


@dataclass(frozen=True)
class AdaptiveSpec(CampaignSpec):
    """Completeness-driven adaptive campaign (``run_until_complete``)."""

    kind: ClassVar[str] = "adaptive"

    chains: int = 4
    batch_steps: int = 50
    max_steps: int = 2000
    criterion: CompletenessCriterion | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self._require_positive(
            chains=self.chains, batch_steps=self.batch_steps, max_steps=self.max_steps
        )
        if self.max_steps < self.batch_steps:
            raise ValueError(
                f"max_steps ({self.max_steps}) must be >= batch_steps ({self.batch_steps})"
            )


@dataclass(frozen=True)
class StratifiedSpec(CampaignSpec):
    """Hamming-weight-stratified estimation (advantage #2)."""

    kind: ClassVar[str] = "stratified"

    samples_per_stratum: int = 25
    mass_tolerance: float = 1e-4
    max_strata: int = 64

    def __post_init__(self) -> None:
        super().__post_init__()
        self._require_positive(
            samples_per_stratum=self.samples_per_stratum, max_strata=self.max_strata
        )
        if not 0.0 < self.mass_tolerance < 1.0:
            raise ValueError(f"mass_tolerance must be in (0, 1), got {self.mass_tolerance}")


#: legacy ``method=`` strings → spec types (the deprecated sweep dispatch)
METHOD_SPECS: dict[str, type[CampaignSpec]] = {
    "forward": ForwardSpec,
    "mcmc": McmcSpec,
    "stratified": StratifiedSpec,
    "adaptive": AdaptiveSpec,
    "tempering": TemperingSpec,
}


def spec_from_method(method: str, p: float, samples: int, chains: int) -> CampaignSpec:
    """Map a legacy method string + per-point budget to a spec.

    Mirrors the historical ``ProbabilitySweep._run_point`` dispatch exactly,
    so deprecated callers get bit-identical campaigns.
    """
    if method == "forward":
        return ForwardSpec(p=p, samples=samples, chains=chains)
    if method == "mcmc":
        return McmcSpec(p=p, chains=chains, steps=max(4, samples // chains))
    if method == "stratified":
        return StratifiedSpec(p=p, samples_per_stratum=max(4, samples // 8))
    if method == "adaptive":
        return AdaptiveSpec(p=p, chains=chains, max_steps=samples)
    if method == "tempering":
        return TemperingSpec(p=p, chains=chains, sweeps=max(4, samples // chains))
    raise ValueError(f"unknown sweep method {method!r}; choose from {sorted(METHOD_SPECS)}")
