"""Crash-safe campaign journaling — kill a campaign, resume it bit-identically.

The paper's completeness argument (stop only when MCMC mixing diagnostics
say more samples won't change the estimate) implies *long* campaigns, and
long campaigns die: OOM-killed workers, pre-empted nodes, Ctrl-C. Without
durability every completed sample dies with them.

:class:`CampaignJournal` is an append-only JSONL ledger of completed
campaign tasks. Each record is keyed by a deterministic *task key* built
from the spec's content fingerprint plus its RNG coordinates
``(seed, stream, p)`` and the target-spec scope. Because every campaign
draws exclusively from named RNG substreams derived from exactly those
coordinates, a journaled result **is** the result the task would produce
if re-run — so a resumed campaign skips journaled work and is bit-identical
to an uninterrupted one, regardless of worker count or completion order.

Durability discipline:

* every record is flushed and ``fsync``'d before the executor moves on —
  a SIGKILL loses at most the in-flight task, never a completed one;
* each line embeds both a SHA-256 content checksum and a CRC-32; a torn
  trailing line (the crash signature of an append-only file) is recovered
  from, and a corrupt record *anywhere* in the file is quarantined into a
  ``<journal>.quarantine`` sidecar while every later record still replays
  — one bad line never costs more than its own task;
* replay is **self-healing**: when torn or corrupt lines are found, the
  journal is atomically rewritten with only the verified records, so
  subsequent appends land on a clean line boundary instead of gluing onto
  torn garbage;
* a failed append (full disk, failing fsync) rolls the file back to its
  pre-append length and raises :class:`JournalWriteError` — the journal
  never keeps a record it cannot prove durable;
* the header carries an optional campaign *fingerprint*; reopening a
  journal under a different fingerprint (changed spec grid, seed, or
  budget) raises :class:`JournalMismatchError` instead of silently mixing
  incompatible results.

Chaos sites (:mod:`repro.exec.chaos`): ``journal.fsync``, ``disk.full``,
``journal.torn_tail``, and ``journal.corrupt_tail`` perturb exactly the
failure modes above; they compile to a ``None`` check when chaos is off.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import zlib
from typing import Any, Iterable, Mapping

import repro.obs as obs
from repro.exec import chaos as chaos_mod
from repro.core.campaign import CampaignResult
from repro.exec.specs import CampaignSpec
from repro.utils.logging import get_logger
from repro.utils.persist import payload_checksum, sanitize_nonfinite
from repro.faults.targets import TargetSpec

__all__ = [
    "JournalError",
    "JournalMismatchError",
    "JournalWriteError",
    "CampaignJournal",
    "spec_fingerprint",
    "target_fingerprint",
    "campaign_fingerprint",
    "task_key",
    "journal_key",
    "encode_outcome",
    "decode_outcome",
]

_LOGGER = get_logger("exec.journal")

_MAGIC = "bdlfi-campaign-journal"
_VERSION = 1


class JournalError(RuntimeError):
    """The journal file is unusable (missing, not a journal, wrong version)."""


class JournalMismatchError(JournalError):
    """The journal belongs to a different campaign than the one resuming."""


class JournalWriteError(JournalError):
    """An append could not be made durable; the file was rolled back.

    Raised on write/flush/fsync failure (full disk, dying device). The
    journal file is truncated back to its pre-append length first, so a
    caught write error never leaves a torn record behind.
    """


# ---------------------------------------------------------------------- #
# fingerprints and task keys
# ---------------------------------------------------------------------- #


def _primitive(value: Any) -> Any:
    """Canonical JSON-friendly view of a spec field, deterministic across runs."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_primitive(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_primitive(item) for item in value)
    if isinstance(value, Mapping):
        return {str(key): _primitive(item) for key, item in sorted(value.items())}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                field.name: _primitive(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if hasattr(value, "__dict__"):  # fault models, completeness criteria, …
        return {
            "__type__": type(value).__name__,
            **{key: _primitive(item) for key, item in sorted(vars(value).items())},
        }
    return repr(value)


def spec_fingerprint(spec: CampaignSpec) -> str:
    """Content hash of a campaign spec (kind + every field, canonicalised)."""
    payload = _primitive(spec)
    payload["kind"] = spec.kind
    return hashlib.sha256(payload_checksum(payload).encode("utf-8")).hexdigest()


def target_fingerprint(target_spec: TargetSpec | None) -> str:
    """Content hash of a target spec; ``None`` hashes like the default spec."""
    return hashlib.sha256(
        payload_checksum(_primitive(target_spec or TargetSpec())).encode("utf-8")
    ).hexdigest()


def campaign_fingerprint(specs: Iterable[CampaignSpec], seed: int) -> str:
    """Campaign-level identity: the spec grid plus the root seed.

    Stored in the journal header; a resume under a different fingerprint
    (different p grid, budget, method, or seed) is rejected loudly.
    """
    payload = {"seed": int(seed), "specs": [spec_fingerprint(spec) for spec in specs]}
    return payload_checksum(payload)


def task_key(spec: CampaignSpec, seed: int, scope: str = "") -> str:
    """Deterministic journal key for one schedulable campaign task.

    The key is the task's full RNG identity — ``(seed, stream, p)`` plus
    the spec content fingerprint and the target-spec scope — so equal keys
    mean bit-identical campaigns and any change to the task re-runs it.
    """
    return (
        f"{spec.kind}:{spec.stream}:p={spec.p!r}:seed={int(seed)}"
        f":spec={spec_fingerprint(spec)[:16]}:scope={scope[:16]}"
    )


def journal_key(task) -> str:
    """Journal key for a :class:`~repro.exec.executor.CampaignTask`."""
    return task_key(
        task.spec,
        seed=task.recipe.seed,
        scope=target_fingerprint(task.recipe.target_spec),
    )


# ---------------------------------------------------------------------- #
# outcome codec
# ---------------------------------------------------------------------- #


def encode_outcome(outcome) -> dict:
    """JSON payload for a campaign outcome (plain result or tempered pair)."""
    if isinstance(outcome, tuple):
        result, weighted = outcome
        return {
            "type": "tempered_pair",
            "result": result.to_dict(),
            "weighted": sanitize_nonfinite(float(weighted)),
        }
    if not isinstance(outcome, CampaignResult):
        raise TypeError(f"cannot journal outcome of type {type(outcome).__name__}")
    return {"type": "campaign", "result": outcome.to_dict()}


def decode_outcome(payload: dict):
    """Inverse of :func:`encode_outcome`."""
    kind = payload.get("type")
    if kind == "tempered_pair":
        from repro.utils.persist import float_from_json

        return (
            CampaignResult.from_dict(payload["result"]),
            float_from_json(payload.get("weighted")),
        )
    if kind == "campaign":
        return CampaignResult.from_dict(payload["result"])
    raise JournalError(f"unknown journal outcome type {kind!r}")


# ---------------------------------------------------------------------- #
# the journal
# ---------------------------------------------------------------------- #


class CampaignJournal:
    """Append-only, fsync'd JSONL ledger of completed campaign tasks.

    Parameters
    ----------
    path:
        Journal file. Created (with a header line) if absent; replayed if
        present.
    fingerprint:
        Optional campaign fingerprint (see :func:`campaign_fingerprint`).
        When both the header and the caller provide one, they must match.
    """

    def __init__(self, path: str, fingerprint: str | None = None) -> None:
        self.path = os.path.abspath(path)
        self.fingerprint = fingerprint
        self._entries: dict[str, dict] = {}
        self._dropped_lines = 0
        #: raw quarantined lines from the last replay: (line number, reason)
        self._quarantined: list[tuple[int, str]] = []
        #: appends that failed durably and were rolled back this session
        self.write_errors = 0
        #: chaos tore the last append mid-line; the next append repairs the boundary
        self._tail_torn = False
        #: successful lookups this session (tasks served without re-running)
        self.hits = 0
        if os.path.exists(self.path):
            self._replay()
        else:
            self._create()
        self._handle = open(self.path, "a", encoding="utf-8")

    @classmethod
    def resume(cls, path: str, fingerprint: str | None = None) -> "CampaignJournal":
        """Open an *existing* journal; missing file is an error (no silent restart)."""
        if not os.path.exists(path):
            raise JournalError(
                f"cannot resume: no journal at {path!r} "
                "(run once without resuming to create it)"
            )
        return cls(path, fingerprint=fingerprint)

    # ------------------------------------------------------------------ #
    # creation / replay
    # ------------------------------------------------------------------ #

    def _create(self) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        header = {"journal": _MAGIC, "version": _VERSION, "fingerprint": self.fingerprint}
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, allow_nan=False) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _replay(self) -> None:
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise JournalError(f"{self.path}: empty file is not a journal")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise JournalError(f"{self.path}: unreadable journal header") from exc
        if not isinstance(header, dict) or header.get("journal") != _MAGIC:
            raise JournalError(f"{self.path}: not a campaign journal")
        if int(header.get("version", 0)) > _VERSION:
            raise JournalError(
                f"{self.path}: journal version {header.get('version')} is newer than "
                f"supported version {_VERSION}"
            )
        recorded = header.get("fingerprint")
        if recorded is not None and self.fingerprint is not None and recorded != self.fingerprint:
            raise JournalMismatchError(
                f"{self.path}: journal was written for a different campaign "
                f"(journal fingerprint {recorded[:12]}…, current campaign "
                f"{self.fingerprint[:12]}…); the spec grid, budget, or seed changed"
            )
        if self.fingerprint is None:
            self.fingerprint = recorded
        good_lines: list[str] = [lines[0]]
        bad: list[tuple[int, str, str]] = []  # (line number, reason, raw text)
        last = len(lines)
        for number, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # An unparsable *final* line is the crash signature of a torn
                # append; anywhere else it is silent corruption. Either way,
                # quarantine exactly that line and keep replaying — one bad
                # record never costs more than its own task.
                reason = "torn tail" if number == last else "unparsable record"
                bad.append((number, reason, line))
                continue
            if (
                not isinstance(entry, dict)
                or "key" not in entry
                or entry.get("sha") != _entry_checksum(entry.get("outcome"))
                or ("crc" in entry and entry["crc"] != _entry_crc(entry.get("outcome")))
            ):
                bad.append((number, "checksum mismatch", line))
                continue
            self._entries[entry["key"]] = entry["outcome"]
            good_lines.append(line)
        if bad:
            self._dropped_lines = len(bad)
            self._quarantined = [(number, reason) for number, reason, _ in bad]
            for number, reason, _ in bad:
                _LOGGER.warning(
                    "%s: quarantining journal line %d (%s); the affected task will re-run",
                    self.path, number, reason,
                )
            self._quarantine(bad)
            self._heal(good_lines)
        # the replayed position feeds live status (/status journal.records),
        # so a resumed campaign reports journaled work it never re-ran
        obs.publish(
            "journal.replayed",
            records=len(self._entries),
            quarantined=len(self._quarantined),
            path=self.path,
        )

    def _quarantine(self, bad: list[tuple[int, str, str]]) -> None:
        """Append the rejected raw lines to the ``.quarantine`` sidecar.

        Forensics only — best effort; a failing sidecar write must never
        block recovery of the journal itself.
        """
        registry = obs.metrics()
        if registry is not None:
            registry.inc("journal.quarantined", len(bad))
        obs.publish("journal.quarantined", lines=len(bad), path=self.path)
        try:
            with open(self.quarantine_path, "a", encoding="utf-8") as handle:
                for number, reason, raw in bad:
                    handle.write(
                        json.dumps(
                            {"journal": self.path, "line": number, "reason": reason, "raw": raw}
                        )
                        + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            _LOGGER.warning("%s: could not write quarantine sidecar: %s", self.path, exc)

    def _heal(self, good_lines: list[str]) -> None:
        """Atomically rewrite the journal with only the verified records.

        After a torn append the file ends mid-line; appending to it would
        glue the next record onto the torn garbage and lose both. Healing
        restores the clean-line-boundary invariant every append relies on.
        """
        from repro.utils.persist import atomic_write_bytes

        with obs.span("journal.heal", category="journal", records=len(good_lines) - 1):
            atomic_write_bytes(self.path, ("\n".join(good_lines) + "\n").encode("utf-8"))
        _LOGGER.info(
            "%s: healed (%d verified record(s) kept, %d quarantined to %s)",
            self.path, len(good_lines) - 1, len(self._quarantined), self.quarantine_path,
        )

    # ------------------------------------------------------------------ #
    # reads / writes
    # ------------------------------------------------------------------ #

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def dropped_lines(self) -> int:
        """Torn/corrupt lines dropped during replay (crash forensics)."""
        return self._dropped_lines

    @property
    def quarantine_path(self) -> str:
        """Sidecar file receiving the raw bytes of rejected journal lines."""
        return self.path + ".quarantine"

    @property
    def quarantined(self) -> list[tuple[int, str]]:
        """(line number, reason) for every line quarantined during replay."""
        return list(self._quarantined)

    def keys(self) -> list[str]:
        return list(self._entries)

    def get(self, key: str):
        """Decoded outcome for ``key``, or ``None`` if not journaled."""
        payload = self._entries.get(key)
        if payload is None:
            return None
        self.hits += 1
        return decode_outcome(payload)

    def record(self, key: str, outcome) -> None:
        """Append one completed task; durable (fsync'd) before returning.

        On any write/flush/fsync failure the file is truncated back to its
        pre-append length and :class:`JournalWriteError` is raised — a
        failed append leaves no torn record behind, and the in-memory
        entry is not kept (the record was never durable).
        """
        if key in self._entries:
            return  # idempotent: re-recording a journaled task is a no-op
        payload = sanitize_nonfinite(encode_outcome(outcome))
        entry = {
            "key": key,
            "sha": _entry_checksum(payload),
            "crc": _entry_crc(payload),
            "outcome": payload,
        }
        self._handle.flush()
        offset = os.fstat(self._handle.fileno()).st_size
        with obs.span("journal.record", category="journal", key=key):
            try:
                if chaos_mod.should_fire("disk.full"):
                    raise chaos_mod.disk_full_error(self.path)
                if self._tail_torn:
                    # restore the line boundary a chaos tear destroyed, so
                    # this append never glues onto the torn fragment
                    self._handle.write("\n")
                    self._tail_torn = False
                self._handle.write(json.dumps(entry, allow_nan=False) + "\n")
                self._handle.flush()
                with obs.span("journal.fsync", category="journal"):
                    if chaos_mod.should_fire("journal.fsync"):
                        raise OSError("fsync failed (chaos)")
                    os.fsync(self._handle.fileno())
            except OSError as exc:
                self._rollback(offset)
                self.write_errors += 1
                raise JournalWriteError(
                    f"{self.path}: could not durably append record for {key!r} "
                    f"({exc}); file rolled back to its last durable record"
                ) from exc
        self._tamper_tail(offset)
        self._entries[key] = payload
        obs.publish("journal.append", key=key, records=len(self._entries))

    def _rollback(self, offset: int) -> None:
        """Truncate the file back to ``offset`` (pre-append state), best effort."""
        try:
            os.ftruncate(self._handle.fileno(), offset)
        except OSError as exc:  # the device is truly gone; replay will heal
            _LOGGER.warning("%s: rollback after failed append also failed: %s", self.path, exc)

    def _tamper_tail(self, offset: int) -> None:
        """Chaos-only: tear or bit-corrupt the record just appended.

        Simulates a crash mid-append (``journal.torn_tail``: the line loses
        its tail on disk) or silent media corruption
        (``journal.corrupt_tail``: a few bytes flip, length preserved). The
        in-memory entry survives — only *durability* was damaged, exactly
        like the real failure — so the damage is observable on replay.
        """
        if chaos_mod.active() is None:
            return
        fd = self._handle.fileno()
        end = os.fstat(fd).st_size
        length = end - offset
        if length < 4:
            return
        if chaos_mod.should_fire("journal.torn_tail"):
            cut = 1 + int(
                chaos_mod.chaos_uniform(chaos_mod.active().plan.seed, "torn.cut", offset)
                * (length - 2)
            )
            os.ftruncate(fd, offset + cut)
            self._tail_torn = True
            _LOGGER.info("%s: chaos tore the journal tail record", self.path)
        elif chaos_mod.should_fire("journal.corrupt_tail"):
            # ASCII garbage: stays valid UTF-8, and lands either as invalid
            # JSON (unparsable record) or as string content whose checksum
            # no longer matches — both quarantine paths get exercised.
            os.pwrite(fd, b"####", offset + max(1, length // 2))
            _LOGGER.info("%s: chaos corrupted the journal tail record", self.path)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"CampaignJournal(path={self.path!r}, entries={len(self)})"


def _entry_checksum(outcome_payload) -> str:
    """Short content checksum guarding each journal line against corruption."""
    return payload_checksum(outcome_payload)[:16]


def _entry_crc(outcome_payload) -> int:
    """CRC-32 of the canonical outcome serialisation (cheap bit-rot guard).

    Complements the SHA prefix: a different algorithm over the same bytes,
    so a corruption that somehow survives one check still trips the other.
    Entries written before CRCs existed (no ``crc`` key) replay unchecked.
    """
    from repro.utils.persist import canonical_dumps

    return zlib.crc32(canonical_dumps(outcome_payload).encode("utf-8"))
