"""repro.exec — declarative campaign specs and parallel execution.

The execution layer separates *what* a campaign is (a frozen, validated
:class:`~repro.exec.specs.CampaignSpec`) from *where* it runs (in-process
via :meth:`BayesianFaultInjector.run`, or across a worker pool via
:class:`~repro.exec.executor.ParallelCampaignExecutor`). Because every
campaign draws only from named RNG substreams, the two are bit-identical.

Quick example::

    from repro.exec import ForwardSpec, InjectorRecipe, ParallelCampaignExecutor

    specs = [ForwardSpec(p=p, samples=200) for p in p_grid]
    recipe = InjectorRecipe.from_model(model, eval_x, eval_y, seed=42,
                                       model_builder=build_model)
    campaigns = ParallelCampaignExecutor(recipe, workers=4).run(specs)
"""

from repro.exec.specs import (
    AdaptiveSpec,
    CampaignSpec,
    ForwardSpec,
    McmcSpec,
    METHOD_SPECS,
    StratifiedSpec,
    TemperedSpec,
    TemperingSpec,
    spec_from_method,
)
from repro.exec.chaos import (
    ChaosError,
    ChaosPlan,
    ChaosRule,
    chaos_enabled,
)
from repro.exec.executor import (
    CampaignExecutionError,
    CampaignTask,
    ExecutionStats,
    FailedTask,
    InjectorRecipe,
    ParallelCampaignExecutor,
)
from repro.exec.journal import (
    CampaignJournal,
    JournalError,
    JournalMismatchError,
    JournalWriteError,
    campaign_fingerprint,
    journal_key,
    task_key,
)

__all__ = [
    "CampaignSpec",
    "ForwardSpec",
    "McmcSpec",
    "TemperedSpec",
    "TemperingSpec",
    "AdaptiveSpec",
    "StratifiedSpec",
    "spec_from_method",
    "METHOD_SPECS",
    "InjectorRecipe",
    "CampaignTask",
    "ExecutionStats",
    "FailedTask",
    "ParallelCampaignExecutor",
    "CampaignExecutionError",
    "ChaosError",
    "ChaosPlan",
    "ChaosRule",
    "chaos_enabled",
    "CampaignJournal",
    "JournalError",
    "JournalMismatchError",
    "JournalWriteError",
    "campaign_fingerprint",
    "journal_key",
    "task_key",
]
