"""Randomized kill-and-recover soak harness for the chaos-hardened stack.

One soak (:func:`run_soak`) drives the full recovery story end to end:

1. run a clean, chaos-free reference campaign set;
2. run the same task set under an aggressive, seeded :class:`ChaosPlan`
   (worker SIGKILL, dropped result messages, torn/corrupted journal
   tails, failing fsyncs), journaled, with ``on_failure="degrade"``;
3. repeatedly "restart": reopen the journal from disk (exercising
   replay, CRC verification, tail quarantine, and self-healing) and
   resume the campaign, easing chaos off across rounds the way a real
   incident subsides;
4. assert the contract from the paper-reproduction standpoint:

   * **completion ⇒ bit-identity** — if every task eventually completes,
     the recovered results match the clean run exactly (wall-clock
     fields aside);
   * **degradation ⇒ exact accounting** — if tasks remain failed, the
     executor's completeness accounting sums *exactly* to the task
     space: every task is either delivered or named in
     ``failed_tasks``; silent loss is an assertion failure.

The harness is fully deterministic per seed — both the campaigns
(named RNG substreams) and the chaos (hash-based decisions) — so a CI
failure reproduces locally with the same ``--seed``.

CLI (the CI ``chaos-smoke`` job)::

    PYTHONPATH=src python -m repro.exec.soak --seeds 3 --artifacts out/

Exit code 0 iff every seed upholds the contract.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys

import numpy as np

from repro.exec import chaos as chaos_mod
from repro.exec.executor import CampaignTask, InjectorRecipe, ParallelCampaignExecutor
from repro.exec.journal import CampaignJournal
from repro.exec.specs import ForwardSpec
from repro.obs import flight as flight_mod

__all__ = ["SoakFailure", "run_soak", "main"]

#: probability grid for the soak task set (small but multi-point, so the
#: journal sees several independent records per run)
P_GRID = (1e-4, 1e-3, 1e-2, 5e-2)
#: per-campaign budget: big enough to be real work, small enough for CI
SAMPLES = 16
CHAINS = 2
#: restart cycles before declaring the run permanently degraded
MAX_ROUNDS = 4


class SoakFailure(AssertionError):
    """The soak contract was violated (non-identity or accounting hole).

    ``postmortem`` is the path of the flight-recorder bundle dumped at
    the moment of violation (``None`` if the dump itself failed) — the
    actionable artifact CI uploads alongside the failure message.
    """

    def __init__(self, message: str, postmortem: str | None = None) -> None:
        super().__init__(message)
        self.postmortem = postmortem


def _recipe(seed: int) -> InjectorRecipe:
    from repro.data import two_moons
    from repro.nn import paper_mlp

    model = paper_mlp(rng=0).eval()
    eval_x, eval_y = two_moons(60, noise=0.12, rng=1)
    return InjectorRecipe.from_model(model, eval_x, eval_y, seed=seed)


def _tasks(recipe: InjectorRecipe) -> list[CampaignTask]:
    return [
        CampaignTask(ForwardSpec(p=p, samples=SAMPLES, chains=CHAINS), recipe)
        for p in P_GRID
    ]


def _canon(outcome) -> dict:
    """Result record minus wall-clock fields (identical math, different clock)."""
    record = dict(outcome.to_dict())
    record.pop("duration_s", None)
    record.pop("metrics", None)
    summary = dict(record.get("summary", {}))
    summary.pop("duration_s", None)
    summary.pop("evals_per_s", None)
    record["summary"] = summary
    return record


def _chaos_plan(seed: int, round_index: int) -> chaos_mod.ChaosPlan | None:
    """The chaos schedule for one restart round, easing off over rounds.

    Round 0 is the incident (every site armed, bounded fire counts so the
    round terminates); later rounds halve the pressure; the final round is
    chaos-free, so a task set that *can* complete always does.
    """
    if round_index >= MAX_ROUNDS - 1:
        return None
    scale = 0.5**round_index
    return chaos_mod.ChaosPlan.from_rates(
        {
            "worker.sigkill": chaos_mod.ChaosRule(rate=0.5 * scale, count=3),
            "worker.slow_start": chaos_mod.ChaosRule(rate=0.5 * scale, count=2),
            "pipe.drop": chaos_mod.ChaosRule(rate=0.4 * scale, count=2),
            "pipe.duplicate": chaos_mod.ChaosRule(rate=0.4 * scale, count=2),
            "journal.torn_tail": chaos_mod.ChaosRule(rate=0.5 * scale, count=1),
            "journal.corrupt_tail": chaos_mod.ChaosRule(rate=0.5 * scale, count=1),
            "journal.fsync": chaos_mod.ChaosRule(rate=0.3 * scale, count=1),
        },
        seed=seed + round_index,
        slow_start_s=0.02,
    )


def run_soak(seed: int, workdir: str, workers: int = 2) -> dict:
    """One full kill-and-recover soak; returns a JSON-able report.

    Raises :class:`SoakFailure` on any contract violation.
    """
    recipe = _recipe(seed)
    tasks = _tasks(recipe)

    # --- clean reference: no chaos, no journal, sequential -------------- #
    clean_exec = ParallelCampaignExecutor(workers=1)
    clean = clean_exec.execute(list(tasks))

    # The flight recorder rides along for the chaos rounds so a contract
    # violation ships a postmortem bundle (recent events + chaos plan +
    # metrics), not just an assertion message.
    recorder = flight_mod.install(
        flight_mod.FlightRecorder(capacity=1024, autodump_dir=workdir)
    )

    def _violate(message: str) -> None:
        path = recorder.maybe_autodump(f"soak.seed{seed}")
        suffix = f" (postmortem: {path})" if path else ""
        raise SoakFailure(message + suffix, postmortem=path)

    try:
        return _soak_rounds(seed, workdir, workers, tasks, clean, recorder, _violate)
    finally:
        flight_mod.uninstall()


def _soak_rounds(seed, workdir, workers, tasks, clean, recorder, _violate) -> dict:
    # --- chaos run with restart cycles ---------------------------------- #
    journal_path = os.path.join(workdir, f"soak-{seed}.journal.jsonl")
    rounds = []
    results = [None] * len(tasks)
    stats = None
    for round_index in range(MAX_ROUNDS):
        plan = _chaos_plan(seed, round_index)
        # "restart": a fresh journal object replays the file from disk,
        # verifying checksums, quarantining damage, healing the file
        journal = (
            CampaignJournal.resume(journal_path)
            if os.path.exists(journal_path)
            else CampaignJournal(journal_path)
        )
        executor = ParallelCampaignExecutor(
            workers=workers,
            journal=journal,
            max_attempts=2,
            on_failure="degrade",
            backoff_s=0.001,
        )
        if plan is None:
            results = executor.execute(list(tasks))
            fired = {}
        else:
            # install process-wide ourselves so fire counts survive the run
            with chaos_mod.chaos_enabled(plan) as injector:
                results = executor.execute(list(tasks))
            fired = injector.fired()
        stats = executor.stats
        rounds.append(
            {
                "round": round_index,
                "chaos": None if plan is None else plan.describe(),
                "journal_hits": stats.journal_hits,
                "retries": dict(stats.retries_by_cause),
                "failed": stats.failed,
                "quarantined_lines": len(journal.quarantined),
                "journal_errors": stats.journal_errors,
                "fired": fired,
            }
        )
        if all(result is not None for result in results):
            break

    report = {
        "seed": seed,
        "tasks": len(tasks),
        "rounds": rounds,
        "completed": sum(result is not None for result in results),
        "failed": len(tasks) - sum(result is not None for result in results),
    }

    # --- the contract ---------------------------------------------------- #
    accounting = stats.accounting()
    # exact accounting holds in *every* outcome: completed tasks in this
    # final round plus named failures must tile the task space
    if accounting["completed"] + accounting["failed"] != accounting["tasks"]:
        _violate(
            f"seed {seed}: accounting hole — {accounting['completed']} completed "
            f"+ {accounting['failed']} failed != {accounting['tasks']} tasks"
        )
    named = {failure["index"] for failure in accounting["failed_tasks"]}
    holes = {index for index, result in enumerate(results) if result is None}
    if named != holes:
        _violate(
            f"seed {seed}: silent task loss — result holes {sorted(holes)} vs "
            f"named failures {sorted(named)}"
        )

    if not holes:
        # completion ⇒ bit-identity with the chaos-free reference
        for index, (clean_result, chaos_result) in enumerate(zip(clean, results)):
            if not np.array_equal(
                clean_result.posterior.samples, chaos_result.posterior.samples
            ):
                _violate(
                    f"seed {seed}: task {index} posterior diverged from the clean run"
                )
            if _canon(clean_result) != _canon(chaos_result):
                _violate(
                    f"seed {seed}: task {index} result record diverged from the clean run"
                )
        report["bit_identical"] = True
    else:
        # degraded-but-accounted: still dump a bundle so the failure report
        # carries the event tail that led to each quarantine
        report["bit_identical"] = False
        report["postmortem"] = recorder.maybe_autodump(f"soak.seed{seed}.degraded")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.soak",
        description="kill-and-recover soak for the chaos-hardened campaign stack",
    )
    parser.add_argument("--seeds", type=int, default=3, help="number of soak seeds to run")
    parser.add_argument("--seed-base", type=int, default=2019, help="first seed")
    parser.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="keep journals/quarantines and write soak-report.json here "
             "(default: a temp dir, deleted on success)",
    )
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    import tempfile

    workdir = args.artifacts or tempfile.mkdtemp(prefix="repro-soak-")
    os.makedirs(workdir, exist_ok=True)
    reports, failures = [], []
    for offset in range(args.seeds):
        seed = args.seed_base + offset
        try:
            report = run_soak(seed, workdir, workers=args.workers)
        except SoakFailure as exc:
            failures.append(str(exc))
            print(f"seed {seed}: FAIL — {exc}", file=sys.stderr)
            continue
        reports.append(report)
        outcome = "bit-identical" if report["bit_identical"] else (
            f"degraded ({report['completed']}/{report['tasks']} completed, exact accounting)"
        )
        print(f"seed {seed}: ok — {outcome} in {len(report['rounds'])} round(s)")

    report_path = os.path.join(workdir, "soak-report.json")
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump({"reports": reports, "failures": failures}, handle, indent=2)
    print(f"soak report: {report_path}")
    if failures:
        print(f"{len(failures)} seed(s) FAILED; artifacts kept at {workdir}", file=sys.stderr)
        return 1
    if args.artifacts is None:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
