"""Fault models and injection machinery.

The paper considers "transient faults in the memory units for storing NN
parameters, inputs, intermediate activations and outputs", modelled with a
per-bit architectural vulnerability factor: every bit of every float32 is
an independent Bernoulli(p) flip, applied by XOR.

This package provides:

* :class:`~repro.faults.targets.FaultSurface` /
  :class:`~repro.faults.targets.TargetSpec` — *where* faults land
  (weights, biases, activations, inputs; which layers);
* :class:`~repro.faults.model.FaultModel` and implementations — *how* bits
  flip (:class:`BernoulliBitFlipModel` is the paper's model; single-bit,
  stuck-at, and byte-error models cover the broader FI literature);
* :class:`~repro.faults.configuration.FaultConfiguration` — a concrete
  sampled set of XOR masks over named parameters (this is also the state
  space the MCMC kernels walk);
* :mod:`~repro.faults.injection` — applying configurations to a network:
  a save/apply/restore context for parameters and forward hooks for
  activation and input corruption (mirroring TensorFI's op instrumentation).
"""

from repro.faults.targets import FaultSurface, TargetSpec, resolve_parameter_targets, resolve_activation_modules
from repro.faults.model import FaultModel
from repro.faults.bernoulli import BernoulliBitFlipModel
from repro.faults.heterogeneous import HeterogeneousBitFlipModel
from repro.faults.single import SingleBitFlipModel, StuckAtModel, ByteErrorModel
from repro.faults.burst import BurstBitFlipModel
from repro.faults.configuration import FaultConfiguration
from repro.faults.sparse import SparseMask
from repro.faults.injection import (
    apply_configuration,
    inject_parameters,
    ActivationInjector,
    InputInjector,
)

__all__ = [
    "FaultSurface",
    "TargetSpec",
    "resolve_parameter_targets",
    "resolve_activation_modules",
    "FaultModel",
    "BernoulliBitFlipModel",
    "HeterogeneousBitFlipModel",
    "SingleBitFlipModel",
    "StuckAtModel",
    "ByteErrorModel",
    "BurstBitFlipModel",
    "FaultConfiguration",
    "SparseMask",
    "apply_configuration",
    "inject_parameters",
    "ActivationInjector",
    "InputInjector",
]
