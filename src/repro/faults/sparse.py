"""Sparse XOR masks: the small-p representation behind the fast path.

At the paper's flip probabilities (1e-5 … 1e-3) a Bernoulli draw touches a
handful of the millions of bits in a parameter tensor. Carrying the draw as
a dense uint32 array of the parameter's shape makes every campaign step pay
O(N) — sampling already avoids that (:func:`repro.bits.sample_flip_positions`
is O(K)), but densifying immediately afterwards throws the advantage away.

:class:`SparseMask` keeps the draw in (element indices, per-element lane
masks) form, so configuration algebra (XOR for MCMC proposals, Hamming
weights, emptiness tests) and the copy-on-write apply/restore in
:func:`repro.faults.injection.apply_configuration` all run in O(K). A dense
view is materialised only where a consumer genuinely needs one.
"""

from __future__ import annotations

import numpy as np

from repro.bits.float32 import (
    BITS_PER_FLOAT,
    count_set_bits,
    mask_to_sparse,
    positions_to_sparse,
    sparse_to_mask,
)

__all__ = ["SparseMask"]


class SparseMask:
    """A uint32 XOR mask stored as (flat element indices, lane masks).

    ``elements`` are sorted, unique flat indices into the target tensor;
    ``lane_masks[i]`` holds the (nonzero) lanes flipped in
    ``elements[i]``. Equivalent to — and convertible to/from — the dense
    mask of ``shape``.
    """

    __slots__ = ("shape", "elements", "lane_masks")

    def __init__(self, shape: tuple[int, ...], elements: np.ndarray, lane_masks: np.ndarray) -> None:
        self.shape = tuple(shape)
        self.elements = np.asarray(elements, dtype=np.int64)
        self.lane_masks = np.asarray(lane_masks, dtype=np.uint32)
        if self.elements.shape != self.lane_masks.shape or self.elements.ndim != 1:
            raise ValueError("elements and lane_masks must be aligned 1-D arrays")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls, shape: tuple[int, ...]) -> "SparseMask":
        return cls(shape, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint32))

    @classmethod
    def from_dense(cls, mask: np.ndarray) -> "SparseMask":
        mask = np.asarray(mask)
        if mask.dtype != np.uint32:
            raise TypeError(f"mask must be uint32, got {mask.dtype}")
        elements, lane_masks = mask_to_sparse(mask)
        return cls(mask.shape, elements, lane_masks)

    @classmethod
    def from_positions(cls, positions: np.ndarray, shape: tuple[int, ...]) -> "SparseMask":
        """Build from flat bit positions (as drawn by the samplers), O(K log K)."""
        elements, lane_masks = positions_to_sparse(positions)
        n = int(np.prod(shape)) if shape else 1
        if elements.size and (elements.min() < 0 or elements.max() >= n):
            raise ValueError("bit position out of range for shape")
        return cls(shape, elements, lane_masks)

    # ------------------------------------------------------------------ #
    # views and statistics
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        """Number of elements in the (dense) target tensor."""
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def touched(self) -> int:
        """Number of elements with at least one flipped bit."""
        return int(self.elements.size)

    def is_empty(self) -> bool:
        return self.elements.size == 0

    def count_set_bits(self) -> int:
        """Hamming weight — O(K), never densifies."""
        return count_set_bits(self.lane_masks)

    def to_dense(self) -> np.ndarray:
        return sparse_to_mask(self.elements, self.lane_masks, self.shape)

    def to_positions(self) -> np.ndarray:
        """Sorted flat bit positions, O(32 K); inverse of :meth:`from_positions`."""
        if self.is_empty():
            return np.empty(0, dtype=np.int64)
        lanes = np.arange(BITS_PER_FLOAT, dtype=np.uint32)
        set_bits = (self.lane_masks[:, None] >> lanes[None, :]) & np.uint32(1)
        element_idx, lane_idx = np.nonzero(set_bits)
        return self.elements[element_idx] * BITS_PER_FLOAT + lane_idx.astype(np.int64)

    def copy(self) -> "SparseMask":
        return SparseMask(self.shape, self.elements.copy(), self.lane_masks.copy())

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #

    def xor(self, other: "SparseMask") -> "SparseMask":
        """Sparse XOR: union the touched elements, cancel zeroed lanes."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        if self.is_empty():
            return other.copy()
        if other.is_empty():
            return self.copy()
        stacked = np.concatenate([self.elements, other.elements])
        lanes = np.concatenate([self.lane_masks, other.lane_masks])
        elements, inverse = np.unique(stacked, return_inverse=True)
        merged = np.zeros(elements.size, dtype=np.uint32)
        np.bitwise_xor.at(merged, inverse, lanes)
        keep = merged != 0
        return SparseMask(self.shape, elements[keep], merged[keep])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseMask):
            return NotImplemented
        return (
            self.shape == other.shape
            and np.array_equal(self.elements, other.elements)
            and np.array_equal(self.lane_masks, other.lane_masks)
        )

    def __hash__(self) -> int:  # mutable container; identity hash, as masks elsewhere
        return id(self)

    def __repr__(self) -> str:
        return f"SparseMask(shape={self.shape}, touched={self.touched}, flips={self.count_set_bits()})"
