"""Applying fault configurations to a live network.

Three mechanisms, one per storage surface class:

* **Parameters** — :func:`apply_configuration` XORs masks into parameter
  arrays inside a ``with`` block and restores the golden bits on exit, so a
  campaign can run thousands of faulted forward passes off one golden
  model without reconstruction.
* **Activations** — :class:`ActivationInjector` registers forward hooks on
  selected modules; each hook corrupts the module's output with a fresh
  draw from the fault model (activations are transient, so a new fault
  realisation per inference is the physically faithful choice, and matches
  how TensorFI instruments TensorFlow ops).
* **Inputs** — :class:`InputInjector` does the same via a forward
  *pre*-hook on the root module.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from repro.bits.float32 import apply_bit_mask
from repro.faults.configuration import FaultConfiguration
from repro.faults.model import FaultModel
from repro.nn.module import HookHandle, Module
from repro.tensor.tensor import Tensor

__all__ = ["apply_configuration", "inject_parameters", "ActivationInjector", "InputInjector"]


@contextlib.contextmanager
def apply_configuration(model: Module, configuration: FaultConfiguration) -> Iterator[Module]:
    """Context manager: corrupt the named parameters, restore on exit.

    The restore path copies the saved golden bytes back even if the body
    raises, so a crashed evaluation cannot leak faults into later runs.
    """
    saved: dict[str, np.ndarray] = {}
    try:
        for name, mask in configuration.items():
            param = model.get_parameter(name)
            saved[name] = param.data.copy()
            param.data[...] = apply_bit_mask(param.data, mask)
        yield model
    finally:
        for name, golden in saved.items():
            model.get_parameter(name).data[...] = golden


@contextlib.contextmanager
def inject_parameters(
    model: Module,
    targets: list,
    fault_model: FaultModel,
    rng: np.random.Generator,
) -> Iterator[FaultConfiguration]:
    """Sample a configuration over ``targets`` and apply it for the block.

    Yields the sampled :class:`FaultConfiguration` so callers can log it.
    """
    configuration = FaultConfiguration.sample(targets, fault_model, rng)
    with apply_configuration(model, configuration):
        yield configuration


class _HookInjector:
    """Shared lifecycle for hook-based (activation/input) injectors."""

    def __init__(self, fault_model: FaultModel, rng: np.random.Generator) -> None:
        self.fault_model = fault_model
        self.rng = rng
        self._handles: list[HookHandle] = []
        #: number of tensors corrupted since construction (test observability)
        self.corruption_count = 0

    def _corrupt_tensor(self, tensor: Tensor) -> Tensor:
        data = tensor.data
        if data.dtype != np.float32:
            data = data.astype(np.float32)
        corrupted = self.fault_model.corrupt(data, self.rng)
        self.corruption_count += 1
        return Tensor(corrupted)

    def remove(self) -> None:
        for handle in self._handles:
            handle.remove()
        self._handles.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc: object) -> None:
        self.remove()


class ActivationInjector(_HookInjector):
    """Corrupt the outputs of the given modules on every forward pass.

    Parameters
    ----------
    modules:
        ``(name, module)`` pairs, e.g. from
        :func:`repro.faults.targets.resolve_activation_modules`.
    fault_model / rng:
        Distribution over corruption and its random stream; a fresh fault
        realisation is drawn per module per forward pass.
    """

    def __init__(
        self,
        modules: list[tuple[str, Module]],
        fault_model: FaultModel,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(fault_model, rng)
        self.module_names = [name for name, _ in modules]
        for _, module in modules:
            handle = module.register_forward_hook(self._hook)
            self._handles.append(handle)

    def _hook(self, module: Module, inputs: tuple, output: Tensor) -> Tensor:
        return self._corrupt_tensor(output)


class InputInjector(_HookInjector):
    """Corrupt the network's input tensor before the forward pass."""

    def __init__(self, model: Module, fault_model: FaultModel, rng: np.random.Generator) -> None:
        super().__init__(fault_model, rng)
        handle = model.register_forward_pre_hook(self._pre_hook)
        self._handles.append(handle)

    def _pre_hook(self, module: Module, inputs: tuple) -> tuple:
        return tuple(
            self._corrupt_tensor(x) if isinstance(x, Tensor) else x for x in inputs
        )
