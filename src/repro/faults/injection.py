"""Applying fault configurations to a live network.

Three mechanisms, one per storage surface class:

* **Parameters** — :func:`apply_configuration` XORs masks into parameter
  arrays inside a ``with`` block and restores the golden bits on exit, so a
  campaign can run thousands of faulted forward passes off one golden
  model without reconstruction.
* **Activations** — :class:`ActivationInjector` registers forward hooks on
  selected modules; each hook corrupts the module's output with a fresh
  draw from the fault model (activations are transient, so a new fault
  realisation per inference is the physically faithful choice, and matches
  how TensorFI instruments TensorFlow ops).
* **Inputs** — :class:`InputInjector` does the same via a forward
  *pre*-hook on the root module.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

import repro.obs as obs
from repro.bits.float32 import apply_bit_mask
from repro.faults.configuration import FaultConfiguration
from repro.faults.model import FaultModel
from repro.nn.module import HookHandle, Module
from repro.tensor.tensor import Tensor

__all__ = ["apply_configuration", "inject_parameters", "ActivationInjector", "InputInjector"]

#: above this touched-element fraction the full-copy path beats fancy indexing
_SPARSE_DENSITY_LIMIT = 0.25


@contextlib.contextmanager
def apply_configuration(model: Module, configuration: FaultConfiguration) -> Iterator[Module]:
    """Context manager: corrupt the named parameters, restore on exit.

    Copy-on-write at bit granularity: targets with empty masks are skipped
    outright, and a sparsely faulted target saves and restores only its
    touched elements (O(K) per evaluation) instead of snapshotting the full
    golden array. Densely faulted targets — above ~25 % touched elements,
    where fancy indexing loses to a contiguous copy — fall back to the full
    save/XOR/restore. Both paths write the exact golden bits back even if
    the body raises, so a crashed evaluation cannot leak faults into later
    runs.
    """
    # (flat float32 view, touched indices | None for full-copy, golden bits)
    saved: list[tuple[np.ndarray, np.ndarray | None, np.ndarray]] = []
    try:
        for name in configuration.names():
            if not configuration.touches(name):
                continue
            param = model.get_parameter(name)
            data = param.data
            sparse = configuration.sparse(name)
            dense_fallback = (
                data.dtype != np.float32
                or not data.flags["C_CONTIGUOUS"]
                or sparse.touched > _SPARSE_DENSITY_LIMIT * max(1, data.size)
            )
            if dense_fallback:
                golden = data.copy()
                data[...] = apply_bit_mask(data, configuration.mask(name))
                saved.append((data, None, golden))
            else:
                with obs.phase("flip.sparse"):
                    flat = data.reshape(-1)
                    golden = flat[sparse.elements]  # fancy indexing copies
                    flat.view(np.uint32)[sparse.elements] ^= sparse.lane_masks
                    saved.append((flat, sparse.elements, golden))
        yield model
    finally:
        for flat, elements, golden in reversed(saved):
            if elements is None:
                flat[...] = golden
            else:
                flat[elements] = golden


@contextlib.contextmanager
def inject_parameters(
    model: Module,
    targets: list,
    fault_model: FaultModel,
    rng: np.random.Generator,
) -> Iterator[FaultConfiguration]:
    """Sample a configuration over ``targets`` and apply it for the block.

    Yields the sampled :class:`FaultConfiguration` so callers can log it.
    """
    configuration = FaultConfiguration.sample(targets, fault_model, rng)
    with apply_configuration(model, configuration):
        yield configuration


class _HookInjector:
    """Shared lifecycle for hook-based (activation/input) injectors."""

    def __init__(self, fault_model: FaultModel, rng: np.random.Generator) -> None:
        self.fault_model = fault_model
        self.rng = rng
        self._handles: list[HookHandle] = []
        #: number of tensors corrupted since construction (test observability)
        self.corruption_count = 0

    def _corrupt_tensor(self, tensor: Tensor) -> Tensor:
        data = tensor.data
        if data.dtype != np.float32:
            data = data.astype(np.float32)
        corrupted = self.fault_model.corrupt(data, self.rng)
        self.corruption_count += 1
        return Tensor(corrupted)

    def remove(self) -> None:
        for handle in self._handles:
            handle.remove()
        self._handles.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc: object) -> None:
        self.remove()


class ActivationInjector(_HookInjector):
    """Corrupt the outputs of the given modules on every forward pass.

    Parameters
    ----------
    modules:
        ``(name, module)`` pairs, e.g. from
        :func:`repro.faults.targets.resolve_activation_modules`.
    fault_model / rng:
        Distribution over corruption and its random stream; a fresh fault
        realisation is drawn per module per forward pass.
    """

    def __init__(
        self,
        modules: list[tuple[str, Module]],
        fault_model: FaultModel,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(fault_model, rng)
        self.module_names = [name for name, _ in modules]
        for _, module in modules:
            handle = module.register_forward_hook(self._hook)
            self._handles.append(handle)

    def _hook(self, module: Module, inputs: tuple, output: Tensor) -> Tensor:
        return self._corrupt_tensor(output)


class InputInjector(_HookInjector):
    """Corrupt the network's input tensor before the forward pass."""

    def __init__(self, model: Module, fault_model: FaultModel, rng: np.random.Generator) -> None:
        super().__init__(fault_model, rng)
        handle = model.register_forward_pre_hook(self._pre_hook)
        self._handles.append(handle)

    def _pre_hook(self, module: Module, inputs: tuple) -> tuple:
        return tuple(
            self._corrupt_tensor(x) if isinstance(x, Tensor) else x for x in inputs
        )
