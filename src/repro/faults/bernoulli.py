"""The paper's fault model: per-bit Bernoulli(p) flips.

"We model such faults by using the per-bit architectural vulnerability
factor (AVF), i.e., each bit error is treated as a Bernoulli random
variable with probability p. We do not make any assumptions about the
number of bits in error; this is determined by p."

``bits`` optionally restricts the vulnerable bit lanes (the A1 ablation
flips only exponent bits, say); ``None`` means all 32, as in the paper.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bits.float32 import (
    BITS_PER_FLOAT,
    count_set_bits,
    sample_bernoulli_mask,
    sample_flip_positions,
)
from repro.faults.model import FaultModel
from repro.faults.sparse import SparseMask

__all__ = ["BernoulliBitFlipModel"]


class BernoulliBitFlipModel(FaultModel):
    """Every bit of every float flips independently with probability ``p``."""

    def __init__(self, p: float, bits: tuple[int, ...] | None = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"flip probability must be in [0, 1], got {p}")
        self.p = float(p)
        if bits is not None:
            lanes = np.asarray(sorted(set(bits)), dtype=np.int64)
            if lanes.size == 0:
                raise ValueError("bits, when given, must be non-empty")
            if lanes.min() < 0 or lanes.max() >= BITS_PER_FLOAT:
                raise ValueError("bit lanes must be in [0, 32)")
            self.bits: np.ndarray | None = lanes
            self._allowed = np.uint32(
                np.bitwise_or.reduce(np.uint32(1) << lanes.astype(np.uint32))
            )
        else:
            self.bits = None
            self._allowed = np.uint32(0xFFFFFFFF)

    @property
    def lanes_per_element(self) -> int:
        return BITS_PER_FLOAT if self.bits is None else int(self.bits.size)

    def sample_mask(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return sample_bernoulli_mask(shape, self.p, rng, bits=self.bits)

    def sample_sparse_for(self, values: np.ndarray, rng: np.random.Generator) -> SparseMask:
        """Sparse-native draw: identical RNG consumption to :meth:`sample_mask`.

        Both paths route through :func:`sample_flip_positions`, so the drawn
        positions — and therefore every downstream statistic — are
        bit-identical whichever representation a campaign uses.
        """
        shape = np.asarray(values).shape
        n = int(np.prod(shape)) if shape else 1
        positions = sample_flip_positions(n, self.p, rng, bits=self.bits)
        return SparseMask.from_positions(positions, shape)

    def log_prob_mask(self, mask: np.ndarray) -> float:
        """log P(mask) under i.i.d. Bernoulli(p) bits.

        Only the vulnerable lanes contribute; a mask setting a bit outside
        them has probability zero (−inf).
        """
        mask = np.asarray(mask, dtype=np.uint32)
        if self.bits is not None and np.any(mask & ~self._allowed):
            return -math.inf
        return self._log_prob(count_set_bits(mask), mask.size)

    def log_prob_sparse(self, sparse: SparseMask) -> float:
        """O(K) density: the Bernoulli likelihood needs only the flip count."""
        if self.bits is not None and np.any(sparse.lane_masks & ~self._allowed):
            return -math.inf
        return self._log_prob(sparse.count_set_bits(), sparse.size)

    def _log_prob(self, k: int, n_elements: int) -> float:
        n_lanes = n_elements * self.lanes_per_element
        if self.p == 0.0:
            return 0.0 if k == 0 else -math.inf
        if self.p == 1.0:
            return 0.0 if k == n_lanes else -math.inf
        return k * math.log(self.p) + (n_lanes - k) * math.log1p(-self.p)

    def expected_flips(self, n_elements: int) -> float:
        return n_elements * self.lanes_per_element * self.p

    def __repr__(self) -> str:
        lanes = "all" if self.bits is None else f"{list(self.bits)}"
        return f"BernoulliBitFlipModel(p={self.p}, bits={lanes})"
