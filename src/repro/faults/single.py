"""Fault models from the broader fault-injection literature.

These are the models traditional injectors (TensorFI, Ares, Li et al.)
implement; BDLFI subsumes them, and :mod:`repro.baselines` uses them to
reproduce the comparisons the paper's Section III draws.
"""

from __future__ import annotations

import numpy as np

from repro.bits.float32 import BITS_PER_FLOAT, float_to_bits, bits_to_float, positions_to_mask
from repro.faults.model import FaultModel

__all__ = ["SingleBitFlipModel", "StuckAtModel", "ByteErrorModel"]


class SingleBitFlipModel(FaultModel):
    """Exactly one uniformly chosen bit of one uniformly chosen element flips.

    The canonical "one fault per run" model of debugger-level injectors.
    ``bits`` restricts the candidate bit lanes.
    """

    def __init__(self, bits: tuple[int, ...] | None = None) -> None:
        if bits is not None:
            lanes = sorted(set(bits))
            if not lanes or min(lanes) < 0 or max(lanes) >= BITS_PER_FLOAT:
                raise ValueError("bits must be a non-empty subset of [0, 32)")
            self.bits: tuple[int, ...] | None = tuple(lanes)
        else:
            self.bits = None

    def sample_mask(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        n = int(np.prod(shape)) if shape else 1
        if n == 0:
            raise ValueError("cannot inject a single bit flip into an empty array")
        element = int(rng.integers(0, n))
        lane = int(rng.choice(self.bits)) if self.bits is not None else int(rng.integers(0, BITS_PER_FLOAT))
        return positions_to_mask(np.asarray([element * BITS_PER_FLOAT + lane]), shape)

    def expected_flips(self, n_elements: int) -> float:
        return 1.0

    def __repr__(self) -> str:
        return f"SingleBitFlipModel(bits={self.bits or 'all'})"


class StuckAtModel(FaultModel):
    """A random bit of a random element is stuck at 0 or 1.

    Value-dependent: the corruption is a no-op when the bit already holds
    the stuck value, so it cannot be expressed as a fixed XOR mask.
    """

    def __init__(self, stuck_value: int) -> None:
        if stuck_value not in (0, 1):
            raise ValueError(f"stuck_value must be 0 or 1, got {stuck_value}")
        self.stuck_value = stuck_value

    def sample_mask(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError("stuck-at faults are value-dependent; use corrupt()")

    def corrupt(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        values = np.asarray(values, dtype=np.float32)
        flat_bits = float_to_bits(values).reshape(-1).copy()
        if flat_bits.size == 0:
            raise ValueError("cannot inject into an empty array")
        element = int(rng.integers(0, flat_bits.size))
        lane = np.uint32(rng.integers(0, BITS_PER_FLOAT))
        if self.stuck_value == 1:
            flat_bits[element] |= np.uint32(1) << lane
        else:
            flat_bits[element] &= ~(np.uint32(1) << lane)
        return bits_to_float(flat_bits).reshape(values.shape)

    def expected_flips(self, n_elements: int) -> float:
        # A stuck-at changes the value half the time on average.
        return 0.5

    def __repr__(self) -> str:
        return f"StuckAtModel(stuck_value={self.stuck_value})"


class ByteErrorModel(FaultModel):
    """One whole byte of one element is replaced with random bits.

    Models word-line/driver failures that corrupt a full byte; an 8-bit XOR
    with a uniform random pattern (possibly zero on up to 1/256 of draws).
    """

    def sample_mask(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        n = int(np.prod(shape)) if shape else 1
        if n == 0:
            raise ValueError("cannot inject into an empty array")
        element = int(rng.integers(0, n))
        byte = int(rng.integers(0, 4))
        pattern = np.uint32(rng.integers(0, 256)) << np.uint32(8 * byte)
        mask = np.zeros(n, dtype=np.uint32)
        mask[element] = pattern
        return mask.reshape(shape)

    def expected_flips(self, n_elements: int) -> float:
        return 4.0

    def __repr__(self) -> str:
        return "ByteErrorModel()"
