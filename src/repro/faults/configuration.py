"""FaultConfiguration: a concrete draw from a fault model.

A configuration is an ordered mapping from parameter name to a uint32 XOR
mask of the parameter's shape — the realisation of the error tensor ``e``
in the paper's ``W' = e ⊕ W``. It doubles as the state of the MCMC kernels
in :mod:`repro.mcmc`: proposals toggle bits in the masks, and the
stationary distribution is the fault model's prior.

Storage is dual-representation: each target's mask is held either dense
(a uint32 array) or sparse (a :class:`~repro.faults.sparse.SparseMask`,
the form :meth:`sample` produces). Sparse storage keeps every campaign
step O(K) in the number of flipped bits at small p; :meth:`mask` converts
a target to dense *in place* on first access, so code holding the
returned array keeps the usual mutable-reference semantics.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Mapping

import numpy as np

from repro.bits.float32 import count_set_bits, mask_to_positions
from repro.faults.model import FaultModel
from repro.faults.sparse import SparseMask
from repro.nn.module import Parameter

__all__ = ["FaultConfiguration"]


class FaultConfiguration:
    """Named XOR masks over a fixed set of targets.

    Construct via :meth:`sample` (a draw from a fault model) or
    :meth:`empty` (the no-fault configuration), not directly, unless you
    have masks from elsewhere.
    """

    def __init__(self, masks: Mapping[str, np.ndarray | SparseMask]) -> None:
        self._masks: dict[str, np.ndarray | SparseMask] = {}
        for name, mask in masks.items():
            if isinstance(mask, SparseMask):
                self._masks[name] = mask
                continue
            mask = np.asarray(mask)
            if mask.dtype != np.uint32:
                raise TypeError(f"mask for {name!r} must be uint32, got {mask.dtype}")
            self._masks[name] = mask

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def sample(
        cls,
        targets: list[tuple[str, Parameter]],
        fault_model: FaultModel,
        rng: np.random.Generator,
    ) -> "FaultConfiguration":
        """Draw one mask per target from ``fault_model``, in sparse form.

        Uses :meth:`FaultModel.sample_sparse_for` (RNG-identical to the
        dense :meth:`FaultModel.sample_mask_for`) so value-dependent models
        (quantised representations, stuck-at variants) can derive the
        equivalent float32 XOR mask from the stored parameter values.
        """
        return cls(
            {
                name: fault_model.for_target(name).sample_sparse_for(param.data, rng)
                for name, param in targets
            }
        )

    @classmethod
    def empty(cls, targets: list[tuple[str, Parameter]]) -> "FaultConfiguration":
        """The all-zeros (fault-free) configuration over ``targets``."""
        return cls({name: SparseMask.empty(param.shape) for name, param in targets})

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    def mask(self, name: str) -> np.ndarray:
        """Dense uint32 mask for ``name``.

        A sparsely stored target is densified once and the dense array
        becomes the authoritative storage from then on (callers may mutate
        the returned array, as MCMC proposals do).
        """
        stored = self._masks[name]
        if isinstance(stored, SparseMask):
            stored = stored.to_dense()
            self._masks[name] = stored
        return stored

    def sparse(self, name: str) -> SparseMask:
        """Sparse view of ``name``'s mask.

        Cheap for sparsely stored targets; for dense storage a fresh sparse
        view is computed (the dense array stays authoritative, since
        callers may hold mutable references to it).
        """
        stored = self._masks[name]
        if isinstance(stored, SparseMask):
            return stored
        return SparseMask.from_dense(stored)

    def touches(self, name: str) -> bool:
        """Whether ``name`` has at least one flipped bit (O(1) when sparse)."""
        stored = self._masks.get(name)
        if stored is None:
            return False
        if isinstance(stored, SparseMask):
            return not stored.is_empty()
        return bool(stored.any())

    def names(self) -> list[str]:
        return list(self._masks)

    def items(self) -> Iterator[tuple[str, np.ndarray]]:
        """Iterate ``(name, dense mask)`` pairs (densifying as needed)."""
        return iter([(name, self.mask(name)) for name in self._masks])

    def sparse_items(self) -> Iterator[tuple[str, SparseMask]]:
        """Iterate ``(name, sparse mask)`` pairs without densifying."""
        return iter([(name, self.sparse(name)) for name in self._masks])

    def __contains__(self, name: str) -> bool:
        return name in self._masks

    def __len__(self) -> int:
        return len(self._masks)

    # ------------------------------------------------------------------ #
    # algebra and statistics
    # ------------------------------------------------------------------ #

    def copy(self) -> "FaultConfiguration":
        return FaultConfiguration({name: mask.copy() for name, mask in self._masks.items()})

    def xor(self, other: "FaultConfiguration") -> "FaultConfiguration":
        """Elementwise XOR — used by MCMC proposals to toggle flip bits.

        Sparse ⊕ sparse stays sparse (O(K)); any dense operand produces a
        dense result.
        """
        if set(self._masks) != set(other._masks):
            raise KeyError("configurations cover different targets")
        merged: dict[str, np.ndarray | SparseMask] = {}
        for name in self._masks:
            a, b = self._masks[name], other._masks[name]
            if isinstance(a, SparseMask) and isinstance(b, SparseMask):
                merged[name] = a.xor(b)
            else:
                merged[name] = self.mask(name) ^ other.mask(name)
        return FaultConfiguration(merged)

    def total_flips(self) -> int:
        """Total number of flipped bits (Hamming weight) across all targets."""
        return sum(self.flips_per_target().values())

    def flips_per_target(self) -> dict[str, int]:
        return {
            name: mask.count_set_bits() if isinstance(mask, SparseMask) else count_set_bits(mask)
            for name, mask in self._masks.items()
        }

    def flip_positions(self) -> dict[str, np.ndarray]:
        """Flat bit positions set in each target's mask (diagnostic)."""
        return {
            name: mask.to_positions() if isinstance(mask, SparseMask) else mask_to_positions(mask)
            for name, mask in self._masks.items()
        }

    def log_prob(self, fault_model: FaultModel) -> float:
        """Joint log-probability of this configuration under ``fault_model``."""
        total = 0.0
        for name, mask in self._masks.items():
            target_model = fault_model.for_target(name)
            if isinstance(mask, SparseMask):
                total += target_model.log_prob_sparse(mask)
            else:
                total += target_model.log_prob_mask(mask)
        return total

    def is_empty(self) -> bool:
        return not any(self.touches(name) for name in self._masks)

    def same_mask(self, other: "FaultConfiguration", name: str) -> bool:
        """Whether this and ``other`` hold equal masks for one target.

        Storage-aware and non-mutating: sparse/sparse compares canonical
        forms in O(K), dense/dense compares raw arrays (memory-bandwidth
        cheap — proposals densify, so this is the hot MCMC diff path), and
        mixed storage densifies a transient view without converting either
        operand in place.
        """
        a = self._masks.get(name)
        b = other._masks.get(name)
        if a is None or b is None:
            return a is b
        if a is b:
            return True
        if isinstance(a, SparseMask) and isinstance(b, SparseMask):
            return a == b
        dense_a = a.to_dense() if isinstance(a, SparseMask) else a
        dense_b = b.to_dense() if isinstance(b, SparseMask) else b
        return np.array_equal(dense_a, dense_b)

    def fingerprint(self) -> str:
        """Content hash of the masks (storage- and access-order-independent).

        Two configurations that compare equal (:meth:`__eq__`) share a
        fingerprint whether their masks are stored sparse or dense; unlike
        ``hash(self)`` (identity), the fingerprint follows the *value*, so
        mutating a mask changes it. Cost is O(K) in flipped bits plus one
        hash pass — this keys per-configuration statistic memoisation
        (:class:`~repro.mcmc.targets.TemperedErrorTarget`).
        """
        digest = hashlib.blake2b(digest_size=16)
        for name in sorted(self._masks):
            sparse = self.sparse(name)
            digest.update(name.encode("utf-8"))
            digest.update(np.int64(sparse.elements.size).tobytes())
            digest.update(np.ascontiguousarray(sparse.elements).tobytes())
            digest.update(np.ascontiguousarray(sparse.lane_masks).tobytes())
        return digest.hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultConfiguration):
            return NotImplemented
        if set(self._masks) != set(other._masks):
            return False
        # Compare via non-mutating sparse views: canonical (sorted unique
        # elements, nonzero lanes) form, so dense and sparse storage of the
        # same mask compare equal.
        return all(self.sparse(name) == other.sparse(name) for name in self._masks)

    def __hash__(self) -> int:  # configurations are mutable containers; identity hash
        return id(self)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> None:
        """Write the masks to an ``.npz`` archive.

        Campaigns use this to persist noteworthy configurations (e.g. the
        critical fault sets found by :mod:`repro.sensitivity`) so an
        analysis can be replayed exactly on another machine.
        """
        import os

        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        np.savez(path, **{name: self.mask(name) for name in self._masks})

    @classmethod
    def load(cls, path: str) -> "FaultConfiguration":
        """Read a configuration written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as archive:
            masks = {name: archive[name] for name in archive.files}
        return cls(masks)

    def __repr__(self) -> str:
        return f"FaultConfiguration(targets={len(self._masks)}, flips={self.total_flips()})"
