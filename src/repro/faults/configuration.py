"""FaultConfiguration: a concrete draw from a fault model.

A configuration is an ordered mapping from parameter name to a uint32 XOR
mask of the parameter's shape — the realisation of the error tensor ``e``
in the paper's ``W' = e ⊕ W``. It doubles as the state of the MCMC kernels
in :mod:`repro.mcmc`: proposals toggle bits in the masks, and the
stationary distribution is the fault model's prior.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.bits.float32 import count_set_bits, mask_to_positions
from repro.faults.model import FaultModel
from repro.nn.module import Parameter

__all__ = ["FaultConfiguration"]


class FaultConfiguration:
    """Named XOR masks over a fixed set of targets.

    Construct via :meth:`sample` (a draw from a fault model) or
    :meth:`empty` (the no-fault configuration), not directly, unless you
    have masks from elsewhere.
    """

    def __init__(self, masks: Mapping[str, np.ndarray]) -> None:
        self._masks: dict[str, np.ndarray] = {}
        for name, mask in masks.items():
            mask = np.asarray(mask)
            if mask.dtype != np.uint32:
                raise TypeError(f"mask for {name!r} must be uint32, got {mask.dtype}")
            self._masks[name] = mask

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def sample(
        cls,
        targets: list[tuple[str, Parameter]],
        fault_model: FaultModel,
        rng: np.random.Generator,
    ) -> "FaultConfiguration":
        """Draw one mask per target from ``fault_model``.

        Uses :meth:`FaultModel.sample_mask_for` so value-dependent models
        (quantised representations, stuck-at variants) can derive the
        equivalent float32 XOR mask from the stored parameter values.
        """
        return cls(
            {
                name: fault_model.for_target(name).sample_mask_for(param.data, rng)
                for name, param in targets
            }
        )

    @classmethod
    def empty(cls, targets: list[tuple[str, Parameter]]) -> "FaultConfiguration":
        """The all-zeros (fault-free) configuration over ``targets``."""
        return cls({name: np.zeros(param.shape, dtype=np.uint32) for name, param in targets})

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    def mask(self, name: str) -> np.ndarray:
        return self._masks[name]

    def names(self) -> list[str]:
        return list(self._masks)

    def items(self) -> Iterator[tuple[str, np.ndarray]]:
        return iter(self._masks.items())

    def __contains__(self, name: str) -> bool:
        return name in self._masks

    def __len__(self) -> int:
        return len(self._masks)

    # ------------------------------------------------------------------ #
    # algebra and statistics
    # ------------------------------------------------------------------ #

    def copy(self) -> "FaultConfiguration":
        return FaultConfiguration({name: mask.copy() for name, mask in self._masks.items()})

    def xor(self, other: "FaultConfiguration") -> "FaultConfiguration":
        """Elementwise XOR — used by MCMC proposals to toggle flip bits."""
        if set(self._masks) != set(other._masks):
            raise KeyError("configurations cover different targets")
        return FaultConfiguration(
            {name: self._masks[name] ^ other._masks[name] for name in self._masks}
        )

    def total_flips(self) -> int:
        """Total number of flipped bits (Hamming weight) across all targets."""
        return sum(count_set_bits(mask) for mask in self._masks.values())

    def flips_per_target(self) -> dict[str, int]:
        return {name: count_set_bits(mask) for name, mask in self._masks.items()}

    def flip_positions(self) -> dict[str, np.ndarray]:
        """Flat bit positions set in each target's mask (diagnostic)."""
        return {name: mask_to_positions(mask) for name, mask in self._masks.items()}

    def log_prob(self, fault_model: FaultModel) -> float:
        """Joint log-probability of this configuration under ``fault_model``."""
        return sum(
            fault_model.for_target(name).log_prob_mask(mask) for name, mask in self._masks.items()
        )

    def is_empty(self) -> bool:
        return all(not mask.any() for mask in self._masks.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultConfiguration):
            return NotImplemented
        if set(self._masks) != set(other._masks):
            return False
        return all(np.array_equal(self._masks[name], other._masks[name]) for name in self._masks)

    def __hash__(self) -> int:  # configurations are mutable containers; identity hash
        return id(self)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> None:
        """Write the masks to an ``.npz`` archive.

        Campaigns use this to persist noteworthy configurations (e.g. the
        critical fault sets found by :mod:`repro.sensitivity`) so an
        analysis can be replayed exactly on another machine.
        """
        import os

        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        np.savez(path, **{name: mask for name, mask in self._masks.items()})

    @classmethod
    def load(cls, path: str) -> "FaultConfiguration":
        """Read a configuration written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as archive:
            masks = {name: archive[name] for name in archive.files}
        return cls(masks)

    def __repr__(self) -> str:
        return f"FaultConfiguration(targets={len(self._masks)}, flips={self.total_flips()})"
