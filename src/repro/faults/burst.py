"""Spatial burst faults: multi-bit upsets in adjacent cells.

Modern dense SRAM/DRAM sees *multi-cell upsets*: one particle strike flips
a run of physically adjacent bits. Within a 32-bit stored word that is a
contiguous burst of bit lanes. :class:`BurstBitFlipModel` draws, per
event, a uniformly placed burst of a configurable length in one uniformly
chosen element; the event count follows a Binomial over elements so the
model composes with campaign probability sweeps the same way the paper's
Bernoulli model does.
"""

from __future__ import annotations

import numpy as np

from repro.bits.float32 import BITS_PER_FLOAT
from repro.faults.model import FaultModel

__all__ = ["BurstBitFlipModel"]


class BurstBitFlipModel(FaultModel):
    """Bursts of ``burst_length`` adjacent bit flips.

    Parameters
    ----------
    event_probability:
        Per-element probability that a burst event strikes it (one event
        per struck element per draw).
    burst_length:
        Number of adjacent lanes flipped per event (clipped at the word
        boundary, so edge bursts may flip fewer bits).
    """

    def __init__(self, event_probability: float, burst_length: int = 2) -> None:
        if not 0.0 <= event_probability <= 1.0:
            raise ValueError(f"event probability must be in [0, 1], got {event_probability}")
        if not 1 <= burst_length <= BITS_PER_FLOAT:
            raise ValueError(f"burst_length must be in [1, 32], got {burst_length}")
        self.event_probability = float(event_probability)
        self.burst_length = int(burst_length)

    def sample_mask(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        n = int(np.prod(shape)) if shape else 1
        mask = np.zeros(n, dtype=np.uint32)
        if n == 0 or self.event_probability == 0.0:
            return mask.reshape(shape)
        count = int(rng.binomial(n, self.event_probability))
        if count == 0:
            return mask.reshape(shape)
        elements = rng.choice(n, size=count, replace=False)
        starts = rng.integers(0, BITS_PER_FLOAT, size=count)
        base = np.uint32((1 << self.burst_length) - 1)
        for element, start in zip(elements, starts):
            burst = np.uint32((int(base) << int(start)) & 0xFFFFFFFF)
            mask[element] ^= burst
        return mask.reshape(shape)

    def expected_flips(self, n_elements: int) -> float:
        # Edge clipping: a burst starting at lane s flips min(L, 32−s) bits;
        # uniform s gives mean L − L(L−1)/(2·32).
        clipped = self.burst_length - self.burst_length * (self.burst_length - 1) / (2 * BITS_PER_FLOAT)
        return n_elements * self.event_probability * clipped

    def __repr__(self) -> str:
        return f"BurstBitFlipModel(event_p={self.event_probability}, length={self.burst_length})"
