"""The FaultModel abstraction.

A fault model is a probability distribution over corruptions of a float32
array. Mask-based models (everything except stuck-at) express a corruption
as a uint32 XOR mask, which composes with the paper's ``W' = e ⊕ W``
transform; stuck-at faults depend on the stored value and override
:meth:`corrupt` directly.
"""

from __future__ import annotations

import numpy as np

from repro.bits.float32 import apply_bit_mask

__all__ = ["FaultModel"]


class FaultModel:
    """Distribution over bit-level corruptions of a float32 array."""

    def for_target(self, target: str) -> "FaultModel":
        """A view of this model specialised to one named target tensor.

        The base models are target-agnostic and return ``self``;
        target-aware wrappers (e.g. :class:`repro.protect.ProtectedFaultModel`,
        whose protected lanes differ per layer) override this. Campaign
        plumbing calls it before every per-target draw or density
        evaluation.
        """
        return self

    def sample_mask(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Draw a uint32 XOR mask of ``shape``.

        Mask-based models must implement this; value-dependent models may
        raise and implement :meth:`sample_mask_for` / :meth:`corrupt` instead.
        """
        raise NotImplementedError

    def sample_mask_for(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw a mask given the *stored values* being corrupted.

        For value-independent models this is just ``sample_mask(shape)``.
        Value-dependent models (e.g. faults in a quantised representation,
        :class:`repro.quant.QuantizedBitFlipModel`) override it: any
        corruption of stored values ``w → w'`` has an equivalent float32
        XOR mask ``bits(w) ⊕ bits(w')``, which keeps the whole campaign
        machinery (configuration algebra, apply/restore contexts) working.
        """
        return self.sample_mask(np.asarray(values).shape, rng)

    def sample_sparse_for(self, values: np.ndarray, rng: np.random.Generator):
        """Draw a corruption of ``values`` as a :class:`~repro.faults.sparse.SparseMask`.

        Consumes exactly the same RNG draws as :meth:`sample_mask_for` and
        denotes the same mask. The base implementation densifies then
        converts; sparse-native models (Bernoulli) override it to stay O(K)
        in the number of flipped bits.
        """
        from repro.faults.sparse import SparseMask

        return SparseMask.from_dense(self.sample_mask_for(values, rng))

    def log_prob_sparse(self, sparse) -> float:
        """Log-probability of a :class:`~repro.faults.sparse.SparseMask` draw.

        Default densifies; models whose density depends only on the flip
        count and lane occupancy (Bernoulli) override it to stay O(K).
        """
        return self.log_prob_mask(sparse.to_dense())

    def corrupt(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a corrupted copy of ``values`` (float32)."""
        mask = self.sample_mask_for(np.asarray(values, dtype=np.float32), rng)
        return apply_bit_mask(values, mask)

    def log_prob_mask(self, mask: np.ndarray) -> float:
        """Log-probability of drawing ``mask`` (for models that define it).

        Used by the MCMC kernels, whose stationary distribution is the fault
        model's prior over masks.
        """
        raise NotImplementedError(f"{type(self).__name__} does not define a mask log-probability")

    def expected_flips(self, n_elements: int) -> float:
        """Expected number of flipped bits over ``n_elements`` floats."""
        raise NotImplementedError
