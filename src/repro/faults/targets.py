"""Fault targeting: which surfaces and layers faults may land on.

The paper's fault model covers four storage surfaces — parameters
(weights), biases, intermediate activations, and inputs. Campaigns select a
subset of surfaces and optionally restrict to particular layers (the
layer-by-layer study of Fig. 3 injects into exactly one layer at a time).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from repro.nn.module import Module, Parameter

__all__ = [
    "FaultSurface",
    "TargetSpec",
    "resolve_parameter_targets",
    "resolve_activation_modules",
]


class FaultSurface(enum.Enum):
    """A class of memory locations faults can corrupt."""

    WEIGHTS = "weights"
    BIASES = "biases"
    ACTIVATIONS = "activations"
    INPUTS = "inputs"


@dataclass(frozen=True)
class TargetSpec:
    """Selection of fault surfaces and layers.

    Attributes
    ----------
    surfaces:
        Which of the four surfaces to corrupt. Defaults to weights only —
        the surface the paper's Fig. 1 formalism (``W' = e ⊕ W``) centres on.
    include_layers:
        Glob patterns over dotted module names; ``None`` means every layer.
        ``("stages.2.*",)`` restricts injection to stage 2 of a ResNet.
    exclude_layers:
        Glob patterns removed after inclusion.
    """

    surfaces: frozenset[FaultSurface] = frozenset({FaultSurface.WEIGHTS})
    include_layers: tuple[str, ...] | None = None
    exclude_layers: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.surfaces:
            raise ValueError("TargetSpec requires at least one fault surface")
        object.__setattr__(self, "surfaces", frozenset(self.surfaces))

    @classmethod
    def all_surfaces(cls) -> "TargetSpec":
        """Target weights, biases, activations, and inputs everywhere."""
        return cls(surfaces=frozenset(FaultSurface))

    @classmethod
    def weights_and_biases(cls, include_layers: tuple[str, ...] | None = None) -> "TargetSpec":
        """Target all stored parameters (the most common campaign)."""
        return cls(
            surfaces=frozenset({FaultSurface.WEIGHTS, FaultSurface.BIASES}),
            include_layers=include_layers,
        )

    @classmethod
    def single_layer(cls, layer_name: str, surfaces: frozenset[FaultSurface] | None = None) -> "TargetSpec":
        """Target one layer — the unit of the Fig. 3 layerwise campaign."""
        return cls(
            surfaces=surfaces or frozenset({FaultSurface.WEIGHTS, FaultSurface.BIASES}),
            include_layers=(layer_name,),
        )

    def matches_layer(self, dotted_name: str) -> bool:
        """Whether a dotted module name passes the include/exclude filters."""
        if self.include_layers is not None:
            if not any(fnmatchcase(dotted_name, pattern) for pattern in self.include_layers):
                return False
        return not any(fnmatchcase(dotted_name, pattern) for pattern in self.exclude_layers)


def _surface_of_parameter(name: str) -> FaultSurface:
    """Classify a parameter by its leaf name (``weight`` vs ``bias``)."""
    leaf = name.rsplit(".", 1)[-1]
    return FaultSurface.BIASES if leaf == "bias" else FaultSurface.WEIGHTS


def resolve_parameter_targets(model: Module, spec: TargetSpec) -> list[tuple[str, Parameter]]:
    """List the (dotted_name, parameter) pairs the spec selects.

    Order matches ``model.named_parameters()``, so campaigns have a stable,
    documented target ordering.
    """
    selected: list[tuple[str, Parameter]] = []
    for name, param in model.named_parameters():
        layer_name = name.rsplit(".", 1)[0] if "." in name else ""
        if not spec.matches_layer(layer_name):
            continue
        if _surface_of_parameter(name) in spec.surfaces:
            selected.append((name, param))
    return selected


def resolve_activation_modules(model: Module, spec: TargetSpec) -> list[tuple[str, Module]]:
    """List leaf modules whose *outputs* the spec selects for corruption.

    Only parameterised leaves are instrumented (their outputs are the
    "intermediate activations" stored to memory between layers on an
    accelerator); pure reshapes are not separate storage.
    """
    if FaultSurface.ACTIVATIONS not in spec.surfaces:
        return []
    modules: list[tuple[str, Module]] = []
    for name, module in model.named_modules():
        if not name or not module._parameters:
            continue
        if spec.matches_layer(name):
            modules.append((name, module))
    return modules
