"""Heterogeneous per-lane AVF model.

The paper says "per-bit architectural vulnerability factor". On real
hardware the AVF genuinely differs per bit line: cells under a parity
tree, bits adjacent to well taps, or lanes mapped to different DRAM
devices see different upset rates. :class:`HeterogeneousBitFlipModel`
assigns each of the 32 lanes its own Bernoulli probability — the uniform
:class:`~repro.faults.bernoulli.BernoulliBitFlipModel` is the special case
``lane_probs = [p] * 32``, and :class:`repro.bayes.PoissonBinomial` gives
the exact flip-count law the stratified estimator would need for it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bits.float32 import BITS_PER_FLOAT, count_set_bits, positions_to_mask
from repro.faults.model import FaultModel

__all__ = ["HeterogeneousBitFlipModel"]


class HeterogeneousBitFlipModel(FaultModel):
    """Independent Bernoulli flips with a per-lane probability vector.

    Parameters
    ----------
    lane_probs:
        Length-32 array; ``lane_probs[b]`` is the flip probability of bit
        lane ``b`` (0 = mantissa LSB, 31 = sign) for every element.
    """

    def __init__(self, lane_probs: np.ndarray) -> None:
        lane_probs = np.asarray(lane_probs, dtype=np.float64)
        if lane_probs.shape != (BITS_PER_FLOAT,):
            raise ValueError(f"lane_probs must have shape (32,), got {lane_probs.shape}")
        if np.any((lane_probs < 0) | (lane_probs > 1)):
            raise ValueError("lane probabilities must lie in [0, 1]")
        self.lane_probs = lane_probs

    @classmethod
    def uniform(cls, p: float) -> "HeterogeneousBitFlipModel":
        """The homogeneous special case (equivalent to BernoulliBitFlipModel)."""
        return cls(np.full(BITS_PER_FLOAT, p))

    @classmethod
    def ecc_on_exponent(cls, p: float, residual_factor: float = 0.01) -> "HeterogeneousBitFlipModel":
        """Raw rate ``p`` with the exponent byte behind ECC.

        ECC does not make upsets impossible (multi-bit words escape), so the
        exponent lanes keep ``residual_factor · p``.
        """
        probs = np.full(BITS_PER_FLOAT, p)
        probs[23:31] *= residual_factor
        return cls(probs)

    def sample_mask(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Sparse exact sampling, lane by lane.

        Per lane the flips among ``n`` elements are Binomial(n, p_lane) +
        uniform element choice — the same identity the homogeneous sampler
        uses, applied 32 times.
        """
        n = int(np.prod(shape)) if shape else 1
        positions: list[np.ndarray] = []
        for lane, p in enumerate(self.lane_probs):
            if p <= 0.0 or n == 0:
                continue
            count = int(rng.binomial(n, p))
            if count == 0:
                continue
            elements = rng.choice(n, size=count, replace=False)
            positions.append(elements * BITS_PER_FLOAT + lane)
        if not positions:
            return np.zeros(shape, dtype=np.uint32)
        return positions_to_mask(np.concatenate(positions), shape)

    def log_prob_mask(self, mask: np.ndarray) -> float:
        mask = np.asarray(mask, dtype=np.uint32).reshape(-1)
        total = 0.0
        for lane, p in enumerate(self.lane_probs):
            set_in_lane = int(((mask >> np.uint32(lane)) & np.uint32(1)).sum())
            clear_in_lane = mask.size - set_in_lane
            if p == 0.0:
                if set_in_lane:
                    return -math.inf
                continue
            if p == 1.0:
                if clear_in_lane:
                    return -math.inf
                continue
            total += set_in_lane * math.log(p) + clear_in_lane * math.log1p(-p)
        return total

    def expected_flips(self, n_elements: int) -> float:
        return float(n_elements * self.lane_probs.sum())

    def __repr__(self) -> str:
        return (
            f"HeterogeneousBitFlipModel(mean_p={self.lane_probs.mean():.3g}, "
            f"range=[{self.lane_probs.min():.3g}, {self.lane_probs.max():.3g}])"
        )
