"""Flip-probability sweeps — the harness behind Figs. 2 and 4.

A sweep runs one campaign per probability on a log grid (the paper sweeps
p ∈ [1e-5, 1e-1]) and assembles the error-vs-p series, the golden-run
reference line, and the two-regime fit.

Campaigns are described by a :class:`~repro.exec.specs.CampaignSpec`
*template* whose ``p`` is rebound per grid point (or a ``p → spec``
factory for per-point budgets). Points run sequentially through
:meth:`BayesianFaultInjector.run`, or concurrently through a
:class:`~repro.exec.executor.ParallelCampaignExecutor` — bit-identical
either way, since campaigns only draw named RNG substreams.

The legacy string dispatch (``method="forward"/"mcmc"/"stratified"``) still
works but is deprecated; pass a spec instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Union

import numpy as np

import repro.obs as obs
from repro.core.campaign import CampaignResult
from repro.core.injector import BayesianFaultInjector
from repro.core.knee import TwoRegimeFit, fit_two_regimes, truncate_saturated_tail
from repro.exec.executor import ParallelCampaignExecutor
from repro.exec.specs import CampaignSpec, ForwardSpec, spec_from_method
from repro.obs.estimator import publish_outcome
from repro.utils.logging import get_logger

__all__ = ["SweepPoint", "ProbabilitySweep"]

_LOGGER = get_logger("core.sweep")

#: a spec template (``p`` rebound per point) or a ``p -> spec`` factory
SpecLike = Union[CampaignSpec, Callable[[float], CampaignSpec]]


@dataclass(frozen=True)
class SweepPoint:
    """One probability point of a sweep."""

    p: float
    mean_error: float
    ci_lo: float
    ci_hi: float
    mean_flips: float
    campaign: CampaignResult


@dataclass
class ProbabilitySweep:
    """Error-vs-flip-probability experiment over one injector.

    Parameters
    ----------
    injector:
        Configured :class:`BayesianFaultInjector` (model + eval batch + spec).
    p_values:
        Flip probabilities, defaults to the paper's log grid 1e-5 … 1e-1.
    samples / chains:
        Per-point campaign budget for the default (and legacy-string) specs.
    spec:
        A :class:`~repro.exec.specs.CampaignSpec` template — its ``p`` is
        rebound per grid point — or a callable ``p → spec``. Defaults to
        :class:`~repro.exec.specs.ForwardSpec` with the budget above.
    method:
        Deprecated string dispatch (``"forward"``/``"mcmc"``/``"stratified"``);
        emits a :class:`DeprecationWarning` and maps onto the equivalent spec.
    executor:
        Optional :class:`~repro.exec.executor.ParallelCampaignExecutor`; when
        given (with ``workers > 1``) the points fan out over its worker pool,
        using ``executor.recipe`` to rebuild the injector per worker.
        Results are bit-identical to the sequential path.
    journal:
        Optional :class:`~repro.exec.journal.CampaignJournal`. Completed
        points are durably recorded as they finish; re-running the sweep
        (e.g. after a crash) skips journaled points and produces results
        bit-identical to an uninterrupted run.
    """

    injector: BayesianFaultInjector
    p_values: tuple[float, ...] = ()
    samples: int = 200
    chains: int = 2
    method: str | None = None
    spec: SpecLike | None = None
    executor: ParallelCampaignExecutor | None = None
    journal: object | None = None
    points: list[SweepPoint] = field(default_factory=list)
    #: grid points whose campaign failed under ``on_failure="degrade"``
    #: (each ``{"p", "reason", "cause", "attempts"}``); always empty when
    #: the executor aborts on failure, so old callers never see a hole
    failed_points: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.p_values:
            self.p_values = tuple(np.logspace(-5, -1, 13))
        p_arr = np.asarray(self.p_values, dtype=np.float64)
        if np.any(p_arr <= 0) or np.any(p_arr > 1):
            raise ValueError("flip probabilities must lie in (0, 1]")
        if np.any(np.diff(p_arr) <= 0):
            raise ValueError("p_values must be strictly increasing")
        if self.method is not None:
            if self.spec is not None:
                raise ValueError("pass either spec= or the deprecated method=, not both")
            if self.method not in ("forward", "mcmc", "stratified"):
                raise ValueError(f"unknown sweep method {self.method!r}")
            warnings.warn(
                "ProbabilitySweep(method=...) string dispatch is deprecated; "
                "pass spec=ForwardSpec(...)/McmcSpec(...)/StratifiedSpec(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            self.spec = spec_from_method(
                self.method, p=float(self.p_values[0]), samples=self.samples, chains=self.chains
            )
        if self.spec is None:
            self.spec = ForwardSpec(
                p=float(self.p_values[0]), samples=self.samples, chains=self.chains
            )

    def spec_for(self, p: float) -> CampaignSpec:
        """The concrete spec run at grid point ``p``."""
        spec = self.spec(p) if callable(self.spec) else self.spec.with_p(p)
        if not isinstance(spec, CampaignSpec):
            raise TypeError(f"spec factory returned {type(spec).__name__}, not a CampaignSpec")
        return spec

    def run(self) -> "ProbabilitySweep":
        """Execute a campaign per probability point (idempotent: clears old points)."""
        self.points = []
        self.failed_points = []
        specs = [self.spec_for(float(p)) for p in self.p_values]
        obs.publish("sweep.start", points=len(specs), p_min=float(self.p_values[0]),
                    p_max=float(self.p_values[-1]))
        with obs.span("sweep", points=len(specs)):
            if self.executor is not None:
                if self.journal is not None:
                    self.executor.journal = self.journal
                campaigns = self.executor.run(specs)
            elif self.journal is not None:
                campaigns = self._run_journaled(specs)
            else:
                campaigns = []
                for index, spec in enumerate(specs):
                    outcome = self.injector.run(spec)
                    publish_outcome(index, outcome, spec=spec, target=self.injector.spec)
                    campaigns.append(outcome)
        failures = {} if self.executor is None else {
            failure.index: failure for failure in self.executor.stats.failed_tasks
        }
        for index, (p, campaign) in enumerate(zip(self.p_values, campaigns)):
            if campaign is None:  # quarantined under on_failure="degrade"
                failure = failures.get(index)
                entry = {
                    "p": float(p),
                    "reason": failure.reason if failure else "task failed",
                    "cause": failure.cause if failure else "unknown",
                    "attempts": failure.attempts if failure else 0,
                }
                self.failed_points.append(entry)
                obs.publish("sweep.point_failed", **entry)
                _LOGGER.warning("sweep point p=%g failed (%s); continuing degraded",
                                float(p), entry["reason"])
                continue
            if isinstance(campaign, tuple):  # TemperedSpec: (result, weighted error)
                campaign = campaign[0]
            lo, hi = campaign.posterior.credible_interval()
            self.points.append(
                SweepPoint(
                    p=float(p),
                    mean_error=campaign.mean_error,
                    ci_lo=lo,
                    ci_hi=hi,
                    mean_flips=campaign.mean_flips,
                    campaign=campaign,
                )
            )
            obs.publish(
                "sweep.point",
                p=float(p),
                mean_error=campaign.mean_error,
                ci_lo=lo,
                ci_hi=hi,
                hazard_fraction=campaign.hazard_fraction,
            )
            _LOGGER.info("sweep point %s", campaign)
        return self

    def _run_journaled(self, specs: list[CampaignSpec]) -> list:
        """Sequential execution with durable per-point journaling.

        Uses the same task keys as the executor path — injector seed and
        target spec — so a sweep journaled sequentially resumes correctly
        under a parallel executor and vice versa.
        """
        from repro.exec.journal import target_fingerprint, task_key

        scope = target_fingerprint(self.injector.spec)
        campaigns = []
        for index, spec in enumerate(specs):
            key = task_key(spec, seed=self.injector.seed, scope=scope)
            cached = self.journal.get(key)
            if cached is not None:
                _LOGGER.info("journal hit for p=%g; skipping re-run", spec.p)
                # the run that produced this digest merged in another
                # process/session; this is its one chance to reach totals
                # — and to feed the estimator tracker
                obs.merge_campaign_metrics(cached)
                publish_outcome(index, cached, spec=spec, target=self.injector.spec)
                campaigns.append(cached)
                continue
            outcome = self.injector.run(spec)
            self.journal.record(key, outcome)
            publish_outcome(index, outcome, spec=spec, target=self.injector.spec)
            campaigns.append(outcome)
        return campaigns

    # ------------------------------------------------------------------ #
    # completeness accounting
    # ------------------------------------------------------------------ #

    @property
    def degraded(self) -> bool:
        """Whether any grid point failed (results cover a subset of the grid)."""
        return bool(self.failed_points)

    def accounting(self) -> dict:
        """Explicit completed/failed breakdown over the probability grid.

        ``completed + failed == points`` by construction: every grid point
        is either backed by a campaign in ``self.points`` or named in
        ``failed_points`` — no silent loss. Downstream summaries should
        surface this whenever ``degraded`` is true, so credible intervals
        are honestly scoped to the completed subset.
        """
        return {
            "points": len(self.p_values),
            "completed": len(self.points),
            "failed": len(self.failed_points),
            "failed_points": [dict(entry) for entry in self.failed_points],
        }

    # ------------------------------------------------------------------ #
    # series accessors (the figure data)
    # ------------------------------------------------------------------ #

    def _require_points(self) -> None:
        if not self.points:
            raise RuntimeError("sweep has not been run; call .run() first")

    @property
    def golden_error(self) -> float:
        return self.injector.golden_error

    def errors(self) -> np.ndarray:
        self._require_points()
        return np.asarray([pt.mean_error for pt in self.points])

    def probabilities(self) -> np.ndarray:
        self._require_points()
        return np.asarray([pt.p for pt in self.points])

    def durations(self) -> np.ndarray:
        """Wall-clock seconds per point (throughput diagnostics)."""
        self._require_points()
        return np.asarray([pt.campaign.duration_s for pt in self.points])

    def fit_regimes(self, truncate_saturation: bool = False) -> TwoRegimeFit:
        """Two-regime fit over the sweep (finding F2).

        ``truncate_saturation`` drops the trailing plateau where the error
        has hit the task's random-guess ceiling before fitting; see
        :func:`~repro.core.knee.truncate_saturated_tail`.
        """
        self._require_points()
        p_values, errors = self.probabilities(), self.errors()
        if truncate_saturation:
            p_values, errors = truncate_saturated_tail(p_values, errors)
        return fit_two_regimes(p_values, errors)

    def table(self) -> list[dict[str, float]]:
        """Rows for the figure table: p, error %, CI, flips, golden %, seconds, hazard %."""
        self._require_points()
        return [
            {
                "p": pt.p,
                "error_pct": 100 * pt.mean_error,
                "ci_lo_pct": 100 * pt.ci_lo,
                "ci_hi_pct": 100 * pt.ci_hi,
                "golden_pct": 100 * self.golden_error,
                "mean_flips": pt.mean_flips,
                "duration_s": pt.campaign.duration_s,
                "hazard_pct": 100 * pt.campaign.hazard_fraction,
            }
            for pt in self.points
        ]
