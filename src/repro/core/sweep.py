"""Flip-probability sweeps — the harness behind Figs. 2 and 4.

A sweep runs one campaign per probability on a log grid (the paper sweeps
p ∈ [1e-5, 1e-1]) and assembles the error-vs-p series, the golden-run
reference line, and the two-regime fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.campaign import CampaignResult
from repro.core.injector import BayesianFaultInjector
from repro.core.knee import TwoRegimeFit, fit_two_regimes, truncate_saturated_tail
from repro.utils.logging import get_logger

__all__ = ["SweepPoint", "ProbabilitySweep"]

_LOGGER = get_logger("core.sweep")


@dataclass(frozen=True)
class SweepPoint:
    """One probability point of a sweep."""

    p: float
    mean_error: float
    ci_lo: float
    ci_hi: float
    mean_flips: float
    campaign: CampaignResult


@dataclass
class ProbabilitySweep:
    """Error-vs-flip-probability experiment over one injector.

    Parameters
    ----------
    injector:
        Configured :class:`BayesianFaultInjector` (model + eval batch + spec).
    p_values:
        Flip probabilities, defaults to the paper's log grid 1e-5 … 1e-1.
    samples / chains / method:
        Per-point campaign budget; ``method`` is ``"forward"``, ``"mcmc"``,
        or ``"stratified"``.
    """

    injector: BayesianFaultInjector
    p_values: tuple[float, ...] = ()
    samples: int = 200
    chains: int = 2
    method: str = "forward"
    points: list[SweepPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.p_values:
            self.p_values = tuple(np.logspace(-5, -1, 13))
        p_arr = np.asarray(self.p_values, dtype=np.float64)
        if np.any(p_arr <= 0) or np.any(p_arr > 1):
            raise ValueError("flip probabilities must lie in (0, 1]")
        if np.any(np.diff(p_arr) <= 0):
            raise ValueError("p_values must be strictly increasing")
        if self.method not in ("forward", "mcmc", "stratified"):
            raise ValueError(f"unknown sweep method {self.method!r}")

    def run(self) -> "ProbabilitySweep":
        """Execute a campaign per probability point (idempotent: clears old points)."""
        self.points = []
        for p in self.p_values:
            campaign = self._run_point(float(p))
            lo, hi = campaign.posterior.credible_interval()
            self.points.append(
                SweepPoint(
                    p=float(p),
                    mean_error=campaign.mean_error,
                    ci_lo=lo,
                    ci_hi=hi,
                    mean_flips=campaign.mean_flips,
                    campaign=campaign,
                )
            )
            _LOGGER.info("sweep point %s", campaign)
        return self

    def _run_point(self, p: float) -> CampaignResult:
        if self.method == "forward":
            return self.injector.forward_campaign(p, samples=self.samples, chains=self.chains)
        if self.method == "mcmc":
            steps = max(4, self.samples // self.chains)
            return self.injector.mcmc_campaign(p, chains=self.chains, steps=steps)
        from repro.core.stratified import StratifiedErrorEstimator

        estimator = StratifiedErrorEstimator(self.injector, samples_per_stratum=max(4, self.samples // 8))
        estimate = estimator.estimate(p)
        return estimate.as_campaign_result()

    # ------------------------------------------------------------------ #
    # series accessors (the figure data)
    # ------------------------------------------------------------------ #

    def _require_points(self) -> None:
        if not self.points:
            raise RuntimeError("sweep has not been run; call .run() first")

    @property
    def golden_error(self) -> float:
        return self.injector.golden_error

    def errors(self) -> np.ndarray:
        self._require_points()
        return np.asarray([pt.mean_error for pt in self.points])

    def probabilities(self) -> np.ndarray:
        self._require_points()
        return np.asarray([pt.p for pt in self.points])

    def fit_regimes(self, truncate_saturation: bool = False) -> TwoRegimeFit:
        """Two-regime fit over the sweep (finding F2).

        ``truncate_saturation`` drops the trailing plateau where the error
        has hit the task's random-guess ceiling before fitting; see
        :func:`~repro.core.knee.truncate_saturated_tail`.
        """
        self._require_points()
        p_values, errors = self.probabilities(), self.errors()
        if truncate_saturation:
            p_values, errors = truncate_saturated_tail(p_values, errors)
        return fit_two_regimes(p_values, errors)

    def table(self) -> list[dict[str, float]]:
        """Rows for the figure table: p, error %, CI, flips, golden %."""
        self._require_points()
        return [
            {
                "p": pt.p,
                "error_pct": 100 * pt.mean_error,
                "ci_lo_pct": 100 * pt.ci_lo,
                "ci_hi_pct": 100 * pt.ci_hi,
                "golden_pct": 100 * self.golden_error,
                "mean_flips": pt.mean_flips,
            }
            for pt in self.points
        ]
