"""Numerical-hazard containment for faulted forward passes.

Flipped exponent bits routinely drive activations to ``inf`` and logits to
``NaN`` (Beyer et al., 2020, observe exactly this across TensorFlow fault
injectors). Left alone, those values poison the campaign statistic two
ways: ``argmax`` over a NaN row returns an essentially arbitrary class, so
hazardous samples masquerade as ordinary (mis)classifications, and every
overflowing pass sprays ``RuntimeWarning`` noise over stderr.

:class:`NumericalHazardGuard` contains both failure modes. During a
faulted evaluation it

1. routes floating-point error events (overflow / invalid / divide) raised
   inside the forward pass to counters instead of warnings — the flag
   record of how hard the arithmetic was being pushed;
2. classifies each evaluation row into **correct**, **misclassified**, or
   **hazard** (any non-finite logit). A hazard row counts as an error — a
   NaN logit can never be the right answer — but *deterministically*, not
   via whatever class NaN ``argmax`` happens to emit, and it is tracked
   separately so campaigns can distinguish silent misclassification from
   numerical blow-up. ``correct + error = 1`` per evaluation, with
   ``hazard ⊆ error``.

The resulting :class:`HazardReport` rides on every
:class:`~repro.core.campaign.CampaignResult` (``campaign.hazard``),
surfaces in ``summary_row()``/sweep tables as ``hazard_pct``, and
round-trips through the campaign journal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.train.metrics import classification_error

__all__ = ["HazardReport", "NumericalHazardGuard", "hazard_aware_error"]


def _logit_array(logits) -> np.ndarray:
    if isinstance(logits, np.ndarray):
        return logits
    if hasattr(logits, "data"):  # Tensor
        return np.asarray(logits.data)
    return np.asarray(logits)


def hazard_aware_error(logits, labels) -> float:
    """Classification error with non-finite rows counted as errors.

    The pure statistic behind :meth:`NumericalHazardGuard.score` (which
    adds the bookkeeping): evaluations with fully finite logits reproduce
    :func:`~repro.train.metrics.classification_error` bit-exactly, and any
    row containing a non-finite logit counts as an error deterministically
    — never via whatever class NaN ``argmax`` happens to emit. Every
    campaign statistic path (sequential, batched, explicit DBN) shares
    this definition so their error means stay comparable.
    """
    array = _logit_array(logits)
    finite = np.isfinite(array).all(axis=1)
    if finite.all():
        return classification_error(array, labels)
    predictions = array.argmax(axis=1)
    misclassified = int(((predictions != np.asarray(labels)) & finite).sum())
    return (misclassified + int((~finite).sum())) / array.shape[0]


@dataclass(frozen=True)
class HazardReport:
    """Numerical-hazard accounting for one campaign.

    ``evaluations`` counts faulted forward passes; ``rows`` counts
    (evaluation, input) pairs — the unit the correct/misclassified/hazard
    taxonomy applies to. The ``fp_*`` fields count floating-point error
    events raised *inside* the forward passes (activation-level overflow
    included), which fire even when the damage never reaches the logits.
    """

    evaluations: int = 0
    hazard_evaluations: int = 0
    rows: int = 0
    hazard_rows: int = 0
    fp_overflow: int = 0
    fp_invalid: int = 0
    fp_divide: int = 0

    @property
    def hazard_fraction(self) -> float:
        """Fraction of evaluation rows quarantined as numerically hazardous."""
        return self.hazard_rows / self.rows if self.rows else 0.0

    @property
    def hazard_evaluation_fraction(self) -> float:
        """Fraction of forward passes with at least one hazardous row."""
        return self.hazard_evaluations / self.evaluations if self.evaluations else 0.0

    @property
    def any_hazard(self) -> bool:
        return self.hazard_rows > 0 or self.fp_overflow > 0 or self.fp_invalid > 0

    def to_dict(self) -> dict[str, int]:
        return {
            "evaluations": self.evaluations,
            "hazard_evaluations": self.hazard_evaluations,
            "rows": self.rows,
            "hazard_rows": self.hazard_rows,
            "fp_overflow": self.fp_overflow,
            "fp_invalid": self.fp_invalid,
            "fp_divide": self.fp_divide,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HazardReport":
        return cls(**{key: int(payload.get(key, 0)) for key in cls.__dataclass_fields__})

    def metrics_counters(self) -> dict[str, int]:
        """Counter increments for the campaign metrics digest.

        Namespaced views of :meth:`to_dict`, so campaign telemetry
        (``hazard.rows`` et al.) stays exactly equal to the authoritative
        per-campaign hazard accounting it is derived from.
        """
        return {f"hazard.{key}": value for key, value in self.to_dict().items()}

    def __str__(self) -> str:
        return (
            f"HazardReport({self.hazard_rows}/{self.rows} rows quarantined "
            f"[{100 * self.hazard_fraction:.2f}%], "
            f"fp events: overflow={self.fp_overflow}, invalid={self.fp_invalid}, "
            f"divide={self.fp_divide})"
        )


class NumericalHazardGuard:
    """Capture FP error events and quarantine non-finite evaluation rows.

    One guard instance accompanies one campaign execution; the injector
    installs a fresh guard per :meth:`BayesianFaultInjector.run` call and
    publishes its :meth:`report` on the returned campaign.
    """

    def __init__(self) -> None:
        self.evaluations = 0
        self.hazard_evaluations = 0
        self.rows = 0
        self.hazard_rows = 0
        self.fp_overflow = 0
        self.fp_invalid = 0
        self.fp_divide = 0

    # numpy invokes this (err_kind, flag) callback in 'call' error mode
    def _fp_event(self, kind: str, flag: int) -> None:
        if kind == "overflow":
            self.fp_overflow += 1
        elif kind == "invalid value":
            self.fp_invalid += 1
        elif kind == "divide by zero":
            self.fp_divide += 1

    def capture(self):
        """Context manager routing FP error events to counters.

        Overflow / invalid / divide-by-zero raised under this context are
        counted rather than warned; benign underflow stays ignored. The
        previous error state (and error callback) is restored on exit.
        """
        return np.errstate(
            over="call", invalid="call", divide="call", under="ignore", call=self._fp_event
        )

    def score(self, logits, labels: np.ndarray) -> float:
        """Classification error with hazardous rows contained.

        Rows whose logits contain any non-finite value always count as
        errors — a NaN output is never a correct classification — but are
        additionally quarantined into the ``hazard`` class, so the
        campaign can report how much of its error rate is numerical
        blow-up rather than silent misclassification. Evaluations with
        fully finite logits reproduce
        :func:`~repro.train.metrics.classification_error` bit-exactly.
        """
        array = _logit_array(logits)
        self.evaluations += 1
        self.rows += array.shape[0]
        finite = np.isfinite(array).all(axis=1)
        if not finite.all():
            self.hazard_rows += int((~finite).sum())
            self.hazard_evaluations += 1
        return hazard_aware_error(array, labels)

    def report(self) -> HazardReport:
        """Freeze the counters into an immutable report."""
        return HazardReport(
            evaluations=self.evaluations,
            hazard_evaluations=self.hazard_evaluations,
            rows=self.rows,
            hazard_rows=self.hazard_rows,
            fp_overflow=self.fp_overflow,
            fp_invalid=self.fp_invalid,
            fp_divide=self.fp_divide,
        )
