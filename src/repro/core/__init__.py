"""BDLFI core: the paper's primary contribution.

The :class:`~repro.core.injector.BayesianFaultInjector` realises the
four-step procedure of Section II:

1. *train* the golden network (done upstream, via :mod:`repro.train`);
2. *create the error distribution* over the network weights from the bit
   flip fault model (:mod:`repro.faults`);
3. *create a Bayesian fault model* for each neuron — the explicit DBN is
   available from :func:`~repro.core.bayesian_network.build_fault_network`;
4. *perform inference* with MCMC (:mod:`repro.mcmc`) to obtain the
   classification uncertainty for different flip probabilities.

On top sit the experiment drivers: probability sweeps with knee/regime
detection (Figs. 2 and 4), layerwise campaigns with depth-correlation
analysis (Fig. 3), decision-boundary error mapping (Fig. 1 ③), the
completeness-driven adaptive campaign (advantage #1), and the
Hamming-weight-stratified accelerated estimator (advantage #2).
"""

from repro.core.injector import BayesianFaultInjector
from repro.core.campaign import CampaignResult
from repro.core.posterior import ErrorPosterior
from repro.core.bayesian_network import build_fault_network, MaskDistribution
from repro.core.sweep import ProbabilitySweep, SweepPoint
from repro.core.layerwise import LayerwiseCampaign, LayerResult
from repro.core.boundary import DecisionBoundaryAnalysis, BoundaryMap
from repro.core.knee import fit_two_regimes, TwoRegimeFit
from repro.core.stratified import StratifiedErrorEstimator, StratifiedEstimate
from repro.core.outcomes import OutcomeCampaign, ConfigurationOutcome
from repro.core.assessment import ResilienceAssessment, assess_model
from repro.core.tracing import PropagationTrace, LayerDivergence, trace_fault_propagation
from repro.core.batched import BatchedMLPEvaluator, BatchedNetworkEvaluator
from repro.core.prefix import ChainStep, PrefixCachedForward, forward_chain, run_chain
from repro.core.hazard import HazardReport, NumericalHazardGuard, hazard_aware_error

__all__ = [
    "BayesianFaultInjector",
    "CampaignResult",
    "ErrorPosterior",
    "build_fault_network",
    "MaskDistribution",
    "ProbabilitySweep",
    "SweepPoint",
    "LayerwiseCampaign",
    "LayerResult",
    "DecisionBoundaryAnalysis",
    "BoundaryMap",
    "fit_two_regimes",
    "TwoRegimeFit",
    "StratifiedErrorEstimator",
    "StratifiedEstimate",
    "OutcomeCampaign",
    "ConfigurationOutcome",
    "ResilienceAssessment",
    "assess_model",
    "PropagationTrace",
    "LayerDivergence",
    "trace_fault_propagation",
    "BatchedMLPEvaluator",
    "BatchedNetworkEvaluator",
    "ChainStep",
    "PrefixCachedForward",
    "forward_chain",
    "run_chain",
    "HazardReport",
    "NumericalHazardGuard",
    "hazard_aware_error",
]
