"""One-call resilience assessment.

:func:`assess_model` runs the standard BDLFI battery over a trained model
— golden run, probability sweep with knee detection, outcome taxonomy at
the knee, gradient lane profile, per-layer vulnerability — and returns a
:class:`ResilienceAssessment` that renders as a markdown report. This is
the "what a downstream user actually wants" entry point: one function from
trained model to reliability engineering numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bits.fields import bit_field
from repro.core.injector import BayesianFaultInjector
from repro.core.knee import TwoRegimeFit
from repro.core.layerwise import LayerwiseCampaign, parameterised_layers
from repro.core.outcomes import OutcomeCampaign
from repro.core.sweep import ProbabilitySweep
from repro.faults.targets import TargetSpec
from repro.nn.module import Module
from repro.sensitivity.taylor import TaylorSensitivity
from repro.utils.logging import get_logger

__all__ = ["ResilienceAssessment", "assess_model"]

_LOGGER = get_logger("core.assessment")


@dataclass
class ResilienceAssessment:
    """Everything the battery measured, plus a markdown renderer."""

    golden_error: float
    sweep_table: list[dict[str, float]]
    regimes: TwoRegimeFit
    knee_p: float
    outcome_summary: dict[str, float]
    #: mean predicted Taylor impact by IEEE-754 field
    field_sensitivity: dict[str, float]
    catastrophic_sites: int
    layer_table: list[dict[str, float | str]] = field(default_factory=list)
    layer_depth_correlation: dict[str, float] = field(default_factory=dict)
    #: analytic moment-propagation bounds at the knee (Dense/ReLU models only)
    analytic_bounds: tuple[float, float] | None = None

    def to_markdown(self) -> str:
        lines = [
            "# Fault-tolerance assessment (BDLFI)",
            "",
            f"- golden classification error: **{self.golden_error:.2%}**",
            f"- two fault regimes detected: **{self.regimes.has_two_regimes}**"
            f" (knee at p ≈ {self.knee_p:.2e})",
            f"- catastrophic (non-finite-flip) fault sites: **{self.catastrophic_sites}**",
            "",
            "## Error vs flip probability",
            "",
            "| p | error % | 95% CI |",
            "|---|---|---|",
        ]
        for row in self.sweep_table:
            lines.append(
                f"| {row['p']:.2e} | {row['error_pct']:.2f} | "
                f"[{row['ci_lo_pct']:.2f}, {row['ci_hi_pct']:.2f}] |"
            )
        lines += [
            "",
            f"## Outcome taxonomy at the knee (p = {self.knee_p:.2e})",
            "",
            f"- masked: {self.outcome_summary['masked_rate']:.1%}",
            f"- SDC (silent): {self.outcome_summary['sdc_rate']:.1%}",
            f"- DUE (trappable): {self.outcome_summary['due_rate']:.1%}",
        ]
        detectable = self.outcome_summary["detectable_damage_fraction"]
        if np.isfinite(detectable):
            lines.append(f"- fraction of damage an isfinite-guard would catch: {detectable:.1%}")
        lines += [
            "",
            "## Bit-field sensitivity (Taylor, one backward pass)",
            "",
        ]
        for name in ("sign", "exponent", "mantissa"):
            lines.append(f"- {name}: mean predicted impact {self.field_sensitivity[name]:.3e}")
        if self.analytic_bounds is not None:
            lo, hi = self.analytic_bounds
            lines += [
                "",
                f"analytic (moment-propagation) error bounds at the knee: "
                f"[{100 * lo:.2f} %, {100 * hi:.2f} %]",
            ]
        if self.layer_table:
            lines += ["", "## Per-layer vulnerability", "", "| layer | error % | parameters |", "|---|---|---|"]
            for row in self.layer_table:
                lines.append(f"| {row['layer']} | {row['error_pct']:.2f} | {row['parameters']} |")
            correlation = self.layer_depth_correlation
            lines.append("")
            lines.append(
                f"depth↔error Spearman ρ = {correlation['spearman_rho']:+.3f} "
                f"(p = {correlation['spearman_p']:.3f})"
            )
        return "\n".join(lines)


def assess_model(
    model: Module,
    inputs: np.ndarray,
    labels: np.ndarray,
    spec: TargetSpec | None = None,
    seed: int = 0,
    p_values: tuple[float, ...] | None = None,
    samples_per_point: int = 100,
    outcome_samples: int = 150,
    layerwise_samples: int = 30,
    include_layerwise: bool = True,
    workers: int = 1,
    model_builder=None,
) -> ResilienceAssessment:
    """Run the full assessment battery; see module docstring.

    The flip-probability grid defaults to the paper's 1e-5 … 1e-1 range;
    pass a custom grid for networks whose knee lies elsewhere (knee
    position scales roughly as 1/#parameters — see EXPERIMENTS.md E4).

    ``workers > 1`` fans the sweep and layerwise campaigns out over a
    :class:`~repro.exec.executor.ParallelCampaignExecutor` — results are
    bit-identical to the sequential battery. ``model_builder`` (a picklable
    zero-argument architecture constructor) switches worker transport from
    embedded-model to builder + golden checkpoint.
    """
    spec = spec or TargetSpec.weights_and_biases()
    injector = BayesianFaultInjector(model, inputs, labels, spec=spec, seed=seed)

    executor = None
    if workers > 1:
        from repro.exec.executor import InjectorRecipe, ParallelCampaignExecutor

        recipe = InjectorRecipe.from_model(
            model, inputs, labels, spec=spec, seed=seed, model_builder=model_builder
        )
        executor = ParallelCampaignExecutor(recipe, workers=workers)

    sweep = ProbabilitySweep(
        injector,
        p_values=p_values or tuple(np.logspace(-5, -1, 9)),
        samples=samples_per_point,
        chains=2,
        executor=executor,
    ).run()
    regimes = sweep.fit_regimes(truncate_saturation=True)
    knee_p = float(np.clip(regimes.knee_p, sweep.p_values[0], sweep.p_values[-1]))
    _LOGGER.info("assessment sweep complete; knee at p=%g", knee_p)

    outcomes = OutcomeCampaign(injector).run(knee_p, samples=outcome_samples)

    sensitivity = TaylorSensitivity(model, inputs, labels, injector.parameter_targets)
    lanes = sensitivity.lane_profile()
    field_sensitivity: dict[str, list[float]] = {"sign": [], "exponent": [], "mantissa": []}
    for lane, value in lanes.items():
        if np.isfinite(value):
            field_sensitivity[bit_field(lane)].append(value)
    field_means = {
        name: float(np.mean(values)) if values else float("inf")
        for name, values in field_sensitivity.items()
    }
    catastrophic = sum(sensitivity.catastrophic_site_counts().values())

    analytic_bounds: tuple[float, float] | None = None
    try:
        from repro.moments import MomentPropagator

        prediction = MomentPropagator(model, knee_p).predict_error(inputs, labels)
        analytic_bounds = (prediction.error_lower, prediction.error_upper)
    except TypeError:
        pass  # non-Dense/ReLU architecture: analytic propagation unavailable

    layer_table: list[dict[str, float | str]] = []
    depth_correlation: dict[str, float] = {}
    if include_layerwise and len(parameterised_layers(model)) >= 2:
        layerwise = LayerwiseCampaign(
            model, inputs, labels, p=knee_p, samples=layerwise_samples, chains=1, seed=seed,
            executor=executor, model_builder=model_builder,
        ).run()
        layer_table = layerwise.table()
        depth_correlation = layerwise.depth_correlation()

    return ResilienceAssessment(
        golden_error=injector.golden_error,
        sweep_table=sweep.table(),
        regimes=regimes,
        knee_p=knee_p,
        outcome_summary=outcomes.summary(),
        field_sensitivity=field_means,
        catastrophic_sites=catastrophic,
        layer_table=layer_table,
        layer_depth_correlation=depth_correlation,
        analytic_bounds=analytic_bounds,
    )
