"""Layer-by-layer fault-propagation tracing.

Fig. 3's finding (F3) says *where* a fault lands doesn't predict damage by
depth; this module shows *why* by following a concrete fault through the
network: run the evaluation batch clean and faulted, capture every
parameterised layer's output via forward hooks, and report per-layer
divergence measures. Typical traces show residual connections carrying
corruption forward unattenuated while ReLUs and batch-norm occasionally
quench it — the mechanism behind the flat depth profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.configuration import FaultConfiguration
from repro.faults.injection import apply_configuration
from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad

__all__ = ["LayerDivergence", "PropagationTrace", "trace_fault_propagation"]


@dataclass(frozen=True)
class LayerDivergence:
    """Clean-vs-faulted divergence at one layer's output."""

    layer: str
    depth_index: int
    #: ‖faulted − clean‖₂ / (‖clean‖₂ + ε)
    relative_l2: float
    #: fraction of activation entries whose sign changed
    sign_flip_fraction: float
    #: any non-finite values in the faulted activations
    non_finite: bool


@dataclass(frozen=True)
class PropagationTrace:
    """A fault configuration's full propagation record."""

    layers: tuple[LayerDivergence, ...]
    #: fraction of final predictions changed by the fault
    prediction_change_fraction: float

    def divergence_profile(self) -> np.ndarray:
        """Relative-L2 series by depth (the plottable trace)."""
        return np.asarray([layer.relative_l2 for layer in self.layers])

    def first_corrupted_layer(self, tolerance: float = 1e-9) -> str | None:
        """Name of the shallowest layer whose output diverged."""
        for layer in self.layers:
            if layer.relative_l2 > tolerance or layer.non_finite:
                return layer.layer
        return None

    def amplification(self) -> float:
        """Ratio of final to first non-zero divergence (∞ if quenched to 0→).

        > 1 means the network amplified the corruption on its way to the
        output; < 1 means attenuation (masking).
        """
        profile = self.divergence_profile()
        nonzero = profile[profile > 0]
        if nonzero.size == 0:
            return 0.0
        first = nonzero[0]
        last = profile[-1]
        return float(last / first) if first > 0 else float("inf")

    def table(self) -> list[dict[str, object]]:
        return [
            {
                "depth": layer.depth_index,
                "layer": layer.layer,
                "relative_l2": layer.relative_l2,
                "sign_flips": layer.sign_flip_fraction,
                "non_finite": layer.non_finite,
            }
            for layer in self.layers
        ]


def _capture_outputs(model: Module, layer_names: list[str], x: Tensor) -> dict[str, np.ndarray]:
    captured: dict[str, np.ndarray] = {}
    handles = []
    for name in layer_names:
        module = model.get_submodule(name)

        def hook(mod, inputs, output, _name=name):
            captured[_name] = output.data.copy()

        handles.append(module.register_forward_hook(hook))
    try:
        with no_grad(), np.errstate(all="ignore"):
            logits = model(x)
        captured["__logits__"] = logits.data.copy()
    finally:
        for handle in handles:
            handle.remove()
    return captured


def trace_fault_propagation(
    model: Module,
    inputs: np.ndarray,
    configuration: FaultConfiguration,
    layers: list[str] | None = None,
) -> PropagationTrace:
    """Trace ``configuration``'s corruption through ``model`` on ``inputs``.

    ``layers`` defaults to every parameterised leaf module in forward
    order. The model is restored to its golden state afterwards.
    """
    from repro.core.layerwise import parameterised_layers

    inputs = np.asarray(inputs, dtype=np.float32)
    if inputs.size == 0:
        raise ValueError("inputs must be non-empty")
    layer_names = layers if layers is not None else parameterised_layers(model)
    if not layer_names:
        raise ValueError("no layers to trace")

    model.eval()
    x = Tensor(inputs)
    clean = _capture_outputs(model, layer_names, x)
    with apply_configuration(model, configuration):
        faulted = _capture_outputs(model, layer_names, x)

    records = []
    for depth, name in enumerate(layer_names):
        clean_out = clean[name].astype(np.float64)
        faulted_out = faulted[name].astype(np.float64)
        finite = np.isfinite(faulted_out)
        diff = np.where(finite, faulted_out, 0.0) - clean_out
        denom = float(np.linalg.norm(clean_out)) + 1e-12
        relative = float(np.linalg.norm(diff)) / denom
        if not finite.all():
            relative = float("inf")
        sign_flips = float((np.sign(np.where(finite, faulted_out, 0.0)) != np.sign(clean_out)).mean())
        records.append(
            LayerDivergence(
                layer=name,
                depth_index=depth,
                relative_l2=relative,
                sign_flip_fraction=sign_flips,
                non_finite=bool(not finite.all()),
            )
        )

    clean_predictions = clean["__logits__"].argmax(axis=1)
    faulted_predictions = faulted["__logits__"].argmax(axis=1)
    change = float((clean_predictions != faulted_predictions).mean())
    return PropagationTrace(layers=tuple(records), prediction_change_fraction=change)
