"""The explicit Bayesian fault network (paper Fig. 1 ②).

BDLFI's formal object is a Bayesian network: per stored tensor, a latent
error variable ``e`` whose bits are Bernoulli(p); a deterministic transform
``W' = e ⊕ W``; the deterministic network forward pass on the faulted
parameters; and the resulting output/error nodes. The campaigns in
:mod:`repro.core.injector` never materialise this graph (they sample it
implicitly, which is faster); this module builds the *actual*
:class:`~repro.bayes.BayesianNetwork` for inspection, teaching, and the
tests that prove the implicit and explicit formulations agree.
"""

from __future__ import annotations

import numpy as np

from repro.bayes.distributions import Distribution
from repro.bayes.graph import BayesianNetwork
from repro.bits.float32 import apply_bit_mask
from repro.faults.model import FaultModel
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor, no_grad
from repro.core.hazard import hazard_aware_error

__all__ = ["MaskDistribution", "build_fault_network"]


class MaskDistribution(Distribution):
    """Adapter exposing a :class:`FaultModel`'s mask law as a Distribution.

    Sampling returns a uint32 XOR mask of the fixed shape; ``log_prob``
    delegates to the fault model. This is the per-tensor aggregate of the
    b₁..b₃₂ Bernoulli lattice drawn in the paper's figure.
    """

    def __init__(self, fault_model: FaultModel, shape: tuple[int, ...]) -> None:
        self.fault_model = fault_model
        self.shape = tuple(shape)

    def sample(self, rng: np.random.Generator, size=None):
        if size is not None:
            raise ValueError("MaskDistribution draws one mask per call (size unsupported)")
        return self.fault_model.sample_mask(self.shape, rng)

    def log_prob(self, value) -> np.ndarray:
        value = np.asarray(value)
        if value.shape != self.shape:
            raise ValueError(f"mask shape {value.shape} does not match {self.shape}")
        return np.asarray(self.fault_model.log_prob_mask(value))

    @property
    def mean(self) -> float:
        raise NotImplementedError("bit masks have no scalar mean")

    @property
    def variance(self) -> float:
        raise NotImplementedError("bit masks have no scalar variance")


def build_fault_network(
    model: Module,
    targets: list[tuple[str, Parameter]],
    fault_model: FaultModel,
    inputs: np.ndarray,
    labels: np.ndarray,
) -> BayesianNetwork:
    """Construct the explicit DBN for a golden model and evaluation batch.

    Nodes (topological order):

    * ``e:{name}``      — random mask per target tensor,
    * ``faulted:{name}``— deterministic ``W' = e ⊕ W`` (float32 array),
    * ``logits``        — deterministic forward pass with all faulted
      parameters substituted,
    * ``error``         — deterministic classification error vs ``labels``.

    Ancestral sampling of this network is *exactly* one BDLFI forward
    campaign draw; ``tests/test_core/test_bayesian_network.py`` asserts the
    equivalence against :class:`BayesianFaultInjector`.
    """
    inputs = np.asarray(inputs, dtype=np.float32)
    labels = np.asarray(labels, dtype=np.int64)
    if not targets:
        raise ValueError("build_fault_network requires at least one target")

    network = BayesianNetwork()
    golden = {name: param.data.copy() for name, param in targets}

    for name, param in targets:
        network.random_variable(f"e:{name}", MaskDistribution(fault_model, param.shape))
        network.deterministic(
            f"faulted:{name}",
            # late-bound golden weights; default arg pins the loop variable
            lambda pv, _name=name: apply_bit_mask(golden[_name], pv[f"e:{_name}"]),
            (f"e:{name}",),
        )

    faulted_names = tuple(f"faulted:{name}" for name, _ in targets)

    def _forward(parent_values) -> np.ndarray:
        saved = {}
        try:
            for name, param in targets:
                saved[name] = param.data.copy()
                param.data[...] = parent_values[f"faulted:{name}"]
            model.eval()
            with no_grad(), np.errstate(all="ignore"):
                logits = model(Tensor(inputs))
            return logits.data.copy()
        finally:
            for name, param in targets:
                param.data[...] = saved[name]

    network.deterministic("logits", _forward, faulted_names)
    network.deterministic(
        "error", lambda pv: hazard_aware_error(pv["logits"], labels), ("logits",)
    )
    return network
