"""Decision-boundary error mapping — the harness behind Fig. 1 ③.

The paper's finding F1: "The most likely classification errors are produced
as a result of faults that happen at the decision boundary", motivating
protection thresholds on the hard-to-classify regions of feature space.

:class:`DecisionBoundaryAnalysis` evaluates a 2-D classifier over a dense
grid, samples fault configurations from the AVF model, and records for
every grid point the probability that a fault draw changes its prediction
away from the *golden* prediction. The output :class:`BoundaryMap` carries
the log-error-probability field of Fig. 1 ③ plus each point's distance to
the golden decision boundary, so F1 reduces to a rank correlation
(flip probability falls with boundary distance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.faults.bernoulli import BernoulliBitFlipModel
from repro.faults.configuration import FaultConfiguration
from repro.faults.model import FaultModel
from repro.faults.targets import TargetSpec, resolve_parameter_targets
from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.rng import RngFactory

__all__ = ["BoundaryMap", "DecisionBoundaryAnalysis"]


@dataclass(frozen=True)
class BoundaryMap:
    """Fault-sensitivity field over a 2-D input grid."""

    xs: np.ndarray
    ys: np.ndarray
    #: golden predicted class per grid point, shape (ny, nx)
    golden_prediction: np.ndarray
    #: P(prediction changes under a fault draw), shape (ny, nx)
    flip_probability: np.ndarray
    #: unsigned distance (grid units) to the nearest golden boundary cell
    boundary_distance: np.ndarray
    samples: int

    def log_flip_probability(self, floor: float | None = None) -> np.ndarray:
        """log₁₀ P(flip), floored so never-flipped cells stay plottable.

        The default floor is half the resolution of the campaign
        (1 / (2·samples)) — the standard continuity correction.
        """
        floor = floor if floor is not None else 1.0 / (2.0 * self.samples)
        return np.log10(np.maximum(self.flip_probability, floor))

    def distance_correlation(self) -> dict[str, float]:
        """Spearman correlation between boundary distance and flip probability.

        F1 predicts strongly negative ρ: far from the boundary, faults
        rarely change the decision.
        """
        distance = self.boundary_distance.reshape(-1)
        flips = self.flip_probability.reshape(-1)
        result = sps.spearmanr(distance, flips)
        return {"spearman_rho": float(result.statistic), "spearman_p": float(result.pvalue)}

    def band_summary(self, n_bands: int = 5) -> list[dict[str, float]]:
        """Mean flip probability by distance band (near → far).

        The monotone decay across bands is the table-form of Fig. 1 ③.
        """
        if n_bands < 2:
            raise ValueError(f"need at least 2 bands, got {n_bands}")
        distance = self.boundary_distance.reshape(-1)
        flips = self.flip_probability.reshape(-1)
        edges = np.quantile(distance, np.linspace(0, 1, n_bands + 1))
        edges[-1] += 1e-9
        rows = []
        for i in range(n_bands):
            mask = (distance >= edges[i]) & (distance < edges[i + 1])
            rows.append(
                {
                    "band": i,
                    "distance_lo": float(edges[i]),
                    "distance_hi": float(edges[i + 1]),
                    "mean_flip_probability": float(flips[mask].mean()) if mask.any() else float("nan"),
                    "cells": int(mask.sum()),
                }
            )
        return rows


class DecisionBoundaryAnalysis:
    """Grid-based fault-sensitivity study of a 2-D classifier.

    Parameters
    ----------
    model:
        Trained classifier over 2-D inputs.
    bounds:
        ``(x_lo, x_hi, y_lo, y_hi)`` of the evaluation window.
    resolution:
        Grid cells per axis.
    fault_model:
        Defaults to the paper's Bernoulli model at p=1e-3 over all weights.
    """

    def __init__(
        self,
        model: Module,
        bounds: tuple[float, float, float, float],
        resolution: int = 60,
        fault_model: FaultModel | None = None,
        spec: TargetSpec | None = None,
        seed: int = 0,
    ) -> None:
        x_lo, x_hi, y_lo, y_hi = bounds
        if x_lo >= x_hi or y_lo >= y_hi:
            raise ValueError(f"degenerate bounds {bounds}")
        if resolution < 4:
            raise ValueError(f"resolution must be >= 4, got {resolution}")
        self.model = model.eval()
        self.xs = np.linspace(x_lo, x_hi, resolution).astype(np.float32)
        self.ys = np.linspace(y_lo, y_hi, resolution).astype(np.float32)
        self.fault_model = fault_model or BernoulliBitFlipModel(1e-3)
        self.spec = spec or TargetSpec()
        self.targets = resolve_parameter_targets(model, self.spec)
        if not self.targets:
            raise ValueError("target spec selects no parameters in this model")
        self._rng_factory = RngFactory(seed)
        grid_x, grid_y = np.meshgrid(self.xs, self.ys)
        self._grid = np.stack([grid_x.reshape(-1), grid_y.reshape(-1)], axis=1)
        self._shape = grid_x.shape

    def _grid_predictions(self) -> np.ndarray:
        with no_grad(), np.errstate(all="ignore"):
            logits = self.model(Tensor(self._grid))
        return logits.data.argmax(axis=1)

    def run(self, samples: int = 100) -> BoundaryMap:
        """Sample ``samples`` fault draws; count per-cell prediction changes."""
        if samples <= 0:
            raise ValueError(f"samples must be positive, got {samples}")
        golden = self._grid_predictions().reshape(self._shape)

        rng = self._rng_factory.stream("boundary")
        change_counts = np.zeros(self._shape, dtype=np.int64)
        from repro.faults.injection import apply_configuration

        for _ in range(samples):
            configuration = FaultConfiguration.sample(self.targets, self.fault_model, rng)
            with apply_configuration(self.model, configuration):
                faulted = self._grid_predictions().reshape(self._shape)
            change_counts += faulted != golden

        flip_probability = change_counts / samples
        distance = _distance_to_boundary(golden)
        return BoundaryMap(
            xs=self.xs,
            ys=self.ys,
            golden_prediction=golden,
            flip_probability=flip_probability,
            boundary_distance=distance,
            samples=samples,
        )


def _distance_to_boundary(labels: np.ndarray) -> np.ndarray:
    """Distance (in grid cells) from each cell to the nearest class change.

    A cell is a boundary cell if any 4-neighbour has a different golden
    label; distances are the Euclidean distance transform from that set.
    """
    from scipy import ndimage

    boundary = np.zeros(labels.shape, dtype=bool)
    boundary[:-1, :] |= labels[:-1, :] != labels[1:, :]
    boundary[1:, :] |= labels[1:, :] != labels[:-1, :]
    boundary[:, :-1] |= labels[:, :-1] != labels[:, 1:]
    boundary[:, 1:] |= labels[:, 1:] != labels[:, :-1]
    if not boundary.any():
        # Degenerate: single-class window; distances are all "far".
        return np.full(labels.shape, float(max(labels.shape)), dtype=np.float64)
    return ndimage.distance_transform_edt(~boundary)
