"""Hamming-weight-stratified error estimation (advantage #2).

Under the Bernoulli(p) model the total flip count across the target bit
space is ``K ~ Binomial(N, p)`` and, *given K = k*, the flipped positions
are uniform without replacement. The fault-induced expected error therefore
decomposes exactly:

    E[error] = Σₖ P(K = k) · E[error | K = k]

Plain Monte Carlo wastes almost its whole budget on k=0 (no faults) when p
is small, yet k=0 contributes the known golden error. The stratified
estimator spends its forward passes only on the informative strata
k = 1, 2, …, k_max (covering ≥ 1−ε of the non-zero mass) and reuses the
same conditional estimates across *every* p in a sweep — the per-k
conditional law does not depend on p. A 13-point sweep thus costs the same
forward passes as a single point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.bits.float32 import BITS_PER_FLOAT, positions_to_mask
from repro.core.campaign import CampaignResult
from repro.core.posterior import ErrorPosterior
from repro.faults.configuration import FaultConfiguration
from repro.mcmc.chain import Chain, ChainSet
from repro.utils.rng import RngFactory

__all__ = ["StratifiedErrorEstimator", "StratifiedEstimate"]


@dataclass(frozen=True)
class StratifiedEstimate:
    """Stratified estimate at one flip probability."""

    p: float
    mean_error: float
    std_error: float
    golden_error: float
    stratum_weights: dict[int, float]
    stratum_means: dict[int, float]
    evaluations: int
    #: raw per-stratum samples, for posterior reconstruction
    stratum_samples: dict[int, np.ndarray]
    seed: int

    def as_campaign_result(self) -> CampaignResult:
        """Repackage as a CampaignResult (weighted-resample posterior).

        The posterior samples are drawn from the stratified mixture so that
        downstream consumers (sweeps, tables) can treat stratified and
        plain campaigns identically.
        """
        rng = np.random.default_rng(self.seed)
        strata = sorted(self.stratum_weights)
        weights = np.asarray([self.stratum_weights[k] for k in strata])
        weights = weights / weights.sum()
        draws = []
        n_draws = max(200, self.evaluations)
        counts = rng.multinomial(n_draws, weights)
        for k, count in zip(strata, counts):
            if count == 0:
                continue
            pool = self.stratum_samples[k]
            if pool.size == 0:
                continue
            draws.append(rng.choice(pool, size=count, replace=True))
        samples = np.concatenate(draws) if draws else np.asarray([self.golden_error])
        chain = Chain(0)
        for value in samples:
            chain.record(float(value), flips=0)
        posterior = ErrorPosterior(np.clip(samples, 0.0, 1.0), self.golden_error)
        return CampaignResult(
            flip_probability=self.p,
            golden_error=self.golden_error,
            chains=ChainSet([chain]),
            posterior=posterior,
            method="stratified",
            seed=self.seed,
        )


class StratifiedErrorEstimator:
    """Estimate E[error] by conditioning on the flip count K.

    Parameters
    ----------
    injector:
        The configured :class:`~repro.core.injector.BayesianFaultInjector`;
        only its parameter targets and statistic are used (transient
        surfaces are not stratifiable and must not be selected).
    samples_per_stratum:
        Forward passes per conditional estimate E[error | K = k].
    mass_tolerance:
        Strata are included until the *residual* Binomial mass above k_max
        is below this; the residual is bounded by the worst case error = 1.
    """

    def __init__(
        self,
        injector,
        samples_per_stratum: int = 25,
        mass_tolerance: float = 1e-4,
        max_strata: int = 64,
    ) -> None:
        if samples_per_stratum <= 0:
            raise ValueError(f"samples_per_stratum must be positive, got {samples_per_stratum}")
        if not 0 < mass_tolerance < 1:
            raise ValueError(f"mass_tolerance must be in (0, 1), got {mass_tolerance}")
        if injector.activation_modules or injector._wants_inputs:
            raise ValueError("stratified estimation supports parameter surfaces only")
        self.injector = injector
        self.samples_per_stratum = samples_per_stratum
        self.mass_tolerance = mass_tolerance
        self.max_strata = max_strata
        self._rng_factory = RngFactory(injector.seed).child("stratified")
        self._targets = injector.parameter_targets
        self._sizes = np.asarray([param.size for _, param in self._targets], dtype=np.int64)
        self._offsets = np.concatenate([[0], np.cumsum(self._sizes * BITS_PER_FLOAT)])
        self.total_bits = int(self._offsets[-1])
        #: cached conditional samples: k → array of error values
        self._conditional_cache: dict[int, np.ndarray] = {}
        self.evaluations_spent = 0

    # ------------------------------------------------------------------ #
    # conditional sampling
    # ------------------------------------------------------------------ #

    def configuration_with_flips(self, k: int, rng: np.random.Generator) -> FaultConfiguration:
        """Uniformly choose k distinct global bit positions and build masks.

        This is the conditional law P(configuration | K = k); ``k = 1``
        recovers the single-bit-flip model traditional injectors use, which
        experiment E7 exploits for matched-model comparisons.
        """
        positions = rng.choice(self.total_bits, size=k, replace=False)
        masks = {}
        for index, (name, param) in enumerate(self._targets):
            lo, hi = self._offsets[index], self._offsets[index + 1]
            local = positions[(positions >= lo) & (positions < hi)] - lo
            masks[name] = positions_to_mask(local, param.shape)
        return FaultConfiguration(masks)

    def conditional_error_samples(self, k: int) -> np.ndarray:
        """Sampled error values given exactly k flipped bits (cached)."""
        if k < 0:
            raise ValueError(f"flip count must be non-negative, got {k}")
        if k == 0:
            return np.asarray([self.injector.golden_error])
        if k not in self._conditional_cache:
            rng = self._rng_factory.stream(f"stratum:{k}")
            statistic = self.injector.make_statistic(
                fault_model=None, rng=rng  # no transient surfaces by construction
            )
            values = np.empty(self.samples_per_stratum)
            for i in range(self.samples_per_stratum):
                configuration = self.configuration_with_flips(k, rng)
                values[i] = statistic(configuration)
            self._conditional_cache[k] = values
            self.evaluations_spent += self.samples_per_stratum
        return self._conditional_cache[k]

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #

    def strata_for(self, p: float) -> tuple[np.ndarray, np.ndarray]:
        """(k values, P(K=k)) covering all but ``mass_tolerance`` of the mass."""
        if not 0 < p < 1:
            raise ValueError(f"flip probability must be in (0, 1), got {p}")
        k_max = int(sps.binom.ppf(1.0 - self.mass_tolerance, self.total_bits, p))
        k_max = min(max(k_max, 1), self.max_strata)
        ks = np.arange(0, k_max + 1)
        weights = sps.binom.pmf(ks, self.total_bits, p)
        return ks, weights

    def estimate(self, p: float) -> StratifiedEstimate:
        """Stratified estimate of the expected fault-induced error at ``p``."""
        ks, weights = self.strata_for(p)
        evaluations_before = self.evaluations_spent
        means = {}
        variances = {}
        samples = {}
        for k, weight in zip(ks, weights):
            values = self.conditional_error_samples(int(k))
            samples[int(k)] = values
            means[int(k)] = float(values.mean())
            variances[int(k)] = float(values.var(ddof=1)) if values.size > 1 else 0.0

        residual_mass = max(0.0, 1.0 - float(weights.sum()))
        mean = float(sum(weights[i] * means[int(k)] for i, k in enumerate(ks)))
        # Residual strata bounded by worst-case error 1.0 (tiny by construction).
        mean += residual_mass * 1.0
        variance = float(
            sum((weights[i] ** 2) * variances[int(k)] / max(samples[int(k)].size, 1) for i, k in enumerate(ks))
        )
        return StratifiedEstimate(
            p=p,
            mean_error=min(mean, 1.0),
            std_error=float(np.sqrt(variance)),
            golden_error=self.injector.golden_error,
            stratum_weights={int(k): float(weights[i]) for i, k in enumerate(ks)},
            stratum_means=means,
            evaluations=self.evaluations_spent - evaluations_before,
            stratum_samples=samples,
            seed=self.injector.seed,
        )

    def sweep(self, p_values: np.ndarray) -> list[StratifiedEstimate]:
        """Estimate every p, sharing conditional samples across points."""
        return [self.estimate(float(p)) for p in np.asarray(p_values)]
