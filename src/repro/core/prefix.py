"""Clean-prefix activation caching for parameter-surface campaigns.

A layerwise (or otherwise layer-filtered) campaign injects faults into one
layer while the entire network below it stays golden — yet the standard
statistic re-runs the whole clean prefix on every faulted forward pass. For
the deep layers of ResNet-18 (the paper's Fig. 3 sweep) that prefix is the
dominant cost.

This module decomposes supported models into a *forward chain* of segments
whose sequential application is verified bit-identical to ``model(x)``,
finds the earliest segment any fault target lives in (the *cut point*),
caches the golden activation entering the cut (keyed by the injector's
fixed evaluation batch), and starts every faulted forward there. Since the
suffix executes exactly the ops the full forward would — on bit-identical
inputs, because the prefix parameters are untouched — the logits are
bit-identical to the standard path; the property tests enforce that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.nn.containers import Sequential
from repro.nn.models.lenet import LeNet
from repro.nn.models.mlp import MLP
from repro.nn.models.resnet import ResNet
from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad

__all__ = ["ChainStep", "forward_chain", "run_chain", "PrefixCachedForward"]

#: sentinel step name for the MLP's implicit input flatten (owns no params)
_FLATTEN = "<flatten>"


@dataclass(frozen=True)
class ChainStep:
    """One segment of a model's forward chain.

    ``module is None`` marks the synthetic input-flatten step that
    replicates :meth:`repro.nn.models.mlp.MLP.forward`'s reshape.
    """

    name: str
    module: Module | None

    def __call__(self, x: Tensor) -> Tensor:
        if self.module is None:
            return x.reshape(x.shape[0], -1) if x.ndim > 2 else x
        return self.module(x)


def _expand(name: str, module: Module, out: list[ChainStep]) -> None:
    """Flatten nested Sequentials into leaf/block steps, preserving order."""
    if isinstance(module, Sequential):
        for child_name, child in module._modules.items():
            _expand(f"{name}.{child_name}" if name else child_name, child, out)
    else:
        out.append(ChainStep(name, module))


def forward_chain(model: Module) -> list[ChainStep] | None:
    """Decompose ``model`` into forward-chain segments, or ``None``.

    Supported topologies are the ones whose ``forward`` is a straight-line
    composition of child modules (plus MLP's input flatten): MLP,
    Sequential, LeNet, and ResNet (stem → blocks → pool → fc; each
    BasicBlock stays one segment, its residual structure intact). Callers
    must still verify the chain against the real forward (:func:`run_chain`
    versus ``model(x)``) before trusting it — subclasses may override
    ``forward``.
    """
    steps: list[ChainStep] = []
    if isinstance(model, MLP):
        steps.append(ChainStep(_FLATTEN, None))
        _expand("layers", model.layers, steps)
    elif isinstance(model, LeNet):
        _expand("features", model.features, steps)
        _expand("classifier", model.classifier, steps)
    elif isinstance(model, ResNet):
        _expand("stem", model.stem, steps)
        _expand("stages", model.stages, steps)
        steps.append(ChainStep("pool", model.pool))
        steps.append(ChainStep("fc", model.fc))
    elif isinstance(model, Sequential):
        _expand("", model, steps)
    else:
        return None
    return steps or None


def run_chain(steps: list[ChainStep], x: Tensor, start: int = 0) -> Tensor:
    """Apply ``steps[start:]`` to ``x`` in order."""
    for step in steps[start:]:
        x = step(x)
    return x


def owning_step(steps: list[ChainStep], parameter_name: str) -> int | None:
    """Index of the chain step owning a dotted parameter name, or ``None``."""
    for index, step in enumerate(steps):
        if step.module is None:
            continue
        if step.name and parameter_name.startswith(step.name + "."):
            return index
    return None


class PrefixCachedForward:
    """Evaluate faulted forwards from a cached golden prefix activation.

    Parameters
    ----------
    model:
        The golden network (eval mode).
    x:
        The fixed evaluation batch every campaign forward uses — the cache
        key; a different batch needs a different instance.
    target_names:
        Dotted parameter names faults may land in. The cut point is the
        earliest chain segment owning any of them.

    ``engaged`` is False (and :meth:`forward` must not be used) when the
    model topology is unsupported, the chain fails bit-identity
    verification against ``model(x)``, a target cannot be located, or the
    cut point is the first segment (nothing to reuse).
    """

    def __init__(self, model: Module, x: Tensor, target_names: list[str]) -> None:
        self.model = model
        self.x = x
        self.cut = 0
        self._steps = forward_chain(model)
        self._prefix_activation: Tensor | None = None
        if self._steps is None or not target_names:
            return
        owners = [owning_step(self._steps, name) for name in target_names]
        if any(owner is None for owner in owners):
            return
        cut = min(owners)
        if cut <= 0:
            return
        if all(step.module is None for step in self._steps[:cut]):
            # Only synthetic (parameterless) steps precede the cut — e.g. the
            # MLP flatten before its first Dense. Nothing worth caching.
            return
        # Verify the decomposition reproduces the real forward bit-for-bit
        # before trusting it (a subclass could override forward()).
        with no_grad(), np.errstate(all="ignore"):
            direct = model(x)
            chained = run_chain(self._steps, x)
        if not np.array_equal(
            direct.data.view(np.uint32), chained.data.view(np.uint32)
        ):
            return
        self.cut = cut

    @property
    def engaged(self) -> bool:
        """Whether faulted forwards will reuse a cached prefix."""
        return self.cut > 0

    def prefix_activation(self) -> Tensor:
        """Golden activation entering the cut segment (computed once)."""
        if self._prefix_activation is None:
            with no_grad():
                self._prefix_activation = run_chain(self._steps[: self.cut], self.x)
        return self._prefix_activation

    def forward(self) -> Tensor:
        """One faulted forward: cached prefix + live suffix.

        Call with the fault configuration already applied (the suffix reads
        the live parameter arrays) and under the campaign's ``no_grad`` /
        hazard-guard context, exactly like ``model(x)`` on the standard
        path.
        """
        with obs.phase("prefix.reuse"):
            activation = self.prefix_activation()
        return run_chain(self._steps, activation, start=self.cut)
