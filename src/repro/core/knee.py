"""Two-regime (knee) detection for error-vs-flip-probability curves.

The paper's finding F2: "there are two clear regimes ... In the first
regime consisting of smaller flip probability values ... no significant
increase in average classification error ... In the second regime ...
classification error increases significantly with flip probability. Hence
operating at the knee of these curves provides the optimal
performance-reliability trade-offs."

We fit a continuous two-segment piecewise-linear model in log₁₀(p) by
exhaustive search over candidate breakpoints (the sweep grids are small, so
exact search beats iterative fitting), and report the knee, per-regime
slopes, and the improvement over a single-line fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TwoRegimeFit", "fit_two_regimes", "truncate_saturated_tail"]


def truncate_saturated_tail(
    p_values: np.ndarray, errors: np.ndarray, rise_fraction: float = 0.9, min_points: int = 5
) -> tuple[np.ndarray, np.ndarray]:
    """Drop trailing sweep points past ``rise_fraction`` of the total rise.

    A full sweep traces an S-curve: flat at the golden error, a steep rise
    past the knee, then *saturation* near the random-guess ceiling (e.g.
    90 % for 10 balanced classes). The paper's two-regime statement is
    about the flat and rising parts; the saturation plateau is a property
    of the error metric's ceiling, and including it makes a two-segment
    fit latch onto the wrong breakpoint. This helper keeps points up to
    the first one that reaches ``min + rise_fraction·(max − min)``.
    """
    p_values = np.asarray(p_values, dtype=np.float64)
    errors = np.asarray(errors, dtype=np.float64)
    if p_values.shape != errors.shape or p_values.ndim != 1:
        raise ValueError("p_values and errors must be aligned 1-D arrays")
    if not 0 < rise_fraction <= 1:
        raise ValueError(f"rise_fraction must be in (0, 1], got {rise_fraction}")
    span = errors.max() - errors.min()
    if span == 0:
        return p_values, errors
    threshold = errors.min() + rise_fraction * span
    cut = int(np.argmax(errors >= threshold)) + 1
    cut = max(cut, min(min_points, len(errors)))
    return p_values[:cut], errors[:cut]


@dataclass(frozen=True)
class TwoRegimeFit:
    """Result of the piecewise fit.

    ``knee_log10_p`` is the breakpoint in log10 space; ``knee_p`` its linear
    value. ``slope_flat``/``slope_steep`` are the error-per-decade slopes
    left/right of the knee. ``r_squared_two``/``r_squared_one`` compare the
    two-segment fit against a single line; a material gap is the
    quantitative signature of "two clear regimes".
    """

    knee_log10_p: float
    slope_flat: float
    slope_steep: float
    intercept: float
    r_squared_two: float
    r_squared_one: float
    #: p-value of the F-test comparing the two-segment fit to a single line
    f_test_p: float

    @property
    def knee_p(self) -> float:
        return float(10.0**self.knee_log10_p)

    @property
    def has_two_regimes(self) -> bool:
        """Steep slope dominates the flat one AND the breakpoint is
        statistically justified (F-test of segment vs line, α = 0.01)."""
        steep_dominates = abs(self.slope_steep) > 3.0 * max(abs(self.slope_flat), 1e-12)
        return bool(steep_dominates and self.f_test_p < 0.01)

    def predict(self, p: np.ndarray) -> np.ndarray:
        """Evaluate the fitted piecewise model at flip probabilities ``p``."""
        x = np.log10(np.asarray(p, dtype=np.float64))
        left = self.intercept + self.slope_flat * (x - self.knee_log10_p)
        right = self.intercept + self.slope_steep * (x - self.knee_log10_p)
        return np.where(x <= self.knee_log10_p, left, right)


def _r_squared(y: np.ndarray, residual_ss: float) -> float:
    total_ss = float(((y - y.mean()) ** 2).sum())
    if total_ss == 0.0:
        return 1.0
    return 1.0 - residual_ss / total_ss


def fit_two_regimes(p_values: np.ndarray, errors: np.ndarray) -> TwoRegimeFit:
    """Fit the continuous two-segment model over a probability sweep.

    ``p_values`` must be positive and strictly increasing; ``errors`` are
    the mean classification errors (fractions or percent — scale-free).
    """
    p_values = np.asarray(p_values, dtype=np.float64)
    errors = np.asarray(errors, dtype=np.float64)
    if p_values.ndim != 1 or p_values.shape != errors.shape:
        raise ValueError("p_values and errors must be aligned 1-D arrays")
    if len(p_values) < 5:
        raise ValueError(f"need at least 5 sweep points to fit two regimes, got {len(p_values)}")
    if np.any(p_values <= 0):
        raise ValueError("flip probabilities must be positive")
    if np.any(np.diff(p_values) <= 0):
        raise ValueError("p_values must be strictly increasing")

    x = np.log10(p_values)
    y = errors

    # Single-line baseline.
    one_coeffs = np.polyfit(x, y, 1)
    one_pred = np.polyval(one_coeffs, x)
    one_ss = float(((y - one_pred) ** 2).sum())
    r2_one = _r_squared(y, one_ss)

    # Exhaustive breakpoint search: candidates at and between interior
    # points (keeping >= 2 points per side), so a knee landing exactly on a
    # sweep point is representable.
    best = None
    midpoints = (x[1:-2] + x[2:-1]) / 2.0
    candidates = np.unique(np.concatenate([midpoints, x[2:-2]]))
    for knee in candidates:
        left = np.minimum(x - knee, 0.0)
        right = np.maximum(x - knee, 0.0)
        design = np.stack([np.ones_like(x), left, right], axis=1)
        coeffs, residuals, rank, _ = np.linalg.lstsq(design, y, rcond=None)
        pred = design @ coeffs
        ss = float(((y - pred) ** 2).sum())
        if best is None or ss < best[0]:
            best = (ss, knee, coeffs)

    ss, knee, coeffs = best
    intercept, slope_flat, slope_steep = (float(c) for c in coeffs)

    # F-test: does the two-segment model (4 effective params: 3 coefficients
    # + the searched breakpoint) beat the single line (2 params)?
    from scipy import stats as sps

    n = len(x)
    df_extra = 2
    df_resid = n - 4
    if df_resid > 0 and ss > 0:
        f_stat = ((one_ss - ss) / df_extra) / (ss / df_resid)
        f_p = float(sps.f.sf(max(f_stat, 0.0), df_extra, df_resid))
    elif ss == 0.0 and one_ss > 0:
        f_p = 0.0  # perfect piecewise fit, imperfect line
    else:
        f_p = 1.0
    return TwoRegimeFit(
        knee_log10_p=float(knee),
        slope_flat=slope_flat,
        slope_steep=slope_steep,
        intercept=intercept,
        r_squared_two=_r_squared(y, ss),
        r_squared_one=r2_one,
        f_test_p=f_p,
    )
