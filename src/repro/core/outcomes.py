"""Detailed per-configuration outcome taxonomy for BDLFI campaigns.

Traditional FI reports outcomes as **masked** (no visible effect), **SDC**
(silent data corruption: predictions changed, outputs finite) and **DUE**
(detectable uncorrectable error: non-finite values reached the output —
a real deployment could trap these with an isfinite check). The scalar
classification-error statistic the paper's figures use folds all of this
together; :class:`OutcomeCampaign` keeps the taxonomy, so BDLFI results
are directly comparable with the numbers traditional injectors publish.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.compare import wilson_interval
from repro.faults.configuration import FaultConfiguration
from repro.faults.injection import apply_configuration
from repro.faults.model import FaultModel
from repro.tensor.tensor import Tensor, no_grad

__all__ = ["ConfigurationOutcome", "OutcomeCampaign"]


@dataclass(frozen=True)
class ConfigurationOutcome:
    """What one sampled fault configuration did."""

    flips: int
    #: fraction of evaluation samples whose prediction changed vs golden
    mismatch_fraction: float
    #: classification error vs the labels
    error: float
    #: non-finite values reached the logits
    due: bool

    @property
    def outcome(self) -> str:
        if self.due:
            return "due"
        if self.mismatch_fraction > 0:
            return "sdc"
        return "masked"


class OutcomeCampaign:
    """Forward campaign recording the masked/SDC/DUE taxonomy per draw.

    Parameters
    ----------
    injector:
        A configured :class:`~repro.core.injector.BayesianFaultInjector`
        (parameter surfaces; the taxonomy needs raw logits, so transient
        hook surfaces are not supported here).
    """

    def __init__(self, injector) -> None:
        if injector.activation_modules or injector._wants_inputs:
            raise ValueError("outcome campaigns support parameter surfaces only")
        self.injector = injector
        self._x = Tensor(injector.inputs)
        with no_grad():
            self._golden_predictions = injector.model(self._x).data.argmax(axis=1)
        self.outcomes: list[ConfigurationOutcome] = []

    def _evaluate(self, configuration: FaultConfiguration) -> ConfigurationOutcome:
        with apply_configuration(self.injector.model, configuration):
            with no_grad(), np.errstate(all="ignore"):
                logits = self.injector.model(self._x).data
        predictions = logits.argmax(axis=1)
        return ConfigurationOutcome(
            flips=configuration.total_flips(),
            mismatch_fraction=float((predictions != self._golden_predictions).mean()),
            error=float((predictions != self.injector.labels).mean()),
            due=bool(not np.isfinite(logits).all()),
        )

    def run(self, p: float, samples: int, fault_model: FaultModel | None = None, stream: str = "outcomes") -> "OutcomeCampaign":
        """Sample ``samples`` configurations at flip probability ``p``."""
        if samples <= 0:
            raise ValueError(f"samples must be positive, got {samples}")
        from repro.faults.bernoulli import BernoulliBitFlipModel

        model = fault_model if fault_model is not None else BernoulliBitFlipModel(p)
        rng = self.injector._rng_factory.stream(f"{stream}:p={p!r}")
        for _ in range(samples):
            configuration = FaultConfiguration.sample(self.injector.parameter_targets, model, rng)
            self.outcomes.append(self._evaluate(configuration))
        return self

    # ------------------------------------------------------------------ #
    # rates
    # ------------------------------------------------------------------ #

    def _require_outcomes(self) -> None:
        if not self.outcomes:
            raise RuntimeError("campaign has not been run; call .run() first")

    def _rate(self, kind: str) -> float:
        self._require_outcomes()
        return float(np.mean([o.outcome == kind for o in self.outcomes]))

    @property
    def masked_rate(self) -> float:
        return self._rate("masked")

    @property
    def sdc_rate(self) -> float:
        return self._rate("sdc")

    @property
    def due_rate(self) -> float:
        return self._rate("due")

    def rate_interval(self, kind: str, confidence: float = 0.95) -> tuple[float, float]:
        """Wilson interval on one outcome rate."""
        self._require_outcomes()
        hits = sum(o.outcome == kind for o in self.outcomes)
        return wilson_interval(hits, len(self.outcomes), confidence)

    def mean_error(self) -> float:
        self._require_outcomes()
        return float(np.mean([o.error for o in self.outcomes]))

    def detectable_fraction_of_damage(self) -> float:
        """Among non-masked outcomes, the fraction a deployment could trap.

        DUE outcomes are detectable with an isfinite output check; SDCs are
        the silent residue — the number that matters for safety cases.
        """
        self._require_outcomes()
        damaged = [o for o in self.outcomes if o.outcome != "masked"]
        if not damaged:
            return float("nan")
        return float(np.mean([o.outcome == "due" for o in damaged]))

    def summary(self) -> dict[str, float]:
        self._require_outcomes()
        return {
            "samples": float(len(self.outcomes)),
            "masked_rate": self.masked_rate,
            "sdc_rate": self.sdc_rate,
            "due_rate": self.due_rate,
            "mean_error": self.mean_error(),
            "detectable_damage_fraction": self.detectable_fraction_of_damage(),
        }
