"""Delta-forward re-evaluation for chain campaigns.

MCMC and tempered chains evaluate *sequentially related* fault
configurations: each proposal is a small perturbation of the chain's
current state, typically confined to one parameter tensor deep in the
network, yet the standard statistic pays a full forward pass per proposal.
This module caches, per chain, the boundary activations the chain's
*current* state produces at every segment of the verified forward chain
(:func:`repro.core.prefix.forward_chain`), diffs each proposal against the
current state mask by mask, and recomputes only from the deepest segment
whose fault targets changed — falling back to the full (golden-prefix)
path when the delta spans the whole chain. Proposals from parallel chains
or tempering rungs are evaluated as a *round*: the per-chain entry
activations are stacked and the candidates run through
:class:`~repro.core.batched.BatchedNetworkEvaluator` in one grouped
forward.

Bit-identity contract (the same one the other fast paths honour): the
cached activation entering segment ``j`` is valid for a candidate
precisely when the candidate's masks equal the current state's on every
target owned by segments ``< j`` — the prefix then executes identical ops
on identical parameters — and the recomputed suffix is the batched
evaluator's property-tested machinery. Scored statistics, hazard
row/evaluation accounting, and RNG streams are therefore identical to the
standard path; only op-granular FP error event *counts* may differ (fewer
ops run), as documented for :meth:`BatchedNetworkEvaluator.evaluate_logits`.

Observability: cached-boundary fetches are billed to the ``delta.reuse``
profiler phase and recomputed suffixes to ``delta.recompute``;
``delta.cache.hit`` / ``delta.cache.miss`` counters (plus
``delta.segments.reused``, measured relative to the static prefix cut)
land in the campaign metrics digest when a driver registry is attached.
"""

from __future__ import annotations

import numpy as np

import repro.obs as obs
from repro.core.batched import BatchedNetworkEvaluator
from repro.core.hazard import NumericalHazardGuard
from repro.faults.configuration import FaultConfiguration

__all__ = ["DeltaSession", "DeltaChainEvaluator"]


class DeltaSession:
    """Per-chain cache of the current state's segment boundary activations.

    A session tracks one chain (or one tempering rung): the committed
    :class:`FaultConfiguration` the chain currently sits at, and the
    activations entering every chain segment beyond the static prefix cut
    under that state's faults. Evaluations are *staged* — the engine
    scores a candidate and parks its boundaries here — and only become the
    session's state when the sampler accepts and calls :meth:`commit`;
    a rejected candidate is simply overwritten by the next round.
    """

    __slots__ = ("_engine", "state", "_bounds", "_pending")

    def __init__(self, engine: "DeltaChainEvaluator") -> None:
        self._engine = engine
        #: the committed configuration, or None before the first commit
        self.state: FaultConfiguration | None = None
        # activation entering step j, keyed by j in (base, n]; [n] = logits
        self._bounds: dict[int, np.ndarray] | None = None
        self._pending: tuple[FaultConfiguration, dict[int, np.ndarray]] | None = None

    def cut_for(self, candidate: FaultConfiguration) -> int:
        """Deepest segment index the cached boundaries stay valid up to.

        Returns the minimum owning step over targets whose masks differ
        from the committed state (0 when there is no committed state yet,
        i.e. recompute everything; ``n_steps`` when nothing differs, i.e.
        the cached logits can be reused outright).
        """
        state = self.state
        if state is None:
            return 0
        cut = self._engine.n_steps
        for name, owner in self._engine.owners.items():
            if owner >= cut:
                continue
            if not state.same_mask(candidate, name):
                cut = owner
        return cut

    def boundary(self, index: int) -> np.ndarray:
        """Cached activation entering step ``index`` for the committed state."""
        return self._bounds[index]

    def logits(self) -> np.ndarray:
        """Cached logits of the committed state."""
        return self._bounds[self._engine.n_steps]

    def inherit(self, start: int) -> dict[int, np.ndarray]:
        """Boundaries valid for a candidate recomputed from ``start``."""
        if self._bounds is None:
            return {}
        return {index: value for index, value in self._bounds.items() if index <= start}

    def stage(
        self, candidate: FaultConfiguration, bounds: dict[int, np.ndarray] | None
    ) -> None:
        """Park an evaluated candidate (``None`` bounds = full logits reuse)."""
        self._pending = (candidate, self._bounds if bounds is None else bounds)

    def commit(self) -> None:
        """Promote the staged candidate to the session's committed state."""
        if self._pending is None:
            raise RuntimeError("no staged evaluation to commit")
        self.state, self._bounds = self._pending
        self._pending = None


class DeltaChainEvaluator:
    """Score rounds of chain proposals via incremental delta forwards.

    Parameters
    ----------
    injector:
        A parameter-only :class:`~repro.core.injector.BayesianFaultInjector`.
    evaluator:
        The injector's :class:`BatchedNetworkEvaluator` (built here when
        omitted — raising, like the evaluator itself, when the model does
        not decompose into a verified forward chain).

    One engine serves any number of concurrent :meth:`session`\\ s; all
    mutable chain state lives in the sessions, so the engine can be cached
    on the injector and shared across campaigns.
    """

    def __init__(self, injector, evaluator: BatchedNetworkEvaluator | None = None) -> None:
        self.injector = injector
        self._evaluator = evaluator if evaluator is not None else BatchedNetworkEvaluator(injector)
        steps = self._evaluator._steps
        #: number of chain segments; boundary index n_steps holds the logits
        self.n_steps = len(steps)
        #: static prefix cut — no fault target lives below it, ever
        self.base = self._evaluator._cut
        #: dotted target name → owning chain segment index
        self.owners: dict[str, int] = {}
        for target in self._evaluator._targets:
            self.owners[target] = next(
                index
                for index, step in enumerate(steps)
                if step.module is not None and target.startswith(step.name + ".")
            )

    def session(self) -> DeltaSession:
        """A fresh per-chain session (no committed state yet)."""
        return DeltaSession(self)

    def evaluate_round(
        self,
        sessions: list[DeltaSession],
        candidates: list[FaultConfiguration],
        guard: NumericalHazardGuard | None = None,
    ) -> list[float]:
        """Score one candidate per session; one grouped forward per round.

        Returns the campaign statistic (hazard-aware classification error)
        per candidate, bit-identical to scoring each through the standard
        sequential statistic. Each session is left with the candidate
        *staged*: call :meth:`DeltaSession.commit` on acceptance.

        Candidates whose masks equal their session's committed state reuse
        the cached logits outright (``guard.score`` still runs, so hazard
        evaluation/row accounting matches the standard path exactly); the
        rest recompute from the shallowest changed segment across the
        round, stacked through one grouped batched forward.
        """
        if len(sessions) != len(candidates):
            raise ValueError(
                f"sessions ({len(sessions)}) and candidates ({len(candidates)}) misaligned"
            )
        if not candidates:
            raise ValueError("need at least one candidate")
        injector = self.injector
        guard = guard or injector._active_guard or NumericalHazardGuard()
        metrics = injector._active_metrics
        if metrics is not None:
            from repro.core.injector import _record_configuration

            for candidate in candidates:
                _record_configuration(metrics, candidate)
        labels = injector.labels
        n = self.n_steps
        cuts = [session.cut_for(candidate) for session, candidate in zip(sessions, candidates)]
        values: list[float] = [0.0] * len(candidates)

        live = [index for index, cut in enumerate(cuts) if cut < n]
        for index, cut in enumerate(cuts):
            if cut < n:
                continue
            # Nothing changed (e.g. a block resample redrew an identical —
            # often empty — mask): the committed logits are the candidate's.
            with obs.phase("delta.reuse"):
                logits = sessions[index].logits()
            values[index] = guard.score(logits, labels)
            sessions[index].stage(candidates[index], None)
            if metrics is not None:
                metrics.inc("delta.cache.hit")
                metrics.inc("delta.segments.reused", n - self.base)
        if not live:
            return values

        start = min(cuts[index] for index in live)
        live_candidates = [candidates[index] for index in live]
        if start <= self.base:
            # Delta spans the whole chain (or a session has no state yet):
            # full path from the shared golden prefix, exactly like
            # ``evaluate_logits``.
            start = self.base
            entry = self._evaluator._prefix_activation()
            entry_diverged = False
        else:
            with obs.phase("delta.reuse"):
                entry = np.stack([sessions[index].boundary(start) for index in live])
            entry_diverged = True
        if metrics is not None:
            for index in live:
                if start > self.base:
                    metrics.inc("delta.cache.hit")
                    metrics.inc("delta.segments.reused", start - self.base)
                else:
                    metrics.inc("delta.cache.miss")
        boundaries: list = []
        with obs.phase("delta.recompute"):
            final = self._evaluator.run_segments(
                live_candidates, entry, start, entry_diverged, guard=guard, boundaries=boundaries
            )
        for position, index in enumerate(live):
            bounds = sessions[index].inherit(start)
            for offset, state in enumerate(boundaries):
                if state.diverged:
                    # Contiguous copy: the row must survive the round's big
                    # stacked array and feed later GEMMs exactly as a
                    # sequential activation would.
                    bounds[start + 1 + offset] = np.ascontiguousarray(state.data[position])
                else:
                    bounds[start + 1 + offset] = state.data
            values[index] = guard.score(bounds[n], labels)
            sessions[index].stage(candidates[index], bounds)
        return values
