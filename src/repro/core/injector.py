"""BayesianFaultInjector — the BDLFI engine.

Binds together a trained (golden) network, an evaluation set, a target
specification, and a fault-model family, and exposes the paper's inference
procedures:

* :meth:`forward_campaign` — i.i.d. ancestral sampling from the fault prior
  (exact Monte Carlo over the DBN);
* :meth:`mcmc_campaign` — multi-chain Metropolis–Hastings with mixing
  diagnostics (the configuration the paper describes);
* :meth:`run_until_complete` — adaptive campaign that stops when the
  :class:`~repro.mcmc.mixing.CompletenessCriterion` is met (advantage #1);
* :meth:`tempered_campaign` — failure-biased MCMC with importance
  reweighting for rare-event regimes (advantage #2).

Every procedure is also available declaratively: build a
:class:`~repro.exec.specs.CampaignSpec` and hand it to :meth:`run`, the
single dispatcher all the keyword-argument methods above are thin wrappers
over. Specs are what the :class:`~repro.exec.executor.ParallelCampaignExecutor`
fans out over worker pools.

The *statistic* pushed through every sampler is the classification error of
the faulted network on the evaluation batch, evaluated in eval mode under
``no_grad``. Weight/bias faults are applied via XOR masks (the MCMC state);
activation and input faults, being transient, are redrawn per forward pass
through hooks when the target spec selects those surfaces.
"""

from __future__ import annotations

import contextlib
import dataclasses

import numpy as np

import repro.obs as obs
from repro.bits.fields import field_mask
from repro.bits.float32 import count_set_bits
from repro.core.batched import BatchedNetworkEvaluator
from repro.core.campaign import CampaignResult
from repro.core.hazard import NumericalHazardGuard
from repro.core.prefix import PrefixCachedForward
from repro.exec.specs import (
    AdaptiveSpec,
    CampaignSpec,
    ForwardSpec,
    McmcSpec,
    StratifiedSpec,
    TemperedSpec,
    TemperingSpec,
)
from repro.core.posterior import ErrorPosterior
from repro.faults.bernoulli import BernoulliBitFlipModel
from repro.faults.configuration import FaultConfiguration
from repro.faults.injection import ActivationInjector, InputInjector, apply_configuration
from repro.faults.model import FaultModel
from repro.faults.targets import (
    FaultSurface,
    TargetSpec,
    resolve_activation_modules,
    resolve_parameter_targets,
)
from repro.mcmc.chain import Chain, ChainSet
from repro.mcmc.forward import PROGRESS_EVERY, ForwardSampler
from repro.mcmc.metropolis import MetropolisHastingsSampler
from repro.mcmc.mixing import CompletenessCriterion
from repro.mcmc.proposals import BlockResample, MixtureProposal, SingleBitToggle
from repro.obs.metrics import MetricsRegistry
from repro.mcmc.targets import PriorTarget, TemperedErrorTarget
from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad
from repro.train.metrics import classification_error
from repro.utils.logging import get_logger
from repro.utils.rng import RngFactory, spawn_generators
from repro.utils.timing import Timer

__all__ = ["BayesianFaultInjector"]

_LOGGER = get_logger("core")

#: sign/exponent/mantissa masks, precomputed for the per-flip field taxonomy
_FIELD_MASKS = tuple((field, field_mask(field)) for field in ("sign", "exponent", "mantissa"))

#: configurations evaluated per batched sweep on the fast forward path —
#: bounds the (chunk, batch, channels, H, W) float64 intermediates
_FAST_CHUNK = 8

#: sentinel for lazily constructed fast-path machinery
_UNSET = object()


def _record_configuration(metrics, configuration: FaultConfiguration) -> None:
    """Detailed per-evaluation counters: flips by IEEE-754 field and by layer.

    Runs on the statistic hot path, but only when a driver registry is
    attached (``--metrics`` / ``obs.configure(metrics=...)``). Counts are
    pure functions of the configuration, so sequential and parallel runs
    reduce to identical totals.
    """
    metrics.inc("forward_passes")
    for name, sparse in configuration.sparse_items():
        flips = sparse.count_set_bits()
        if not flips:
            continue
        metrics.inc(f"flips.layer.{name}", flips)
        for field, bits in _FIELD_MASKS:
            # Field masks are per-lane constants, so counting over the
            # touched elements' lane masks equals counting over the dense mask.
            in_field = count_set_bits(sparse.lane_masks & bits)
            if in_field:
                metrics.inc(f"flips.field.{field}", in_field)


class BayesianFaultInjector:
    """Fault-injection engine over one golden network and evaluation batch.

    Parameters
    ----------
    model:
        Trained network (will be switched to eval mode).
    inputs / labels:
        Evaluation batch the classification-error statistic is computed on.
    spec:
        Fault surfaces and layer filters; defaults to all weights.
    seed:
        Root seed; every campaign derives named substreams, so results are
        exactly reproducible and independent across campaigns.
    fast:
        Fast-path selection for parameter-surface campaigns. ``None``
        (default) auto-enables clean-prefix activation caching and batched
        forward evaluation whenever the model supports them — both are
        bit-identical to the standard path, so results never change.
        ``False`` forces the standard path (a debugging escape hatch);
        ``True`` demands the fast path and raises if it is unavailable.
    """

    def __init__(
        self,
        model: Module,
        inputs: np.ndarray,
        labels: np.ndarray,
        spec: TargetSpec | None = None,
        seed: int = 0,
        fast: bool | None = None,
    ) -> None:
        inputs = np.asarray(inputs, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if len(inputs) != len(labels):
            raise ValueError(f"inputs ({len(inputs)}) and labels ({len(labels)}) misaligned")
        if len(labels) == 0:
            raise ValueError("evaluation batch is empty")
        self.model = model.eval()
        self.inputs = inputs
        self.labels = labels
        self.spec = spec or TargetSpec()
        self.seed = seed
        self._rng_factory = RngFactory(seed)
        #: hazard guard of the campaign currently executing under :meth:`run`
        self._active_guard: NumericalHazardGuard | None = None
        #: campaign-local registry for *detailed* (per-flip) metrics; only set
        #: while :meth:`run` executes with a driver registry attached, so the
        #: hot path costs one attribute check when detailed metrics are off
        self._active_metrics: MetricsRegistry | None = None

        self.parameter_targets = resolve_parameter_targets(model, self.spec)
        self.activation_modules = resolve_activation_modules(model, self.spec)
        self._wants_parameters = bool(self.parameter_targets)
        self._wants_inputs = FaultSurface.INPUTS in self.spec.surfaces
        if not (self._wants_parameters or self.activation_modules or self._wants_inputs):
            raise ValueError("target spec selects nothing in this model")

        self.fast = fast
        self._fast_prefix = _UNSET
        self._fast_evaluator = _UNSET
        self._fast_delta = _UNSET
        if fast and not self._parameter_only():
            raise ValueError(
                "fast=True requires parameter-only fault surfaces; transient "
                "(activation/input) injection redraws faults per forward pass "
                "and cannot reuse cached activations"
            )

        self._x = Tensor(self.inputs)
        self._golden_error = self._evaluate_clean()

    # ------------------------------------------------------------------ #
    # evaluation primitives
    # ------------------------------------------------------------------ #

    @property
    def golden_error(self) -> float:
        """Classification error of the fault-free network on the eval batch."""
        return self._golden_error

    def _evaluate_clean(self) -> float:
        with no_grad():
            logits = self.model(self._x)
        return classification_error(logits, self.labels)

    def _predict(self) -> np.ndarray:
        with no_grad():
            logits = self.model(self._x)
        return logits.data.argmax(axis=1)

    def _transient_context(self, fault_model: FaultModel, rng: np.random.Generator):
        """Stack of hook injectors for the transient (activation/input) surfaces."""
        stack = contextlib.ExitStack()
        if self.activation_modules:
            stack.enter_context(ActivationInjector(self.activation_modules, fault_model, rng))
        if self._wants_inputs:
            stack.enter_context(InputInjector(self.model, fault_model, rng))
        return stack

    # ------------------------------------------------------------------ #
    # fast-path machinery (bit-identical to the standard path)
    # ------------------------------------------------------------------ #

    def _parameter_only(self) -> bool:
        """Whether every selected fault surface is a parameter surface."""
        return self._wants_parameters and not self.activation_modules and not self._wants_inputs

    def _prefix_forward(self) -> PrefixCachedForward | None:
        """Lazily built clean-prefix forward, or ``None`` when unavailable.

        Engages only for parameter-only campaigns (transient hooks corrupt
        prefix activations, so a cached prefix would miss them) and only when
        the model decomposes into a verified forward chain with a non-trivial
        cut point.
        """
        if self._fast_prefix is _UNSET:
            prefix = None
            if self.fast is not False and self._parameter_only():
                candidate = PrefixCachedForward(
                    self.model, self._x, [name for name, _ in self.parameter_targets]
                )
                if candidate.engaged:
                    prefix = candidate
            self._fast_prefix = prefix
        return self._fast_prefix

    def _batched_evaluator(self) -> BatchedNetworkEvaluator | None:
        """Lazily built batched evaluator, or ``None`` when unavailable."""
        if self._fast_evaluator is _UNSET:
            evaluator = None
            if self.fast is not False and self._parameter_only():
                try:
                    evaluator = BatchedNetworkEvaluator(self)
                except (TypeError, ValueError) as exc:
                    if self.fast is True:
                        raise ValueError(
                            f"fast=True but batched evaluation is unavailable: {exc}"
                        ) from exc
            self._fast_evaluator = evaluator
        return self._fast_evaluator

    def _delta_engine(self):
        """Lazily built delta-forward chain engine, or ``None`` when unavailable.

        Shares the injector's :class:`BatchedNetworkEvaluator` (one chain
        decomposition + verification per injector); the engine itself is
        stateless across campaigns — each sampler run opens fresh sessions.
        """
        if self._fast_delta is _UNSET:
            engine = None
            evaluator = self._batched_evaluator()
            if evaluator is not None:
                from repro.core.delta import DeltaChainEvaluator

                engine = DeltaChainEvaluator(self, evaluator)
            self._fast_delta = engine
        return self._fast_delta

    def _chain_engine(self, spec_fast: bool | None):
        """Delta engine for one chain campaign, honouring the spec override.

        ``spec_fast`` wins over the injector-level ``fast`` knob when set:
        ``False`` forces the standard per-proposal path, ``True`` requires
        the delta engine (raising when unavailable), ``None`` inherits the
        injector default (auto-engage when supported).
        """
        effective = self.fast if spec_fast is None else spec_fast
        if effective is False:
            return None
        if not self._parameter_only():
            if effective is True:
                raise ValueError(
                    "fast=True requires parameter-only fault surfaces; transient "
                    "(activation/input) injection redraws faults per forward pass "
                    "and cannot reuse cached activations"
                )
            return None
        engine = self._delta_engine()
        if engine is None and effective is True:
            raise ValueError(
                "fast=True but delta-forward chain evaluation is unavailable "
                "(the model does not decompose into a verified forward chain, "
                "or the injector was built with fast=False)"
            )
        return engine

    def make_statistic(
        self,
        fault_model: FaultModel,
        rng: np.random.Generator,
        guard: NumericalHazardGuard | None = None,
    ):
        """Build ``FaultConfiguration → classification error`` for one campaign.

        Parameter masks come from the configuration (the MCMC state);
        transient surfaces draw fresh faults from ``fault_model`` inside the
        evaluation, using the supplied stream.

        Every evaluation runs under a :class:`NumericalHazardGuard`
        (``guard``, the active campaign's guard, or a private one): flipped
        exponent bits legitimately produce inf/nan activations, so FP error
        events are counted rather than warned, and rows with non-finite
        logits are quarantined into the ``hazard`` outcome class instead of
        polluting the misclassification statistic.
        """
        hazard_guard = guard or self._active_guard or NumericalHazardGuard()
        fast_forward = self._prefix_forward()

        def statistic(configuration: FaultConfiguration) -> float:
            if self._active_metrics is not None:
                _record_configuration(self._active_metrics, configuration)
            if self._wants_parameters:
                parameter_context = apply_configuration(self.model, configuration)
            else:  # transient-only campaign; the configuration is a placeholder
                parameter_context = contextlib.nullcontext()
            # Campaign-phase accounting (obs.phase is a nullcontext when no
            # profiler is attached): the XOR mask application is billed to
            # ``flip.apply``, the faulted forward pass to ``forward.eval``.
            # Both are purely observational — clock reads only.
            with contextlib.ExitStack() as stack:
                with obs.phase("flip.apply"):
                    stack.enter_context(parameter_context)
                stack.enter_context(hazard_guard.capture())
                stack.enter_context(self._transient_context(fault_model, rng))
                with obs.phase("forward.eval"):
                    with no_grad():
                        if fast_forward is not None:
                            logits = fast_forward.forward()
                        else:
                            logits = self.model(self._x)
            return hazard_guard.score(logits, self.labels)

        return statistic

    def predictions_under(self, configuration: FaultConfiguration) -> np.ndarray:
        """Predicted labels with a parameter-fault configuration applied."""
        with apply_configuration(self.model, configuration):
            return self._predict()

    # ------------------------------------------------------------------ #
    # the spec dispatcher
    # ------------------------------------------------------------------ #

    def run(self, spec: CampaignSpec):
        """Execute a declarative :class:`~repro.exec.specs.CampaignSpec`.

        The single entry point every campaign goes through: keyword-argument
        methods (:meth:`forward_campaign` et al.) build a spec and call this,
        and the :class:`~repro.exec.executor.ParallelCampaignExecutor` ships
        specs to workers that call it there. Wall-clock duration is recorded
        on the returned :class:`CampaignResult` (``duration_s``).

        Returns whatever the underlying procedure returns — a
        :class:`CampaignResult` for every spec except :class:`TemperedSpec`,
        which yields ``(CampaignResult, importance-weighted error)``.
        """
        if not isinstance(spec, CampaignSpec):
            raise TypeError(
                f"run() takes a CampaignSpec, got {type(spec).__name__}; "
                "see repro.exec.specs for the available campaign types"
            )
        handler = getattr(self, f"_execute_{spec.kind}", None)
        if handler is None:
            raise ValueError(f"no executor for campaign kind {spec.kind!r}")
        guard = NumericalHazardGuard()
        campaign_metrics = MetricsRegistry()
        self._active_guard = guard
        # per-flip detail is only recorded when a driver registry is attached;
        # the authoritative digest below is stamped unconditionally
        if obs.metrics() is not None:
            self._active_metrics = campaign_metrics
        profiler = obs.profiler()
        if profiler is not None:
            # Per-layer attribution + campaign phase grouping. The hooks are
            # passive (clock reads only) and removed on exit, so results are
            # bit-identical with or without a profiler attached.
            layer_context = obs.profile_module(self.model, profiler)
            phase_context = profiler.phase(f"campaign.{spec.kind}")
        else:
            layer_context = contextlib.nullcontext()
            phase_context = contextlib.nullcontext()
        try:
            with obs.span(f"campaign.{spec.kind}", p=spec.p, stream=getattr(spec, "stream", None)):
                with phase_context, layer_context:
                    with Timer() as timer:
                        outcome = handler(spec)
        finally:
            self._active_guard = None
            self._active_metrics = None
        hazard = guard.report()
        if hazard.any_hazard:
            _LOGGER.info("campaign %s: %s", spec.kind, hazard)
        is_pair = isinstance(outcome, tuple)
        result = outcome[0] if is_pair else outcome
        result = dataclasses.replace(result, duration_s=timer.elapsed, hazard=hazard)
        digest = self._campaign_digest(campaign_metrics, result)
        result = dataclasses.replace(result, metrics=digest)
        obs.merge_metrics(digest)
        if is_pair:
            return result, outcome[1]
        return result

    @staticmethod
    def _campaign_digest(registry: MetricsRegistry, result: CampaignResult) -> dict:
        """Stamp the authoritative per-campaign counters and freeze a snapshot.

        These counters are derived from the campaign's own accounting
        (chains, hazard report) rather than hot-path hooks, so they cost
        nothing during sampling, are exactly reproducible, and reduce to
        identical totals whether the campaign ran in-process or on a
        worker (the digest rides on the result through pipes and the
        journal). The registry may additionally hold detailed per-flip
        counters recorded inline when a driver registry was attached.
        """
        chains = result.chains
        proposal_steps = len(chains) * chains.steps
        registry.inc("campaigns")
        registry.inc("evaluations", result.total_evaluations)
        registry.inc("flips.applied", chains.total_flips())
        registry.inc("proposal.steps", proposal_steps)
        registry.inc("proposal.accepted", chains.accepted_total())
        if result.hazard is not None:
            for name, value in result.hazard.metrics_counters().items():
                registry.inc(name, value)
        registry.set_gauge("accept_rate", chains.accepted_total() / max(1, proposal_steps))
        if result.completeness is not None:
            registry.set_gauge("r_hat", result.completeness.r_hat)
            registry.set_gauge("ess", result.completeness.ess)
        registry.observe("campaign.duration_s", result.duration_s)
        return registry.snapshot()

    # ------------------------------------------------------------------ #
    # campaigns (thin wrappers building specs)
    # ------------------------------------------------------------------ #

    def _fault_model(self, p: float, fault_model: FaultModel | None) -> FaultModel:
        return fault_model if fault_model is not None else BernoulliBitFlipModel(p)

    def forward_campaign(
        self,
        p: float,
        samples: int = 200,
        chains: int = 2,
        fault_model: FaultModel | None = None,
        stream: str = "forward",
    ) -> CampaignResult:
        """i.i.d. Monte Carlo over the fault prior at flip probability ``p``."""
        return self.run(
            ForwardSpec(p=p, samples=samples, chains=chains, fault_model=fault_model, stream=stream)
        )

    def mcmc_campaign(
        self,
        p: float,
        chains: int = 4,
        steps: int = 250,
        fault_model: FaultModel | None = None,
        toggle_weight: float = 0.5,
        resample_weight: float = 0.5,
        discard_fraction: float = 0.25,
        criterion: CompletenessCriterion | None = None,
        stream: str = "mcmc",
        fast: bool | None = None,
    ) -> CampaignResult:
        """Multi-chain Metropolis–Hastings targeting the fault prior.

        The proposal mixes single-bit toggles (local) with block prior
        resampling (global); weights tune the mixing-speed experiments.
        ``fast`` overrides the injector's delta-forward knob for this
        campaign (results are bit-identical either way).
        """
        return self.run(
            McmcSpec(
                p=p,
                chains=chains,
                steps=steps,
                fault_model=fault_model,
                toggle_weight=toggle_weight,
                resample_weight=resample_weight,
                discard_fraction=discard_fraction,
                criterion=criterion,
                stream=stream,
                fast=fast,
            )
        )

    def tempered_campaign(
        self,
        p: float,
        beta: float,
        chains: int = 4,
        steps: int = 250,
        fault_model: FaultModel | None = None,
        discard_fraction: float = 0.25,
        stream: str = "tempered",
        fast: bool | None = None,
    ) -> tuple[CampaignResult, float]:
        """Failure-biased MCMC; returns (campaign, importance-weighted error).

        The chain explores π_β ∝ prior·exp(β·error); the returned weighted
        estimate self-normalises importance weights exp(−β·error) to
        recover the prior-expected classification error.
        """
        return self.run(
            TemperedSpec(
                p=p,
                beta=beta,
                chains=chains,
                steps=steps,
                fault_model=fault_model,
                discard_fraction=discard_fraction,
                stream=stream,
                fast=fast,
            )
        )

    def parallel_tempering_campaign(
        self,
        p: float,
        chains: int = 2,
        sweeps: int = 250,
        betas: tuple[float, ...] = (0.0, 5.0, 20.0, 80.0),
        fault_model: FaultModel | None = None,
        discard_fraction: float = 0.25,
        stream: str = "tempering",
        fast: bool | None = None,
    ) -> CampaignResult:
        """Replica-exchange campaign; the cold rung samples the fault prior.

        Hot rungs concentrate on error-causing configurations and pass them
        down the ladder, improving mixing in rare-event regimes without any
        importance reweighting. The returned campaign is built from the
        cold-rung chains; swap acceptance is logged.
        """
        return self.run(
            TemperingSpec(
                p=p,
                chains=chains,
                sweeps=sweeps,
                betas=tuple(betas),
                fault_model=fault_model,
                discard_fraction=discard_fraction,
                stream=stream,
                fast=fast,
            )
        )

    def run_until_complete(
        self,
        p: float,
        criterion: CompletenessCriterion | None = None,
        chains: int = 4,
        batch_steps: int = 50,
        max_steps: int = 2000,
        fault_model: FaultModel | None = None,
        stream: str = "adaptive",
    ) -> CampaignResult:
        """Grow an i.i.d. campaign until the completeness criterion fires.

        This is the BDLFI stopping rule in action: extend every chain by
        ``batch_steps``, re-assess R̂/ESS/MCSE, stop when complete (or at
        ``max_steps`` per chain, returning the final incomplete report).
        """
        return self.run(
            AdaptiveSpec(
                p=p,
                criterion=criterion,
                chains=chains,
                batch_steps=batch_steps,
                max_steps=max_steps,
                fault_model=fault_model,
                stream=stream,
            )
        )

    # ------------------------------------------------------------------ #
    # spec executors (the actual procedures)
    # ------------------------------------------------------------------ #

    def _execute_forward(self, spec: ForwardSpec) -> CampaignResult:
        p, stream = spec.p, spec.stream
        model = self._fault_model(p, spec.fault_model)
        evaluator = self._batched_evaluator()
        if evaluator is not None:
            return self._execute_forward_fast(spec, model, evaluator)
        rng = self._rng_factory.stream(f"{stream}:p={p!r}")
        sampler = ForwardSampler(
            self.parameter_targets or self._pseudo_targets(),
            model,
            self.make_statistic(model, self._rng_factory.stream(f"{stream}:transient:p={p!r}")),
        )
        steps = max(1, spec.samples // spec.chains)
        chain_set = sampler.run(chains=spec.chains, steps=steps, rng=rng)
        return self._package(p, chain_set, "forward", discard_fraction=0.0)

    def _execute_forward_fast(
        self, spec: ForwardSpec, fault_model: FaultModel, evaluator: BatchedNetworkEvaluator
    ) -> CampaignResult:
        """i.i.d. forward campaign on the batched fast path.

        Bit-identical to the standard :class:`ForwardSampler` executor: the
        same stream splits into the same per-chain generators, each chain
        draws the same configurations in the same order (the parameter-only
        statistic consumes no randomness during evaluation), and the batched
        logits are bit-identical to the sequential faulted forwards — so the
        recorded chains, posterior, and digest all match exactly. Only the
        evaluation order changes: configurations are scored ``_FAST_CHUNK``
        at a time through one stacked-einsum sweep.
        """
        p, stream = spec.p, spec.stream
        if spec.chains <= 0:
            raise ValueError(f"chains must be positive, got {spec.chains}")
        rng = self._rng_factory.stream(f"{stream}:p={p!r}")
        generators = spawn_generators(rng, spec.chains)
        steps = max(1, spec.samples // spec.chains)
        guard = self._active_guard or NumericalHazardGuard()
        chains = []
        for chain_id, generator in enumerate(generators):
            chain = Chain(chain_id)
            with obs.span("chain.forward", chain_id=chain_id, steps=steps):
                configurations = [
                    FaultConfiguration.sample(self.parameter_targets, fault_model, generator)
                    for _ in range(steps)
                ]
                done = 0
                for start in range(0, steps, _FAST_CHUNK):
                    chunk = configurations[start : start + _FAST_CHUNK]
                    if self._active_metrics is not None:
                        for configuration in chunk:
                            _record_configuration(self._active_metrics, configuration)
                    with obs.phase("forward.eval"):
                        logits = evaluator.evaluate_logits(chunk, guard=guard)
                    for configuration, row in zip(chunk, logits):
                        value = guard.score(row, self.labels)
                        chain.record(value, configuration.total_flips(), accepted=True)
                        done += 1
                        if obs.progress() is not None and done % PROGRESS_EVERY == 0:
                            window = chain.recent(PROGRESS_EVERY)
                            obs.publish(
                                "chain.progress",
                                sampler="forward",
                                chain_id=chain_id,
                                step=done,
                                steps=steps,
                                window_mean=float(window.mean()),
                            )
            chains.append(chain)
        return self._package(p, ChainSet(chains), "forward", discard_fraction=0.0)

    def _execute_mcmc(self, spec: McmcSpec) -> CampaignResult:
        if not self._wants_parameters:
            raise ValueError("MCMC campaigns require parameter fault surfaces (the mask state)")
        p, stream = spec.p, spec.stream
        model = self._fault_model(p, spec.fault_model)
        statistic = self.make_statistic(model, self._rng_factory.stream(f"{stream}:transient:p={p!r}"))
        proposal = self._make_proposal(model, spec.toggle_weight, spec.resample_weight)
        sampler = MetropolisHastingsSampler(
            PriorTarget(model),
            proposal,
            statistic,
            initial=lambda r: FaultConfiguration.sample(self.parameter_targets, model, r),
            engine=self._chain_engine(spec.fast),
        )
        chain_set = sampler.run(
            chains=spec.chains, steps=spec.steps, rng=self._rng_factory.stream(f"{stream}:p={p!r}")
        )
        criterion = spec.criterion or CompletenessCriterion()
        report = criterion.assess(chain_set)
        return self._package(
            p, chain_set, "mcmc", discard_fraction=spec.discard_fraction, completeness=report
        )

    def _execute_tempered(self, spec: TemperedSpec) -> tuple[CampaignResult, float]:
        if not self._wants_parameters:
            raise ValueError("tempered campaigns require parameter fault surfaces")
        p, beta, stream = spec.p, spec.beta, spec.stream
        model = self._fault_model(p, spec.fault_model)
        statistic = self.make_statistic(model, self._rng_factory.stream(f"{stream}:transient:p={p!r}"))
        # Memoisation requires a deterministic statistic; transient surfaces
        # redraw faults per evaluation (the sampler's identity shortcut makes
        # the memo moot here anyway, but keep the contract explicit).
        target = TemperedErrorTarget(model, statistic, beta, memoize=self._parameter_only())
        proposal = self._make_proposal(model, toggle_weight=0.7, resample_weight=0.3)
        sampler = MetropolisHastingsSampler(
            target,
            proposal,
            statistic,
            initial=lambda r: FaultConfiguration.sample(self.parameter_targets, model, r),
            engine=self._chain_engine(spec.fast),
        )
        chain_set = sampler.run(
            chains=spec.chains, steps=spec.steps, rng=self._rng_factory.stream(f"{stream}:p={p!r}")
        )
        result = self._package(
            p, chain_set, f"tempered(beta={beta:g})", discard_fraction=spec.discard_fraction
        )
        values = np.concatenate([c.tail(spec.discard_fraction) for c in chain_set.chains])
        log_w = -beta * values
        log_w -= log_w.max()
        weights = np.exp(log_w)
        weighted = float((weights * values).sum() / weights.sum())
        return result, weighted

    def _execute_tempering(self, spec: TemperingSpec) -> CampaignResult:
        if not self._wants_parameters:
            raise ValueError("tempering campaigns require parameter fault surfaces")
        from repro.mcmc.tempering import ParallelTemperingSampler

        p, stream = spec.p, spec.stream
        model = self._fault_model(p, spec.fault_model)
        statistic = self.make_statistic(model, self._rng_factory.stream(f"{stream}:transient:p={p!r}"))
        sampler = ParallelTemperingSampler(
            self.parameter_targets,
            model,
            statistic,
            proposal=self._make_proposal(model, toggle_weight=0.8, resample_weight=0.2),
            betas=spec.betas,
            engine=self._chain_engine(spec.fast),
        )
        result = sampler.run(
            chains=spec.chains, sweeps=spec.sweeps, rng=self._rng_factory.stream(f"{stream}:p={p!r}")
        )
        _LOGGER.info(
            "tempering campaign p=%g: swap acceptance %.2f, rung means %s",
            p, result.swap_acceptance, [f"{m:.3f}" for m in result.rung_means],
        )
        return self._package(
            p,
            result.cold_chains,
            f"tempering(rungs={len(spec.betas)})",
            discard_fraction=spec.discard_fraction,
        )

    def _execute_adaptive(self, spec: AdaptiveSpec) -> CampaignResult:
        criterion = spec.criterion or CompletenessCriterion()
        p, stream = spec.p, spec.stream
        model = self._fault_model(p, spec.fault_model)
        statistic = self.make_statistic(model, self._rng_factory.stream(f"{stream}:transient:p={p!r}"))
        sampler = ForwardSampler(self.parameter_targets or self._pseudo_targets(), model, statistic)
        generators = [
            self._rng_factory.stream(f"{stream}:p={p!r}:chain={i}") for i in range(spec.chains)
        ]
        from repro.mcmc.chain import Chain

        chain_objs = [Chain(i) for i in range(spec.chains)]
        report = None
        while chain_objs[0].values.size < spec.max_steps:
            for chain, gen in zip(chain_objs, generators):
                extension = sampler.run_chain(spec.batch_steps, gen, chain_id=chain.chain_id)
                for value, flips in zip(extension.values, extension.flips):
                    chain.record(value, int(flips))
            chain_set = ChainSet(chain_objs)
            report = criterion.assess(chain_set)
            _LOGGER.info("adaptive campaign p=%g: %s", p, report)
            if obs.progress() is not None:
                # live view: diagnostics over the trailing window alongside the
                # full-history report, so late drift is visible as it happens
                live = criterion.assess_window(chain_set, max(4, 2 * spec.batch_steps))
                obs.publish(
                    "adaptive.progress",
                    p=p,
                    steps=chain_set.steps,
                    complete=report.complete,
                    r_hat=report.r_hat,
                    ess=report.ess,
                    mcse=report.mcse,
                    estimate=report.estimate,
                    window_r_hat=live.r_hat,
                    window_ess=live.ess,
                    window_estimate=live.estimate,
                )
            if report.complete:
                break
        chain_set = ChainSet(chain_objs)
        report = report or criterion.assess(chain_set)
        return self._package(
            p, chain_set, "adaptive", discard_fraction=criterion.discard_fraction, completeness=report
        )

    def _execute_stratified(self, spec: StratifiedSpec) -> CampaignResult:
        from repro.core.stratified import StratifiedErrorEstimator

        estimator = StratifiedErrorEstimator(
            self,
            samples_per_stratum=spec.samples_per_stratum,
            mass_tolerance=spec.mass_tolerance,
            max_strata=spec.max_strata,
        )
        return estimator.estimate(spec.p).as_campaign_result()

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _make_proposal(self, fault_model: FaultModel, toggle_weight: float, resample_weight: float):
        components = []
        if toggle_weight > 0:
            components.append((SingleBitToggle(self.parameter_targets), toggle_weight))
        if resample_weight > 0:
            components.append((BlockResample(self.parameter_targets, fault_model), resample_weight))
        if not components:
            raise ValueError("at least one of toggle_weight/resample_weight must be positive")
        return MixtureProposal(components)

    def _pseudo_targets(self):
        """Zero-size mask space for transient-only campaigns.

        Forward sampling still needs *a* configuration object; an empty
        weight mask makes the parameter XOR a no-op while hooks do the
        actual injection.
        """
        from repro.nn.module import Parameter

        return [("__transient__", Parameter(np.zeros(0, dtype=np.float32)))]

    def _package(
        self,
        p: float,
        chain_set: ChainSet,
        method: str,
        discard_fraction: float,
        completeness=None,
    ) -> CampaignResult:
        values = np.concatenate([c.tail(discard_fraction) for c in chain_set.chains])
        posterior = ErrorPosterior(values, self.golden_error)
        return CampaignResult(
            flip_probability=p,
            golden_error=self.golden_error,
            chains=chain_set,
            posterior=posterior,
            method=method,
            seed=self.seed,
            completeness=completeness,
            discard_fraction=discard_fraction,
        )
