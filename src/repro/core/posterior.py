"""Posterior summaries of fault-induced classification error.

A campaign produces a set of classification-error observations (one per
sampled fault configuration). :class:`ErrorPosterior` summarises that
sample — mean, spread, quantiles, credible intervals, exceedance
probabilities — and is what the figure harnesses plot. The paper's
Fig. 1 ③ "log(Error) Probability Due to Faults" panel is exactly the
distribution this class captures, contrasted with the golden-run error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bayes.distributions import Beta

__all__ = ["ErrorPosterior"]


@dataclass(frozen=True)
class ErrorPosterior:
    """Summary of sampled classification-error values in [0, 1]."""

    samples: np.ndarray
    golden_error: float

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.float64)
        if samples.ndim != 1 or samples.size == 0:
            raise ValueError("samples must be a non-empty 1-D array")
        if np.any((samples < 0) | (samples > 1)):
            raise ValueError("error samples must lie in [0, 1]")
        object.__setattr__(self, "samples", samples)

    # ------------------------------------------------------------------ #
    # point and interval summaries
    # ------------------------------------------------------------------ #

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        return float(self.samples.std(ddof=1)) if len(self.samples) > 1 else 0.0

    def quantile(self, q: float | np.ndarray) -> np.ndarray:
        return np.quantile(self.samples, q)

    def credible_interval(self, mass: float = 0.95) -> tuple[float, float]:
        """Central interval of the sampled error distribution."""
        from repro.bayes.intervals import central_tails

        lo, hi = np.quantile(self.samples, central_tails(mass))
        return float(lo), float(hi)

    # ------------------------------------------------------------------ #
    # fault-impact measures
    # ------------------------------------------------------------------ #

    @property
    def excess_error(self) -> float:
        """Mean error increase over the golden run."""
        return self.mean - self.golden_error

    def exceedance_probability(self, threshold: float | None = None) -> float:
        """P(error > threshold); defaults to the golden error.

        The probability that a fault draw degrades the network at all —
        the "probability due to faults" axis of Fig. 1 ③.
        """
        if threshold is None:
            threshold = self.golden_error
        return float((self.samples > threshold).mean())

    def sdc_beta_posterior(self, threshold: float | None = None, prior: Beta | None = None) -> Beta:
        """Conjugate Beta posterior over P(error > threshold).

        Treats each configuration as a Bernoulli trial (degraded / not) and
        updates a Beta prior (default Jeffreys, Beta(1/2, 1/2)). Gives the
        calibrated credible intervals campaigns report.
        """
        if threshold is None:
            threshold = self.golden_error
        prior = prior or Beta(0.5, 0.5)
        exceed = int((self.samples > threshold).sum())
        return prior.posterior(exceed, len(self.samples) - exceed)

    def histogram(self, bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
        """(counts, bin_edges) over [0, max(samples)] for plotting."""
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        upper = max(float(self.samples.max()), self.golden_error, 1e-9)
        return np.histogram(self.samples, bins=bins, range=(0.0, upper))

    def __len__(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:
        lo, hi = self.credible_interval()
        return (
            f"ErrorPosterior(n={len(self)}, mean={self.mean:.4f}, "
            f"95%CI=[{lo:.4f}, {hi:.4f}], golden={self.golden_error:.4f})"
        )
