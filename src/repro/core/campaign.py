"""Campaign results.

A campaign = (golden model, fault model at one p, target spec, sampler,
sample budget). Its result carries the raw chains, the error posterior,
the numerical-hazard accounting, and — when the sampler was MCMC — the
completeness report.

Results round-trip losslessly through JSON (:meth:`CampaignResult.to_dict`
/ :meth:`CampaignResult.from_dict`): the campaign journal and the atomic
:meth:`save`/:meth:`load` pair rely on that to make resumed campaigns
bit-identical to uninterrupted ones. Non-finite sentinel floats (an
undefined R-hat, say) serialise as ``null`` — ``NaN`` is not valid JSON —
and are restored on load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hazard import HazardReport
from repro.core.posterior import ErrorPosterior
from repro.mcmc.chain import Chain, ChainSet
from repro.mcmc.mixing import CompletenessReport
from repro.utils.persist import (
    atomic_write_json,
    float_from_json,
    read_checked_json,
    sanitize_nonfinite,
)

__all__ = ["CampaignResult"]


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one fault-injection campaign at a single flip probability."""

    flip_probability: float
    golden_error: float
    chains: ChainSet
    posterior: ErrorPosterior
    method: str
    seed: int
    completeness: CompletenessReport | None = None
    discard_fraction: float = 0.0
    #: wall-clock seconds the campaign took (stamped by ``BayesianFaultInjector.run``)
    duration_s: float = 0.0
    #: numerical-hazard accounting (stamped by ``BayesianFaultInjector.run``)
    hazard: HazardReport | None = None
    #: per-campaign metrics digest — a :meth:`repro.obs.MetricsRegistry.snapshot`
    #: dict stamped by ``BayesianFaultInjector.run``; rides through the journal
    #: and worker pipes so the driver can reduce exact totals from anywhere
    metrics: dict | None = None

    @property
    def mean_error(self) -> float:
        return self.posterior.mean

    @property
    def mean_flips(self) -> float:
        """Average number of flipped bits per sampled configuration."""
        return float(np.concatenate([c.flips for c in self.chains.chains]).mean())

    @property
    def total_evaluations(self) -> int:
        """Forward-pass budget consumed (one evaluation per recorded step)."""
        return len(self.chains) * self.chains.steps

    @property
    def evaluations_per_second(self) -> float:
        """Campaign throughput; ``nan`` when no duration was recorded.

        Sub-millisecond campaigns (and results restored from records
        written before durations existed) have ``duration_s == 0``; a
        rate is undefined there, so this returns ``nan`` — which the
        JSON sanitiser maps to ``null`` and :meth:`summary_row` renders
        as ``n/a`` — rather than ``inf`` or a ZeroDivisionError.
        """
        if self.duration_s <= 0.0:
            return float("nan")
        return self.total_evaluations / self.duration_s

    @property
    def hazard_fraction(self) -> float:
        """Fraction of evaluation rows quarantined as numerically hazardous."""
        return self.hazard.hazard_fraction if self.hazard is not None else 0.0

    def summary_row(self) -> dict[str, float | str]:
        """Flat dict for table rendering in benches and reports."""
        lo, hi = self.posterior.credible_interval()
        row: dict[str, float | str] = {
            "p": self.flip_probability,
            "golden_error_pct": 100.0 * self.golden_error,
            "mean_error_pct": 100.0 * self.mean_error,
            "ci_lo_pct": 100.0 * lo,
            "ci_hi_pct": 100.0 * hi,
            "mean_flips": self.mean_flips,
            "method": self.method,
            "evaluations": self.total_evaluations,
            "duration_s": self.duration_s,
        }
        rate = self.evaluations_per_second
        row["evals_per_s"] = "n/a" if np.isnan(rate) else rate
        if self.hazard is not None:
            row["hazard_pct"] = 100.0 * self.hazard.hazard_fraction
        if self.completeness is not None:
            row["r_hat"] = self.completeness.r_hat
            row["ess"] = self.completeness.ess
            row["complete"] = float(self.completeness.complete)
        return row

    def to_dict(self) -> dict:
        """JSON-ready record: summary, posterior samples, per-chain traces.

        Rich enough for :meth:`from_dict` to reconstruct the result
        bit-identically (configurations themselves are not stored — persist
        those separately with :meth:`FaultConfiguration.save`). Non-finite
        floats are sanitised to JSON-clean values (``nan`` → ``null``).
        """
        record: dict = {
            "flip_probability": self.flip_probability,
            "golden_error": self.golden_error,
            "method": self.method,
            "summary": self.summary_row(),
            "posterior_samples": self.posterior.samples.tolist(),
            "chains": [chain.values.tolist() for chain in self.chains.chains],
            "flips": [chain.flips.tolist() for chain in self.chains.chains],
            "accepts": [[bool(a) for a in chain._accepts] for chain in self.chains.chains],
            "chain_ids": [chain.chain_id for chain in self.chains.chains],
            "seed": self.seed,
            "discard_fraction": self.discard_fraction,
            "duration_s": self.duration_s,
        }
        if self.completeness is not None:
            record["completeness"] = {
                "complete": self.completeness.complete,
                "r_hat": self.completeness.r_hat,
                "ess": self.completeness.ess,
                "mcse": self.completeness.mcse,
                "estimate": self.completeness.estimate,
                "steps": self.completeness.steps,
            }
        if self.hazard is not None:
            record["hazard"] = self.hazard.to_dict()
        if self.metrics is not None:
            record["metrics"] = self.metrics
        return sanitize_nonfinite(record)

    @classmethod
    def from_dict(cls, record: dict) -> "CampaignResult":
        """Reconstruct a result written by :meth:`to_dict`, bit-identically.

        Tolerates sanitised non-finite fields (``null`` → ``nan``) and
        records from before the ``accepts``/``hazard`` fields existed.
        """
        values = record["chains"]
        flips = record["flips"]
        accepts = record.get("accepts") or [[True] * len(v) for v in values]
        chain_ids = record.get("chain_ids") or list(range(len(values)))
        chains = []
        for chain_id, chain_values, chain_flips, chain_accepts in zip(
            chain_ids, values, flips, accepts
        ):
            chain = Chain(int(chain_id))
            for value, flip, accepted in zip(chain_values, chain_flips, chain_accepts):
                chain.record(float(value), int(flip), bool(accepted))
            chains.append(chain)
        summary = record.get("summary", {})
        golden_error = float_from_json(record.get("golden_error", summary.get("golden_error_pct")))
        if "golden_error" not in record:  # legacy records only carry the percentage
            golden_error = golden_error / 100.0
        flip_probability = float_from_json(record.get("flip_probability", summary.get("p")))
        method = str(record.get("method", summary.get("method", "unknown")))
        completeness = None
        if record.get("completeness") is not None:
            block = record["completeness"]
            completeness = CompletenessReport(
                complete=bool(block["complete"]),
                r_hat=float_from_json(block.get("r_hat")),
                ess=float_from_json(block.get("ess")),
                mcse=float_from_json(block.get("mcse")),
                estimate=float_from_json(block.get("estimate", summary.get("mean_error_pct", 0.0))),
                steps=int(block.get("steps", len(values[0]) if values else 0)),
            )
        hazard = None
        if record.get("hazard") is not None:
            hazard = HazardReport.from_dict(record["hazard"])
        posterior = ErrorPosterior(
            np.asarray(record["posterior_samples"], dtype=np.float64), golden_error
        )
        return cls(
            flip_probability=flip_probability,
            golden_error=golden_error,
            chains=ChainSet(chains),
            posterior=posterior,
            method=method,
            seed=int(record.get("seed", 0)),
            completeness=completeness,
            discard_fraction=float(record.get("discard_fraction", 0.0)),
            duration_s=float_from_json(record.get("duration_s", 0.0), default=0.0),
            hazard=hazard,
            metrics=record.get("metrics"),
        )

    def save(self, path: str) -> None:
        """Atomically write :meth:`to_dict` as checksummed JSON.

        The write goes through tmp-file + ``os.replace`` with an embedded
        content checksum, so a crash mid-save can never leave a torn file
        where a result used to be.
        """
        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str) -> "CampaignResult":
        """Load a result written by :meth:`save`, verifying its checksum."""
        return cls.from_dict(read_checked_json(path))

    def __repr__(self) -> str:
        return (
            f"CampaignResult(p={self.flip_probability:g}, method={self.method!r}, "
            f"error={100 * self.mean_error:.2f}% vs golden {100 * self.golden_error:.2f}%, "
            f"n={self.total_evaluations})"
        )
