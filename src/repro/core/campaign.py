"""Campaign results.

A campaign = (golden model, fault model at one p, target spec, sampler,
sample budget). Its result carries the raw chains, the error posterior,
and — when the sampler was MCMC — the completeness report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.posterior import ErrorPosterior
from repro.mcmc.chain import ChainSet
from repro.mcmc.mixing import CompletenessReport

__all__ = ["CampaignResult"]


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one fault-injection campaign at a single flip probability."""

    flip_probability: float
    golden_error: float
    chains: ChainSet
    posterior: ErrorPosterior
    method: str
    seed: int
    completeness: CompletenessReport | None = None
    discard_fraction: float = 0.0
    #: wall-clock seconds the campaign took (stamped by ``BayesianFaultInjector.run``)
    duration_s: float = 0.0

    @property
    def mean_error(self) -> float:
        return self.posterior.mean

    @property
    def mean_flips(self) -> float:
        """Average number of flipped bits per sampled configuration."""
        return float(np.concatenate([c.flips for c in self.chains.chains]).mean())

    @property
    def total_evaluations(self) -> int:
        """Forward-pass budget consumed (one evaluation per recorded step)."""
        return len(self.chains) * self.chains.steps

    @property
    def evaluations_per_second(self) -> float:
        """Campaign throughput; ``inf`` when no duration was recorded."""
        if self.duration_s <= 0.0:
            return float("inf")
        return self.total_evaluations / self.duration_s

    def summary_row(self) -> dict[str, float | str]:
        """Flat dict for table rendering in benches and reports."""
        lo, hi = self.posterior.credible_interval()
        row: dict[str, float | str] = {
            "p": self.flip_probability,
            "golden_error_pct": 100.0 * self.golden_error,
            "mean_error_pct": 100.0 * self.mean_error,
            "ci_lo_pct": 100.0 * lo,
            "ci_hi_pct": 100.0 * hi,
            "mean_flips": self.mean_flips,
            "method": self.method,
            "evaluations": self.total_evaluations,
            "duration_s": self.duration_s,
        }
        if self.completeness is not None:
            row["r_hat"] = self.completeness.r_hat
            row["ess"] = self.completeness.ess
            row["complete"] = float(self.completeness.complete)
        return row

    def to_dict(self) -> dict:
        """JSON-ready record: summary, posterior samples, per-chain values.

        Rich enough to reconstruct every figure built on this campaign
        without re-running it (configurations themselves are not stored —
        persist those separately with :meth:`FaultConfiguration.save`).
        """
        record: dict = {
            "summary": self.summary_row(),
            "posterior_samples": self.posterior.samples.tolist(),
            "chains": [chain.values.tolist() for chain in self.chains.chains],
            "flips": [chain.flips.tolist() for chain in self.chains.chains],
            "seed": self.seed,
            "discard_fraction": self.discard_fraction,
            "duration_s": self.duration_s,
        }
        if self.completeness is not None:
            record["completeness"] = {
                "complete": self.completeness.complete,
                "r_hat": self.completeness.r_hat,
                "ess": self.completeness.ess,
                "mcse": self.completeness.mcse,
            }
        return record

    def save(self, path: str) -> None:
        """Write :meth:`to_dict` as JSON (directories created as needed)."""
        import json
        import os

        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    def __repr__(self) -> str:
        return (
            f"CampaignResult(p={self.flip_probability:g}, method={self.method!r}, "
            f"error={100 * self.mean_error:.2f}% vs golden {100 * self.golden_error:.2f}%, "
            f"n={self.total_evaluations})"
        )
