"""Vectorised multi-configuration campaign evaluation for MLPs.

A campaign's cost is #configurations × one forward pass. For dense
networks the per-configuration work is small matrix algebra, so evaluating
``k`` fault configurations *simultaneously* — stacking the faulted weight
tensors into ``(k, in, out)`` arrays and contracting with einsum — turns
``k`` interpreter round-trips into one BLAS call per layer. On the paper's
MLP this is an order-of-magnitude campaign speed-up (measured in
``benchmarks/bench_micro.py``), with bit-identical semantics verified
against the sequential path.

Scope: :class:`BatchedMLPEvaluator` covers
:class:`~repro.nn.models.MLP`-shaped models (Dense/ReLU/Flatten sequences,
the Fig. 1/Fig. 2 subjects) end to end. :class:`BatchedNetworkEvaluator`
generalises to the conv nets (LeNet, ResNet — the Fig. 3 subjects): the
model's verified forward chain runs *shared* up to the first faulted
layer, the ``k`` faulted conv/dense/norm tensors are stacked and
contracted in one einsum over the shared im2col columns, and every
untouched downstream module runs once on the ``k`` diverged activations
folded into the batch axis. Both are bit-identical to the sequential
path — enforced by the fast-path property tests.
"""

from __future__ import annotations

import numpy as np

import repro.obs as obs
from repro.bits.float32 import apply_bit_mask
from repro.core.campaign import CampaignResult
from repro.core.hazard import HazardReport
from repro.core.posterior import ErrorPosterior
from repro.core.prefix import forward_chain, run_chain
from repro.faults.configuration import FaultConfiguration
from repro.faults.model import FaultModel
from repro.mcmc.chain import Chain, ChainSet
from repro.nn.activations import ReLU
from repro.nn.containers import Sequential
from repro.nn.conv import Conv2d
from repro.nn.layers import Dense, Flatten, Identity
from repro.nn.models.mlp import MLP
from repro.nn.models.resnet import BasicBlock
from repro.nn.module import Module
from repro.nn.norm import _BatchNorm
from repro.tensor.functional import im2col_indices
from repro.tensor.tensor import Tensor, no_grad

__all__ = ["BatchedMLPEvaluator", "BatchedNetworkEvaluator"]


class BatchedMLPEvaluator:
    """Evaluate many fault configurations of a dense network in one sweep.

    Parameters
    ----------
    injector:
        A configured :class:`~repro.core.injector.BayesianFaultInjector`
        over an MLP-shaped model with parameter surfaces only.
    """

    def __init__(self, injector) -> None:
        if injector.activation_modules or injector._wants_inputs:
            raise ValueError("batched evaluation supports parameter surfaces only")
        self.injector = injector
        self._plan = self._build_plan(injector.model)
        planned_params = {
            f"{prefix}.{leaf}"
            for prefix, layer in self._plan
            for leaf in ("weight", "bias")
            if getattr(layer, leaf, None) is not None
        }
        target_names = {name for name, _ in injector.parameter_targets}
        if not target_names <= planned_params:
            unplanned = sorted(target_names - planned_params)
            raise ValueError(f"targets outside the dense plan: {unplanned}")
        self._inputs = np.asarray(injector.inputs, dtype=np.float32).reshape(
            len(injector.labels), -1
        )
        #: hazard accounting of the most recent :meth:`evaluate` call
        self.last_hazard: HazardReport = HazardReport()

    # ------------------------------------------------------------------ #
    # model planning
    # ------------------------------------------------------------------ #

    @staticmethod
    def _build_plan(model: Module) -> list[tuple[str, Module]]:
        """(dotted-name, layer) pairs for the dense execution sequence."""
        if isinstance(model, MLP):
            sequence = model.layers
            prefix = "layers"
        elif isinstance(model, Sequential):
            sequence = model
            prefix = ""
        else:
            raise TypeError(
                f"BatchedMLPEvaluator supports MLP/Sequential models, got {type(model).__name__}"
            )
        plan: list[tuple[str, Module]] = []
        for index, layer in enumerate(sequence):
            if not isinstance(layer, (Dense, ReLU, Flatten, Identity)):
                raise TypeError(
                    f"unsupported layer {type(layer).__name__} for batched evaluation"
                )
            name = f"{prefix}.{index}" if prefix else str(index)
            plan.append((name, layer))
        return plan

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, configurations: list[FaultConfiguration]) -> np.ndarray:
        """Classification error per configuration, shape ``(k,)``.

        Semantics identical to scoring each configuration through
        ``injector.make_statistic`` — verified bit-level by the tests.
        """
        if not configurations:
            raise ValueError("need at least one configuration")
        k = len(configurations)
        labels = self.injector.labels
        # All math in float32 to match the sequential (deployment) path:
        # severe faulted weights overflow float32 at intermediates, and the
        # resulting inf/nan logits must be reproduced, not avoided.
        current = np.broadcast_to(self._inputs, (k,) + self._inputs.shape)  # (k, B, d)
        with np.errstate(all="ignore"):
            for name, layer in self._plan:
                if isinstance(layer, Dense):
                    weights = self._stacked_parameter(configurations, f"{name}.weight", layer.weight.data)
                    current = np.matmul(current, weights)  # float32 batched GEMM
                    if layer.bias is not None:
                        biases = self._stacked_parameter(configurations, f"{name}.bias", layer.bias.data)
                        current = current + biases[:, None, :]
                elif isinstance(layer, ReLU):
                    # Match Tensor.relu's NaN semantics (where(x>0, x, 0)):
                    # NaN compares false, so NaN activations become 0, as in
                    # the sequential path.
                    current = np.where(current > 0, current, np.float32(0.0))
                elif isinstance(layer, Flatten):
                    current = current.reshape(k, current.shape[1], -1)
        # Same hazard taxonomy as NumericalHazardGuard.score: a row with any
        # non-finite logit always counts as an error (deterministically, not
        # via NaN argmax) and is tracked separately as a hazard.
        finite = np.isfinite(current).all(axis=2)  # (k, B)
        predictions = current.argmax(axis=2)  # (k, B)
        hazard_per_configuration = (~finite).sum(axis=1)
        self.last_hazard = HazardReport(
            evaluations=k,
            hazard_evaluations=int((hazard_per_configuration > 0).sum()),
            rows=int(finite.size),
            hazard_rows=int(hazard_per_configuration.sum()),
        )
        if finite.all():
            return (predictions != labels[None, :]).mean(axis=1)
        wrong = ((predictions != labels[None, :]) & finite).sum(axis=1)
        return (wrong + hazard_per_configuration) / current.shape[1]

    def _stacked_parameter(
        self, configurations: list[FaultConfiguration], name: str, golden: np.ndarray
    ) -> np.ndarray:
        """(k, *shape) faulted copies of one parameter."""
        k = len(configurations)
        stack = np.empty((k,) + golden.shape, dtype=np.float32)
        for i, configuration in enumerate(configurations):
            if name in configuration:
                stack[i] = apply_bit_mask(golden, configuration.mask(name))
            else:
                stack[i] = golden
        return stack

    # ------------------------------------------------------------------ #
    # campaign front-end
    # ------------------------------------------------------------------ #

    def forward_campaign(
        self,
        p: float,
        samples: int = 200,
        chains: int = 2,
        fault_model: FaultModel | None = None,
        stream: str = "batched",
    ) -> CampaignResult:
        """Drop-in faster equivalent of ``injector.forward_campaign``.

        Draws the same kind of i.i.d. configurations, evaluates them in one
        vectorised sweep, and packages the standard result object. (Not
        RNG-identical to the sequential path — it uses its own stream —
        but statistically the same estimator.)
        """
        from repro.faults.bernoulli import BernoulliBitFlipModel

        if samples <= 0 or chains <= 0:
            raise ValueError("samples and chains must be positive")
        model = fault_model if fault_model is not None else BernoulliBitFlipModel(p)
        rng = self.injector._rng_factory.stream(f"{stream}:p={p!r}")
        per_chain = max(1, samples // chains)
        configurations = [
            FaultConfiguration.sample(self.injector.parameter_targets, model, rng)
            for _ in range(per_chain * chains)
        ]
        errors = self.evaluate(configurations)
        flips = [configuration.total_flips() for configuration in configurations]

        chain_objs = []
        for chain_id in range(chains):
            chain = Chain(chain_id)
            for i in range(chain_id * per_chain, (chain_id + 1) * per_chain):
                chain.record(float(errors[i]), flips[i])
            chain_objs.append(chain)
        chain_set = ChainSet(chain_objs)
        posterior = ErrorPosterior(errors, self.injector.golden_error)
        return CampaignResult(
            flip_probability=p,
            golden_error=self.injector.golden_error,
            chains=chain_set,
            posterior=posterior,
            method="forward-batched",
            seed=self.injector.seed,
            hazard=self.last_hazard,
        )


class _State:
    """Activation flowing through the batched chain.

    ``diverged`` marks whether ``data`` carries a leading configurations
    axis: shared activations are ``(B, ...)`` (identical for every
    configuration, i.e. no faulted layer crossed yet), diverged ones are
    ``(k, B, ...)``.
    """

    __slots__ = ("data", "diverged")

    def __init__(self, data: np.ndarray, diverged: bool) -> None:
        self.data = data
        self.diverged = diverged


class BatchedNetworkEvaluator:
    """Evaluate many fault configurations of a conv net in one sweep.

    Generalises :class:`BatchedMLPEvaluator` to the chain-decomposable
    models of :func:`repro.core.prefix.forward_chain` (MLP, Sequential,
    LeNet, ResNet). Three mechanisms keep the sweep bit-identical to ``k``
    sequential faulted forwards while doing far less work:

    * the chain runs *once*, shared, up to the first faulted layer (the
      activation entering it is cached across :meth:`evaluate_logits`
      calls — clean-prefix reuse);
    * a faulted Conv2d/Dense/BatchNorm contracts all ``k`` stacked faulted
      parameter tensors against the shared input in one einsum/GEMM
      (conv shares one im2col gather across configurations);
    * every untouched module after the divergence point runs once with the
      ``k`` axis folded into the batch axis — valid because eval-mode
      modules are batch-independent.

    Raises at construction when the model cannot be decomposed-and-verified
    or the campaign has non-parameter surfaces, so callers can fall back to
    the sequential path.
    """

    def __init__(self, injector) -> None:
        if injector.activation_modules or injector._wants_inputs:
            raise ValueError("batched evaluation supports parameter surfaces only")
        model = injector.model
        self.injector = injector
        steps = forward_chain(model)
        if steps is None:
            raise TypeError(
                f"no forward chain for {type(model).__name__}; batched evaluation unsupported"
            )
        self._steps = steps
        self._targets = sorted(name for name, _ in injector.parameter_targets)
        if not self._targets:
            raise ValueError("no parameter targets to batch over")
        for _, module in model.named_modules():
            if module.training:
                raise ValueError("batched evaluation requires eval-mode models")
        self._x = Tensor(np.asarray(injector.inputs))
        owners = []
        for target in self._targets:
            owner = next(
                (
                    index
                    for index, step in enumerate(steps)
                    if step.module is not None and target.startswith(step.name + ".")
                ),
                None,
            )
            if owner is None:
                raise ValueError(f"target {target!r} not owned by any chain step")
            self._check_touched_modules(steps[owner].module, steps[owner].name, target)
            owners.append(owner)
        self._cut = min(owners)
        with no_grad(), np.errstate(all="ignore"):
            direct = model(self._x)
            chained = run_chain(steps, self._x)
        if not np.array_equal(
            direct.data.view(np.uint8), chained.data.view(np.uint8)
        ):
            raise ValueError("forward chain is not bit-identical to model forward")
        self._prefix: np.ndarray | None = None

    def _check_touched_modules(self, module: Module, name: str, target: str) -> None:
        """Ensure the leaf module owning ``target`` has a batched handler."""
        leaf_types = (Dense, Conv2d, _BatchNorm)
        if isinstance(module, leaf_types):
            return
        if isinstance(module, (Sequential, BasicBlock)):
            for child_name, child in module._modules.items():
                prefix = f"{name}.{child_name}"
                if target.startswith(prefix + "."):
                    self._check_touched_modules(child, prefix, target)
                    return
        raise TypeError(
            f"no batched handler for faulted module {type(module).__name__} ({name!r})"
        )

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def evaluate_logits(
        self, configurations: list[FaultConfiguration], guard=None
    ) -> np.ndarray:
        """Logits per configuration, shape ``(k, B, classes)``.

        Bit-identical to running each configuration through
        ``apply_configuration`` + ``model(x)`` sequentially (property-tested
        at the uint level, which is NaN-safe). The caller owns hazard
        accounting — feed each ``logits[i]`` slice to the campaign's
        :class:`~repro.core.hazard.NumericalHazardGuard` exactly as the
        sequential statistic does. Passing that guard here additionally
        counts the FP error events (overflow/invalid) the sweep raises;
        without one they are silenced. Event *counts* are op-granular
        diagnostics and differ from the sequential path's — the scored
        errors do not.
        """
        if not configurations:
            raise ValueError("need at least one configuration")
        k = len(configurations)
        state = self.run_segments(
            configurations, self._prefix_activation(), self._cut, diverged=False, guard=guard
        )
        if not state.diverged:
            return np.broadcast_to(state.data, (k,) + state.data.shape)
        return state.data

    def run_segments(
        self,
        configurations: list[FaultConfiguration],
        activation: np.ndarray,
        start: int,
        diverged: bool,
        guard=None,
        boundaries: list[_State] | None = None,
    ) -> _State:
        """Run ``steps[start:]`` over an explicit entry activation.

        The delta-forward engine's entry point (:mod:`repro.core.delta`):
        ``activation`` is the array entering ``steps[start]`` — shared
        ``(B, ...)`` when ``diverged`` is False, or stacked ``(k, B, ...)``
        with rows aligned to ``configurations`` otherwise. The same
        bit-identity argument as :meth:`evaluate_logits` applies segment by
        segment, so per-row results equal sequential faulted forwards
        whenever ``activation`` itself is bit-identical to the sequential
        activation entering ``start``. When ``boundaries`` is a list, the
        state entering each subsequent step (ending with the logits state)
        is appended in step order. Returns the final state; its ``data``
        holds the logits, still shared when no faulted layer was crossed.
        """
        if not configurations:
            raise ValueError("need at least one configuration")
        errstate = guard.capture() if guard is not None else np.errstate(all="ignore")
        with no_grad(), errstate:
            state = _State(activation, diverged)
            for step in self._steps[start:]:
                state = self._run_module(step.module, step.name, state, configurations)
                if boundaries is not None:
                    boundaries.append(state)
        return state

    def evaluate(self, configurations: list[FaultConfiguration]) -> np.ndarray:
        """Classification error per configuration, shape ``(k,)``.

        Same hazard taxonomy as ``NumericalHazardGuard.score``: any row with
        a non-finite logit counts as an error deterministically.
        """
        logits = self.evaluate_logits(configurations)
        labels = self.injector.labels
        finite = np.isfinite(logits).all(axis=2)
        predictions = logits.argmax(axis=2)
        hazard_rows = (~finite).sum(axis=1)
        wrong = ((predictions != labels[None, :]) & finite).sum(axis=1)
        return (wrong + hazard_rows) / logits.shape[1]

    def _prefix_activation(self) -> np.ndarray:
        """Shared golden activation entering the first faulted step."""
        if self._cut == 0:
            return self._x.data
        if self._prefix is None:
            with no_grad():
                self._prefix = run_chain(self._steps[: self._cut], self._x).data
            return self._prefix
        with obs.phase("prefix.reuse"):
            return self._prefix

    # ------------------------------------------------------------------ #
    # module dispatch
    # ------------------------------------------------------------------ #

    def _touched(self, name: str) -> bool:
        return any(target.startswith(name + ".") for target in self._targets)

    def _run_module(
        self,
        module: Module | None,
        name: str,
        state: _State,
        configurations: list[FaultConfiguration],
    ) -> _State:
        if module is None:  # MLP's synthetic input flatten
            data = state.data
            keep = 2 + (1 if state.diverged else 0)
            if data.ndim > keep:
                data = data.reshape(data.shape[: keep - 1] + (-1,))
            return _State(data, state.diverged)
        if not self._touched(name):
            if not state.diverged:
                return _State(module(Tensor(state.data)).data, False)
            if isinstance(module, Dense):
                # Folding k into the batch axis would change the GEMM's row
                # count, and BLAS kernel selection by M is not bit-stable.
                # Broadcasting over the leading k axis keeps each slice the
                # exact (B, in) @ (in, out) call the sequential path makes.
                out = np.matmul(state.data, module.weight.data)
                if module.bias is not None:
                    out = out + module.bias.data
                return _State(out, True)
            return _State(self._fold(module, state.data), True)
        if isinstance(module, Dense):
            return self._run_dense(module, name, state, configurations)
        if isinstance(module, Conv2d):
            return self._run_conv(module, name, state, configurations)
        if isinstance(module, _BatchNorm):
            return self._run_norm(module, name, state, configurations)
        if isinstance(module, BasicBlock):
            return self._run_block(module, name, state, configurations)
        if isinstance(module, Sequential):
            for child_name, child in module._modules.items():
                state = self._run_module(child, f"{name}.{child_name}", state, configurations)
            return state
        raise TypeError(  # pragma: no cover — construction validates this
            f"no batched handler for faulted module {type(module).__name__}"
        )

    @staticmethod
    def _fold(module: Module, data: np.ndarray, /) -> np.ndarray:
        """Run an untouched module once over the folded ``(k*B, ...)`` batch.

        Bit-identical to ``k`` separate calls because every eval-mode module
        here is batch-independent (elementwise, per-sample pooling, or
        frozen-statistics normalisation).
        """
        k, batch = data.shape[0], data.shape[1]
        folded = data.reshape((k * batch,) + data.shape[2:])
        out = module(Tensor(folded)).data
        return out.reshape((k, batch) + out.shape[1:])

    def _stacked_parameter(
        self, configurations: list[FaultConfiguration], name: str, golden: np.ndarray
    ) -> np.ndarray:
        """(k, *shape) faulted copies of one parameter (sparse XOR per row)."""
        k = len(configurations)
        stack = np.empty((k,) + golden.shape, dtype=golden.dtype)
        stack[...] = golden
        bits = stack.reshape(k, -1).view(np.uint32)
        with obs.phase("flip.sparse"):
            for i, configuration in enumerate(configurations):
                if name in configuration and configuration.touches(name):
                    sparse = configuration.sparse(name)
                    bits[i, sparse.elements] ^= sparse.lane_masks
        return stack

    def _run_dense(
        self, module: Dense, name: str, state: _State, configurations: list[FaultConfiguration]
    ) -> _State:
        weights = self._stacked_parameter(configurations, f"{name}.weight", module.weight.data)
        # (B, in) @ (k, in, out) and (k, B, in) @ (k, in, out) both broadcast
        # to (k, B, out), each k-slice an independent GEMM — bit-identical to
        # the sequential x @ W.
        out = np.matmul(state.data, weights)
        if module.bias is not None:
            biases = self._stacked_parameter(configurations, f"{name}.bias", module.bias.data)
            out = out + biases[:, None, :]
        return _State(out, True)

    def _run_conv(
        self, module: Conv2d, name: str, state: _State, configurations: list[FaultConfiguration]
    ) -> _State:
        weights = self._stacked_parameter(configurations, f"{name}.weight", module.weight.data)
        k = len(configurations)
        size, stride, padding = module.kernel_size, module.stride, module.padding
        data = state.data
        image_shape = data.shape[1:] if state.diverged else data.shape
        kk, ii, jj, out_h, out_w = im2col_indices(image_shape, size, size, stride, padding)
        pad_spatial = ((padding, padding), (padding, padding))
        w_mat = weights.reshape(k, module.out_channels, -1)
        if state.diverged:
            padded = (
                np.pad(data, ((0, 0), (0, 0), (0, 0)) + pad_spatial) if padding else data
            )
            cols = padded[:, :, kk, ii, jj]  # (k, B, C*kh*kw, P)
            out = np.einsum("kof,kbfp->kbop", w_mat, cols, optimize=True)
        else:
            padded = np.pad(data, ((0, 0), (0, 0)) + pad_spatial) if padding else data
            cols = padded[:, kk, ii, jj]  # (B, C*kh*kw, P) — one gather for all k
            out = np.einsum("kof,bfp->kbop", w_mat, cols, optimize=True)
        if module.bias is not None:
            biases = self._stacked_parameter(configurations, f"{name}.bias", module.bias.data)
            out = out + biases[:, None, :, None]
        batch = data.shape[1] if state.diverged else data.shape[0]
        return _State(out.reshape(k, batch, module.out_channels, out_h, out_w), True)

    def _run_norm(
        self, module: _BatchNorm, name: str, state: _State, configurations: list[FaultConfiguration]
    ) -> _State:
        shape = (1, module.num_features) + (1,) * (len(module._param_shape) - 1)
        mean = module.running_mean.reshape(shape)
        var = module.running_var.reshape(shape)
        # Mirror _BatchNorm.forward exactly, including the float64 promotion
        # from the coerced eps scalar (0-d float64 under Tensor arithmetic).
        normalised = (state.data - mean) / np.sqrt(var + np.asarray(module.eps))
        gammas = self._stacked_parameter(configurations, f"{name}.weight", module.weight.data)
        betas = self._stacked_parameter(configurations, f"{name}.bias", module.bias.data)
        k = len(configurations)
        stacked_shape = (k, 1) + shape[1:]
        out = normalised * gammas.reshape(stacked_shape) + betas.reshape(stacked_shape)
        return _State(out, True)

    def _run_block(
        self, module: BasicBlock, name: str, state: _State, configurations: list[FaultConfiguration]
    ) -> _State:
        out = self._run_module(module.conv1, f"{name}.conv1", state, configurations)
        out = self._run_module(module.bn1, f"{name}.bn1", out, configurations)
        out = self._run_module(module.relu1, f"{name}.relu1", out, configurations)
        out = self._run_module(module.conv2, f"{name}.conv2", out, configurations)
        out = self._run_module(module.bn2, f"{name}.bn2", out, configurations)
        shortcut = self._run_module(module.shortcut, f"{name}.shortcut", state, configurations)
        # Residual add mirrors `out + self.shortcut(x)`; a shared operand
        # broadcasts over the configurations axis bit-identically.
        merged = _State(out.data + shortcut.data, out.diverged or shortcut.diverged)
        return self._run_module(module.relu2, f"{name}.relu2", merged, configurations)
