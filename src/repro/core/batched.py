"""Vectorised multi-configuration campaign evaluation for MLPs.

A campaign's cost is #configurations × one forward pass. For dense
networks the per-configuration work is small matrix algebra, so evaluating
``k`` fault configurations *simultaneously* — stacking the faulted weight
tensors into ``(k, in, out)`` arrays and contracting with einsum — turns
``k`` interpreter round-trips into one BLAS call per layer. On the paper's
MLP this is an order-of-magnitude campaign speed-up (measured in
``benchmarks/bench_micro.py``), with bit-identical semantics verified
against the sequential path.

Scope: :class:`~repro.nn.models.MLP`-shaped models (Dense/ReLU/Flatten
sequences, the Fig. 1/Fig. 2 subjects). Conv nets go through the standard
path.
"""

from __future__ import annotations

import numpy as np

from repro.bits.float32 import apply_bit_mask
from repro.core.campaign import CampaignResult
from repro.core.hazard import HazardReport
from repro.core.posterior import ErrorPosterior
from repro.faults.configuration import FaultConfiguration
from repro.faults.model import FaultModel
from repro.mcmc.chain import Chain, ChainSet
from repro.nn.activations import ReLU
from repro.nn.containers import Sequential
from repro.nn.layers import Dense, Flatten, Identity
from repro.nn.models.mlp import MLP
from repro.nn.module import Module

__all__ = ["BatchedMLPEvaluator"]


class BatchedMLPEvaluator:
    """Evaluate many fault configurations of a dense network in one sweep.

    Parameters
    ----------
    injector:
        A configured :class:`~repro.core.injector.BayesianFaultInjector`
        over an MLP-shaped model with parameter surfaces only.
    """

    def __init__(self, injector) -> None:
        if injector.activation_modules or injector._wants_inputs:
            raise ValueError("batched evaluation supports parameter surfaces only")
        self.injector = injector
        self._plan = self._build_plan(injector.model)
        planned_params = {
            f"{prefix}.{leaf}"
            for prefix, layer in self._plan
            for leaf in ("weight", "bias")
            if getattr(layer, leaf, None) is not None
        }
        target_names = {name for name, _ in injector.parameter_targets}
        if not target_names <= planned_params:
            unplanned = sorted(target_names - planned_params)
            raise ValueError(f"targets outside the dense plan: {unplanned}")
        self._inputs = np.asarray(injector.inputs, dtype=np.float32).reshape(
            len(injector.labels), -1
        )
        #: hazard accounting of the most recent :meth:`evaluate` call
        self.last_hazard: HazardReport = HazardReport()

    # ------------------------------------------------------------------ #
    # model planning
    # ------------------------------------------------------------------ #

    @staticmethod
    def _build_plan(model: Module) -> list[tuple[str, Module]]:
        """(dotted-name, layer) pairs for the dense execution sequence."""
        if isinstance(model, MLP):
            sequence = model.layers
            prefix = "layers"
        elif isinstance(model, Sequential):
            sequence = model
            prefix = ""
        else:
            raise TypeError(
                f"BatchedMLPEvaluator supports MLP/Sequential models, got {type(model).__name__}"
            )
        plan: list[tuple[str, Module]] = []
        for index, layer in enumerate(sequence):
            if not isinstance(layer, (Dense, ReLU, Flatten, Identity)):
                raise TypeError(
                    f"unsupported layer {type(layer).__name__} for batched evaluation"
                )
            name = f"{prefix}.{index}" if prefix else str(index)
            plan.append((name, layer))
        return plan

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, configurations: list[FaultConfiguration]) -> np.ndarray:
        """Classification error per configuration, shape ``(k,)``.

        Semantics identical to scoring each configuration through
        ``injector.make_statistic`` — verified bit-level by the tests.
        """
        if not configurations:
            raise ValueError("need at least one configuration")
        k = len(configurations)
        labels = self.injector.labels
        # All math in float32 to match the sequential (deployment) path:
        # severe faulted weights overflow float32 at intermediates, and the
        # resulting inf/nan logits must be reproduced, not avoided.
        current = np.broadcast_to(self._inputs, (k,) + self._inputs.shape)  # (k, B, d)
        with np.errstate(all="ignore"):
            for name, layer in self._plan:
                if isinstance(layer, Dense):
                    weights = self._stacked_parameter(configurations, f"{name}.weight", layer.weight.data)
                    current = np.matmul(current, weights)  # float32 batched GEMM
                    if layer.bias is not None:
                        biases = self._stacked_parameter(configurations, f"{name}.bias", layer.bias.data)
                        current = current + biases[:, None, :]
                elif isinstance(layer, ReLU):
                    # Match Tensor.relu's NaN semantics (where(x>0, x, 0)):
                    # NaN compares false, so NaN activations become 0, as in
                    # the sequential path.
                    current = np.where(current > 0, current, np.float32(0.0))
                elif isinstance(layer, Flatten):
                    current = current.reshape(k, current.shape[1], -1)
        # Same hazard taxonomy as NumericalHazardGuard.score: a row with any
        # non-finite logit always counts as an error (deterministically, not
        # via NaN argmax) and is tracked separately as a hazard.
        finite = np.isfinite(current).all(axis=2)  # (k, B)
        predictions = current.argmax(axis=2)  # (k, B)
        hazard_per_configuration = (~finite).sum(axis=1)
        self.last_hazard = HazardReport(
            evaluations=k,
            hazard_evaluations=int((hazard_per_configuration > 0).sum()),
            rows=int(finite.size),
            hazard_rows=int(hazard_per_configuration.sum()),
        )
        if finite.all():
            return (predictions != labels[None, :]).mean(axis=1)
        wrong = ((predictions != labels[None, :]) & finite).sum(axis=1)
        return (wrong + hazard_per_configuration) / current.shape[1]

    def _stacked_parameter(
        self, configurations: list[FaultConfiguration], name: str, golden: np.ndarray
    ) -> np.ndarray:
        """(k, *shape) faulted copies of one parameter."""
        k = len(configurations)
        stack = np.empty((k,) + golden.shape, dtype=np.float32)
        for i, configuration in enumerate(configurations):
            if name in configuration:
                stack[i] = apply_bit_mask(golden, configuration.mask(name))
            else:
                stack[i] = golden
        return stack

    # ------------------------------------------------------------------ #
    # campaign front-end
    # ------------------------------------------------------------------ #

    def forward_campaign(
        self,
        p: float,
        samples: int = 200,
        chains: int = 2,
        fault_model: FaultModel | None = None,
        stream: str = "batched",
    ) -> CampaignResult:
        """Drop-in faster equivalent of ``injector.forward_campaign``.

        Draws the same kind of i.i.d. configurations, evaluates them in one
        vectorised sweep, and packages the standard result object. (Not
        RNG-identical to the sequential path — it uses its own stream —
        but statistically the same estimator.)
        """
        from repro.faults.bernoulli import BernoulliBitFlipModel

        if samples <= 0 or chains <= 0:
            raise ValueError("samples and chains must be positive")
        model = fault_model if fault_model is not None else BernoulliBitFlipModel(p)
        rng = self.injector._rng_factory.stream(f"{stream}:p={p!r}")
        per_chain = max(1, samples // chains)
        configurations = [
            FaultConfiguration.sample(self.injector.parameter_targets, model, rng)
            for _ in range(per_chain * chains)
        ]
        errors = self.evaluate(configurations)
        flips = [configuration.total_flips() for configuration in configurations]

        chain_objs = []
        for chain_id in range(chains):
            chain = Chain(chain_id)
            for i in range(chain_id * per_chain, (chain_id + 1) * per_chain):
                chain.record(float(errors[i]), flips[i])
            chain_objs.append(chain)
        chain_set = ChainSet(chain_objs)
        posterior = ErrorPosterior(errors, self.injector.golden_error)
        return CampaignResult(
            flip_probability=p,
            golden_error=self.injector.golden_error,
            chains=chain_set,
            posterior=posterior,
            method="forward-batched",
            seed=self.injector.seed,
            hazard=self.last_hazard,
        )
