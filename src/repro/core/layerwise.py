"""Layer-by-layer injection — the harness behind Fig. 3.

The paper injects faults into one ResNet-18 layer at a time and finds
(finding F3) that "there is no direct relationship between the layer in
which the fault manifests and the network classification error", contrary
to Li et al. (SC'17).

:class:`LayerwiseCampaign` runs an independent campaign per parameterised
layer (same flip probability, same budget) and reports the per-layer error
series plus the Spearman/Kendall rank correlations between layer depth and
induced error — the quantitative version of F3 (|ρ| near 0, p-value large).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy import stats as sps

import repro.obs as obs
from repro.core.campaign import CampaignResult
from repro.core.injector import BayesianFaultInjector
from repro.exec.executor import CampaignTask, InjectorRecipe, ParallelCampaignExecutor
from repro.exec.specs import ForwardSpec
from repro.faults.targets import TargetSpec, resolve_parameter_targets
from repro.nn.module import Module
from repro.obs.estimator import publish_outcome
from repro.utils.logging import get_logger

__all__ = ["LayerResult", "LayerwiseCampaign", "parameterised_layers"]

_LOGGER = get_logger("core.layerwise")


def parameterised_layers(model: Module) -> list[str]:
    """Dotted names of leaf modules owning parameters, in forward order."""
    return [name for name, module in model.named_modules() if name and module._parameters]


@dataclass(frozen=True)
class LayerResult:
    """Per-layer campaign outcome."""

    layer: str
    depth_index: int
    mean_error: float
    ci_lo: float
    ci_hi: float
    parameter_count: int
    campaign: CampaignResult


@dataclass
class LayerwiseCampaign:
    """One campaign per layer at a fixed flip probability.

    Parameters
    ----------
    model / inputs / labels:
        Golden network and evaluation batch.
    p:
        Flip probability used for every layer.
    samples / chains:
        Budget per layer.
    layers:
        Layer names to test; defaults to every parameterised layer.
    seed:
        Root seed; layer campaigns get independent derived streams.
    executor:
        Optional :class:`~repro.exec.executor.ParallelCampaignExecutor`;
        layers fan out over its worker pool (one recipe per layer, each
        with the layer's target spec and derived seed). Per-layer seeds
        make parallel results bit-identical to sequential ones.
    model_builder:
        Picklable zero-argument architecture builder used to ship the
        golden model to workers as builder + checkpoint; without it the
        model object is embedded in each recipe (fork-friendly).
    journal:
        Optional :class:`~repro.exec.journal.CampaignJournal`. Completed
        layer campaigns are durably recorded; re-running skips journaled
        layers bit-identically (per-layer keys include the layer's target
        spec and derived seed).
    fast:
        Fast-path selection forwarded to every per-layer injector (``None``
        auto-enables the bit-identical prefix-cached/batched forward path —
        layerwise campaigns are its best case, since deep layers reuse long
        clean prefixes; ``False`` forces the standard path).
    """

    model: Module
    inputs: np.ndarray
    labels: np.ndarray
    p: float = 1e-3
    samples: int = 100
    chains: int = 2
    layers: tuple[str, ...] = ()
    seed: int = 0
    executor: ParallelCampaignExecutor | None = None
    model_builder: Callable[[], Module] | None = None
    journal: object | None = None
    fast: bool | None = None
    results: list[LayerResult] = field(default_factory=list)
    #: layers whose campaign failed under ``on_failure="degrade"``
    #: (each ``{"layer", "depth", "reason", "cause", "attempts"}``)
    failed_layers: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 < self.p <= 1:
            raise ValueError(f"flip probability must be in (0, 1], got {self.p}")
        if not self.layers:
            self.layers = tuple(parameterised_layers(self.model))
        if not self.layers:
            raise ValueError("model has no parameterised layers")

    def _layer_spec(self, layer: str) -> TargetSpec:
        return TargetSpec.single_layer(layer)

    def _campaigns(self) -> list[CampaignResult]:
        spec = ForwardSpec(p=self.p, samples=self.samples, chains=self.chains)
        if self.executor is not None:
            if self.journal is not None:
                self.executor.journal = self.journal
            tasks = [
                CampaignTask(
                    spec,
                    InjectorRecipe.from_model(
                        self.model,
                        self.inputs,
                        self.labels,
                        spec=self._layer_spec(layer),
                        seed=self.seed + depth,
                        model_builder=self.model_builder,
                        fast=self.fast,
                    ),
                )
                for depth, layer in enumerate(self.layers)
            ]
            return self.executor.execute(tasks)
        campaigns = []
        for depth, layer in enumerate(self.layers):
            key = None
            if self.journal is not None:
                # Same key shape as the executor path: per-layer derived
                # seed plus the layer's target-spec scope.
                from repro.exec.journal import target_fingerprint, task_key

                key = task_key(
                    spec, seed=self.seed + depth, scope=target_fingerprint(self._layer_spec(layer))
                )
                cached = self.journal.get(key)
                if cached is not None:
                    _LOGGER.info("journal hit for layer %s; skipping re-run", layer)
                    obs.merge_campaign_metrics(cached)
                    publish_outcome(depth, cached, spec=spec, target=self._layer_spec(layer))
                    campaigns.append(cached)
                    continue
            injector = BayesianFaultInjector(
                self.model, self.inputs, self.labels,
                spec=self._layer_spec(layer), seed=self.seed + depth, fast=self.fast,
            )
            outcome = injector.run(spec)
            if self.journal is not None:
                self.journal.record(key, outcome)
            publish_outcome(depth, outcome, spec=spec, target=self._layer_spec(layer))
            campaigns.append(outcome)
        return campaigns

    def run(self) -> "LayerwiseCampaign":
        self.results = []
        self.failed_layers = []
        obs.publish("layerwise.start", layers=len(self.layers), p=self.p)
        with obs.span("layerwise", layers=len(self.layers), p=self.p):
            campaigns = self._campaigns()
        failures = {} if self.executor is None else {
            failure.index: failure for failure in self.executor.stats.failed_tasks
        }
        for depth, (layer, campaign) in enumerate(zip(self.layers, campaigns)):
            if campaign is None:  # quarantined under on_failure="degrade"
                failure = failures.get(depth)
                entry = {
                    "layer": layer,
                    "depth": depth,
                    "reason": failure.reason if failure else "task failed",
                    "cause": failure.cause if failure else "unknown",
                    "attempts": failure.attempts if failure else 0,
                }
                self.failed_layers.append(entry)
                obs.publish("layerwise.layer_failed", **entry)
                _LOGGER.warning("layer %s campaign failed (%s); continuing degraded",
                                layer, entry["reason"])
                continue
            lo, hi = campaign.posterior.credible_interval()
            params = sum(
                param.size
                for _, param in resolve_parameter_targets(self.model, self._layer_spec(layer))
            )
            self.results.append(
                LayerResult(
                    layer=layer,
                    depth_index=depth,
                    mean_error=campaign.mean_error,
                    ci_lo=lo,
                    ci_hi=hi,
                    parameter_count=params,
                    campaign=campaign,
                )
            )
            _LOGGER.info("layer %s (depth %d): %s", layer, depth, campaign)
            obs.publish(
                "layerwise.layer",
                layer=layer,
                depth=depth,
                mean_error=campaign.mean_error,
                parameters=params,
            )
        return self

    @property
    def degraded(self) -> bool:
        """Whether any layer campaign failed (results cover a layer subset)."""
        return bool(self.failed_layers)

    def accounting(self) -> dict:
        """Explicit completed/failed breakdown over the layer set."""
        return {
            "layers": len(self.layers),
            "completed": len(self.results),
            "failed": len(self.failed_layers),
            "failed_layers": [dict(entry) for entry in self.failed_layers],
        }

    # ------------------------------------------------------------------ #
    # finding F3: depth ↔ error relationship
    # ------------------------------------------------------------------ #

    def _require_results(self) -> None:
        if not self.results:
            raise RuntimeError("campaign has not been run; call .run() first")

    def errors(self) -> np.ndarray:
        self._require_results()
        return np.asarray([r.mean_error for r in self.results])

    def depth_correlation(self) -> dict[str, float]:
        """Spearman and Kendall correlations between depth index and error.

        F3 predicts both correlations are weak (paper: "no direct
        relationship"); the returned p-values quantify that.
        """
        self._require_results()
        depths = np.asarray([r.depth_index for r in self.results], dtype=np.float64)
        errors = self.errors()
        if np.ptp(errors) == 0.0:
            # Constant errors: no relationship by definition (and scipy's
            # correlation is undefined on constant input).
            return {"spearman_rho": 0.0, "spearman_p": 1.0, "kendall_tau": 0.0, "kendall_p": 1.0}
        spearman = sps.spearmanr(depths, errors)
        kendall = sps.kendalltau(depths, errors)
        return {
            "spearman_rho": float(spearman.statistic),
            "spearman_p": float(spearman.pvalue),
            "kendall_tau": float(kendall.statistic),
            "kendall_p": float(kendall.pvalue),
        }

    def table(self) -> list[dict[str, float | str]]:
        """Rows of the Fig. 3 series: layer, depth, error %, CI, #params."""
        self._require_results()
        return [
            {
                "layer": r.layer,
                "depth": r.depth_index,
                "error_pct": 100 * r.mean_error,
                "ci_lo_pct": 100 * r.ci_lo,
                "ci_hi_pct": 100 * r.ci_hi,
                "parameters": r.parameter_count,
            }
            for r in self.results
        ]
