"""Critical-bit search: find small fault sets that break the network.

A safety assessor often wants the *worst case*, not the average: the
smallest set of bit flips that flips a prediction. Random fault injection
finds such sets slowly (most flips are benign — see ablation A1); the
gradient-guided search walks the Taylor ranking instead, typically finding
a critical single bit within a handful of forward passes.

Both searches report the forward-pass budget they spent, making the
comparison in ``benchmarks/bench_sensitivity.py`` direct.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits.float32 import BITS_PER_FLOAT
from repro.faults.configuration import FaultConfiguration
from repro.sensitivity.taylor import TaylorSensitivity

__all__ = ["SearchResult", "critical_bit_search", "random_bit_search"]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a critical-bit search."""

    found: bool
    #: (target, element, bit) triples of the critical set (empty if not found)
    sites: tuple[tuple[str, int, int], ...]
    forward_passes: int

    @property
    def set_size(self) -> int:
        return len(self.sites)


def _configuration_for(sites, targets) -> FaultConfiguration:
    shapes = {name: param.shape for name, param in targets}
    sizes = {name: param.size for name, param in targets}
    masks = {name: np.zeros(sizes[name], dtype=np.uint32) for name, _ in targets}
    for target, element, bit in sites:
        masks[target][element] ^= np.uint32(1) << np.uint32(bit)
    return FaultConfiguration({name: mask.reshape(shapes[name]) for name, mask in masks.items()})


def critical_bit_search(
    injector,
    sensitivity: TaylorSensitivity,
    candidates: int = 64,
    max_set_size: int = 3,
) -> SearchResult:
    """Greedy gradient-guided search for a minimal error-causing bit set.

    Tries the top-ranked single sites first; if none alone degrades the
    evaluation error, greedily accumulates the best-so-far sites up to
    ``max_set_size``. "Degrades" means the campaign statistic (batch
    classification error) strictly exceeds the golden error.
    """
    if candidates <= 0:
        raise ValueError(f"candidates must be positive, got {candidates}")
    if max_set_size <= 0:
        raise ValueError(f"max_set_size must be positive, got {max_set_size}")
    statistic = injector.make_statistic(fault_model=None, rng=np.random.default_rng(0))
    golden = injector.golden_error
    ranked = sensitivity.top_sites(candidates)
    passes = 0

    # Phase 1: single-site candidates in ranked order.
    scored: list[tuple[float, tuple[str, int, int]]] = []
    for entry in ranked:
        site = (entry.target, entry.element_index, entry.bit)
        error = statistic(_configuration_for([site], injector.parameter_targets))
        passes += 1
        if error > golden:
            return SearchResult(found=True, sites=(site,), forward_passes=passes)
        scored.append((error, site))

    # Phase 2: greedy accumulation of the highest-error singles.
    scored.sort(key=lambda pair: -pair[0])
    accumulated: list[tuple[str, int, int]] = []
    for _, site in scored[:max_set_size]:
        accumulated.append(site)
        error = statistic(_configuration_for(accumulated, injector.parameter_targets))
        passes += 1
        if error > golden:
            return SearchResult(found=True, sites=tuple(accumulated), forward_passes=passes)
    return SearchResult(found=False, sites=(), forward_passes=passes)


def random_bit_search(
    injector,
    rng: np.random.Generator,
    max_trials: int = 1000,
) -> SearchResult:
    """Baseline: uniformly random single-bit flips until one degrades error.

    The expected number of trials is 1/P(random flip is damaging) — the
    quantity ablation A1 shows is small because most lanes are mantissa
    bits.
    """
    if max_trials <= 0:
        raise ValueError(f"max_trials must be positive, got {max_trials}")
    statistic = injector.make_statistic(fault_model=None, rng=np.random.default_rng(0))
    golden = injector.golden_error
    targets = injector.parameter_targets
    sizes = np.asarray([param.size for _, param in targets], dtype=np.float64)
    weights = sizes / sizes.sum()

    for trial in range(1, max_trials + 1):
        index = int(rng.choice(len(targets), p=weights))
        name, param = targets[index]
        element = int(rng.integers(0, param.size))
        bit = int(rng.integers(0, BITS_PER_FLOAT))
        site = (name, element, bit)
        error = statistic(_configuration_for([site], targets))
        if error > golden:
            return SearchResult(found=True, sites=(site,), forward_passes=trial)
    return SearchResult(found=False, sites=(), forward_passes=max_trials)
