"""Per-parameter loss gradients over an evaluation batch."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.module import Module
from repro.tensor.tensor import Tensor
from repro.train.losses import CrossEntropyLoss

__all__ = ["parameter_gradients"]


def parameter_gradients(
    model: Module,
    inputs: np.ndarray,
    labels: np.ndarray,
    loss_fn: Callable | None = None,
) -> dict[str, np.ndarray]:
    """Gradients of the batch loss w.r.t. every parameter, by dotted name.

    Runs one forward/backward in eval mode (batch-norm uses running stats,
    so the gradients describe the *deployed* network, not a training-mode
    variant). The model's parameter values and accumulated gradients are
    left untouched.
    """
    inputs = np.asarray(inputs, dtype=np.float32)
    labels = np.asarray(labels, dtype=np.int64)
    if len(inputs) != len(labels):
        raise ValueError(f"inputs ({len(inputs)}) and labels ({len(labels)}) misaligned")
    if len(labels) == 0:
        raise ValueError("evaluation batch is empty")
    loss_fn = loss_fn or CrossEntropyLoss()

    was_training = model.training
    saved_grads = {name: param.grad for name, param in model.named_parameters()}
    model.eval()
    try:
        model.zero_grad()
        logits = model(Tensor(inputs))
        loss = loss_fn(logits, labels)
        loss.backward()
        gradients = {
            name: (param.grad.copy() if param.grad is not None else np.zeros_like(param.data))
            for name, param in model.named_parameters()
        }
    finally:
        for name, param in model.named_parameters():
            param.grad = saved_grads[name]
        model.train(was_training)
    return gradients
