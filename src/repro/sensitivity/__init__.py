"""Gradient-based vulnerability analysis.

The paper's generality argument rests on differentiability: "one can
calculate the gradient of the output of a program over its input". This
package exploits the same property *analytically*: a first-order Taylor
expansion of the loss predicts the impact of flipping bit ``b`` of
parameter ``w`` as ``|∂L/∂w · (flip(w, b) − w)|`` — for free, from one
backward pass, for every one of the millions of fault sites a campaign
would otherwise have to sample.

Components:

* :func:`~repro.sensitivity.gradients.parameter_gradients` — one backward
  pass over the evaluation batch, gradients per named parameter;
* :class:`~repro.sensitivity.taylor.TaylorSensitivity` — predicted impact
  per (parameter, element, bit lane); rankings, per-layer and per-lane
  aggregation, and validation against measured injection outcomes;
* :func:`~repro.sensitivity.search.critical_bit_search` — gradient-guided
  search for minimal bit sets that flip predictions, versus random search.

Experiment A4 (``benchmarks/bench_sensitivity.py``) validates that the
Taylor ranking agrees with exhaustive ground truth.
"""

from repro.sensitivity.gradients import parameter_gradients
from repro.sensitivity.taylor import TaylorSensitivity, BitImpact
from repro.sensitivity.search import critical_bit_search, random_bit_search, SearchResult

__all__ = [
    "parameter_gradients",
    "TaylorSensitivity",
    "BitImpact",
    "critical_bit_search",
    "random_bit_search",
    "SearchResult",
]
