"""First-order Taylor prediction of bit-flip impact.

For parameter value ``w`` with loss gradient ``g``, flipping bit ``b``
changes the value by ``Δ(w, b) = flip(w, b) − w`` and, to first order, the
loss by ``g · Δ``. The *predicted impact* ``|g · Δ|`` ranks every
(parameter, element, bit) fault site without a single injection run.

Sites whose flip produces a non-finite value (high-exponent flips of
typical weights) get infinite predicted impact — the Taylor expansion does
not apply, but such flips are catastrophic a fortiori, so they rank first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits.fields import bit_field
from repro.bits.float32 import BITS_PER_FLOAT, bits_to_float, float_to_bits
from repro.nn.module import Module
from repro.sensitivity.gradients import parameter_gradients

__all__ = ["BitImpact", "TaylorSensitivity"]


@dataclass(frozen=True)
class BitImpact:
    """Predicted impact of one fault site."""

    target: str
    element_index: int
    bit: int
    predicted_impact: float

    @property
    def field(self) -> str:
        return bit_field(self.bit)


def _flip_deltas(values: np.ndarray) -> np.ndarray:
    """Δ(w, b) for every element and bit lane: shape (n, 32).

    Non-finite flips produce ±inf deltas (handled downstream as
    rank-first catastrophic sites).
    """
    flat = np.asarray(values, dtype=np.float32).reshape(-1)
    bits = float_to_bits(flat)
    lanes = np.uint32(1) << np.arange(BITS_PER_FLOAT, dtype=np.uint32)
    flipped_bits = bits[:, None] ^ lanes[None, :]
    flipped = bits_to_float(flipped_bits.reshape(-1)).reshape(flat.size, BITS_PER_FLOAT)
    with np.errstate(invalid="ignore"):
        return flipped.astype(np.float64) - flat.astype(np.float64)[:, None]


class TaylorSensitivity:
    """Gradient-based sensitivity map over a model's fault space.

    Parameters
    ----------
    model / inputs / labels:
        The deployed network and the evaluation batch the campaign would
        score; one backward pass is run at construction.
    targets:
        ``(name, parameter)`` pairs to analyse, e.g. from
        :func:`repro.faults.resolve_parameter_targets`.
    """

    def __init__(
        self,
        model: Module,
        inputs: np.ndarray,
        labels: np.ndarray,
        targets: list,
    ) -> None:
        if not targets:
            raise ValueError("TaylorSensitivity requires at least one target")
        self.targets = list(targets)
        gradients = parameter_gradients(model, inputs, labels)
        #: per target: (n_elements, 32) matrix of |g·Δ| predicted impacts
        self.impacts: dict[str, np.ndarray] = {}
        for name, param in self.targets:
            grad = gradients[name].reshape(-1).astype(np.float64)
            deltas = _flip_deltas(param.data)
            with np.errstate(invalid="ignore"):
                impact = np.abs(grad[:, None] * deltas)
            # g == 0 at a non-finite delta gives nan; such sites are still
            # catastrophic (the value itself explodes) — rank them first.
            impact[~np.isfinite(deltas)] = np.inf
            self.impacts[name] = impact

    # ------------------------------------------------------------------ #
    # rankings and aggregations
    # ------------------------------------------------------------------ #

    def top_sites(self, k: int) -> list[BitImpact]:
        """The ``k`` fault sites with the largest predicted impact.

        Infinite (non-finite-flip) sites come first, tie-broken by the
        magnitude of ``|g·w|`` (gradient times the exploding value's seed).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        entries: list[BitImpact] = []
        for name, impact in self.impacts.items():
            flat = impact.reshape(-1)
            count = min(k, flat.size)
            idx = np.argpartition(-np.nan_to_num(flat, posinf=np.finfo(np.float64).max), count - 1)[:count]
            for flat_index in idx:
                entries.append(
                    BitImpact(
                        target=name,
                        element_index=int(flat_index // BITS_PER_FLOAT),
                        bit=int(flat_index % BITS_PER_FLOAT),
                        predicted_impact=float(flat[flat_index]),
                    )
                )
        entries.sort(key=lambda e: -e.predicted_impact)
        return entries[:k]

    def site_impact(self, target: str, element_index: int, bit: int) -> float:
        """Predicted impact of one specific site."""
        return float(self.impacts[target][element_index, bit])

    def lane_profile(self) -> dict[int, float]:
        """Mean *finite* predicted impact per bit lane, across all targets.

        The analytic counterpart of the A1 exhaustive sweep: impact grows
        with bit significance inside each IEEE-754 field.
        """
        totals = np.zeros(BITS_PER_FLOAT)
        counts = np.zeros(BITS_PER_FLOAT)
        for impact in self.impacts.values():
            finite = np.isfinite(impact)
            totals += np.where(finite, impact, 0.0).sum(axis=0)
            counts += finite.sum(axis=0)
        return {b: float(totals[b] / counts[b]) if counts[b] else float("inf") for b in range(BITS_PER_FLOAT)}

    def layer_profile(self) -> dict[str, float]:
        """Total predicted impact per target (finite part), plus the count
        of catastrophic (non-finite) sites folded in as a separate scale.

        Used by :mod:`repro.protect` to allocate protection across layers.
        """
        profile = {}
        for name, impact in self.impacts.items():
            finite = impact[np.isfinite(impact)]
            catastrophic = int((~np.isfinite(impact)).sum())
            profile[name] = float(finite.sum()) + catastrophic  # inf sites ≈ unit mass each
        return profile

    def catastrophic_site_counts(self) -> dict[str, int]:
        """Number of non-finite-flip sites per target."""
        return {name: int((~np.isfinite(impact)).sum()) for name, impact in self.impacts.items()}
