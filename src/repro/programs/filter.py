"""A differentiable FIR filter + energy detector.

The program: an FIR filter with stored taps smooths a noisy input signal;
a detector then declares "event" when the filtered signal's mean energy
exceeds a stored threshold. Taps and threshold are the fault surface —
bit flips in filter coefficients are a classic embedded-DSP failure mode.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor

__all__ = ["FIRDetector", "make_filter_dataset"]


def _default_taps(n_taps: int) -> np.ndarray:
    """A Hamming-windowed moving-average lowpass."""
    window = 0.54 - 0.46 * np.cos(2 * np.pi * np.arange(n_taps) / max(n_taps - 1, 1))
    taps = window / window.sum()
    return taps.astype(np.float32)


class FIRDetector(Module):
    """FIR smoothing followed by a mean-energy threshold test.

    ``forward`` takes signals of shape ``(batch, length)`` and emits
    ``[margin, −margin]`` logits with
    ``margin = mean(filtered²) − threshold``; class 0 = "event present".
    """

    def __init__(self, n_taps: int = 9, threshold: float = 0.25) -> None:
        super().__init__()
        if n_taps < 2:
            raise ValueError(f"need at least 2 taps, got {n_taps}")
        self.n_taps = n_taps
        self.taps = Parameter(_default_taps(n_taps))
        self.threshold = Parameter(np.asarray([threshold], dtype=np.float32))

    def filtered(self, signals: Tensor) -> Tensor:
        """Valid-mode convolution of each row with the stored taps."""
        _, length = signals.shape
        if length < self.n_taps:
            raise ValueError(f"signal length {length} shorter than filter ({self.n_taps} taps)")
        windows = []
        out_length = length - self.n_taps + 1
        for k in range(self.n_taps):
            windows.append(signals[:, k : k + out_length] * self.taps[k])
        total = windows[0]
        for w in windows[1:]:
            total = total + w
        return total

    def forward(self, signals: Tensor) -> Tensor:
        smoothed = self.filtered(signals)
        energy = (smoothed * smoothed).mean(axis=1)
        margin = (energy - self.threshold[0]).clip(-1e6, 1e6)
        return Tensor.concatenate([margin.reshape(-1, 1), (-margin).reshape(-1, 1)], axis=1)


def make_filter_dataset(
    detector: FIRDetector,
    n: int = 64,
    length: int = 64,
    event_fraction: float = 0.5,
    noise: float = 0.6,
    rng: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Noisy sinusoid-burst signals with golden-detector verdicts as labels.

    Half the signals (by ``event_fraction``) carry a sinusoid burst that
    the golden detector flags; labels are the golden verdicts, so campaign
    error measures verdict divergence under faults.
    """
    from repro.tensor.tensor import no_grad
    from repro.utils.rng import as_generator

    if n <= 0 or length < detector.n_taps:
        raise ValueError("invalid dataset geometry")
    if not 0.0 <= event_fraction <= 1.0:
        raise ValueError(f"event_fraction must be in [0, 1], got {event_fraction}")
    gen = as_generator(rng)
    t = np.arange(length, dtype=np.float32)
    signals = gen.normal(0.0, noise, size=(n, length)).astype(np.float32)
    has_event = gen.random(n) < event_fraction
    amplitude = gen.uniform(0.8, 1.5, size=n).astype(np.float32)
    phase = gen.uniform(0, 2 * np.pi, size=n).astype(np.float32)
    burst = amplitude[:, None] * np.sin(0.25 * t[None, :] + phase[:, None])
    signals[has_event] += burst[has_event].astype(np.float32)

    detector.eval()
    with no_grad():
        logits = detector(Tensor(signals))
    labels = logits.data.argmax(axis=1).astype(np.int64)
    return signals, labels
