"""A differentiable polynomial decision function.

The minimal "program other than a neural network": classify scalar inputs
by the sign of a stored polynomial. Useful as the simplest end-to-end test
of program fault injection, and because its fault behaviour is analysable
by hand (a flip in the leading coefficient moves every root).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor

__all__ = ["PolynomialClassifier", "make_polynomial_dataset"]


class PolynomialClassifier(Module):
    """Sign-of-polynomial classifier with fault-injectable coefficients.

    ``coefficients[k]`` multiplies ``x^k``. Forward emits
    ``[p(x), −p(x)]`` logits: class 0 where the polynomial is positive.
    """

    def __init__(self, coefficients: np.ndarray | list[float]) -> None:
        super().__init__()
        coefficients = np.asarray(coefficients, dtype=np.float32)
        if coefficients.ndim != 1 or coefficients.size == 0:
            raise ValueError("coefficients must be a non-empty 1-D array")
        self.degree = coefficients.size - 1
        self.coefficients = Parameter(coefficients)

    def forward(self, x: Tensor) -> Tensor:
        values = x.reshape(x.shape[0])
        # Horner evaluation keeps the op count linear in the degree.
        result = values * 0.0 + self.coefficients[self.degree]
        for k in range(self.degree - 1, -1, -1):
            result = result * values + self.coefficients[k]
        result = result.clip(-1e6, 1e6)
        return Tensor.concatenate([result.reshape(-1, 1), (-result).reshape(-1, 1)], axis=1)


def make_polynomial_dataset(
    classifier: PolynomialClassifier,
    n: int = 128,
    x_range: tuple[float, float] = (-2.0, 2.0),
    rng: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform inputs with the golden polynomial's sign verdicts as labels."""
    from repro.tensor.tensor import no_grad
    from repro.utils.rng import as_generator

    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    lo, hi = x_range
    if lo >= hi:
        raise ValueError(f"degenerate x range {x_range}")
    gen = as_generator(rng)
    inputs = gen.uniform(lo, hi, size=(n, 1)).astype(np.float32)
    classifier.eval()
    with no_grad():
        logits = classifier(Tensor(inputs))
    labels = logits.data.argmax(axis=1).astype(np.int64)
    return inputs, labels
