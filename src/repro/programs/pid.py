"""A differentiable PID control loop.

The program: a PID controller with stored gains (kp, ki, kd) drives a
damped second-order plant (mass-spring-damper) toward a setpoint for a
fixed horizon, by explicit-Euler integration built entirely from tensor
ops — so the closed-loop tracking error is differentiable in the gains,
exactly the property BDLFI needs.

Spec: the mean absolute tracking error over the final quarter of the
horizon must be below ``tolerance``. The forward pass emits logits
``[margin, −margin]`` with ``margin = tolerance − settling error``, so
argmax gives class 0 = "within spec". Bit flips in the stored gains
(injected with the usual ``W' = e ⊕ W`` machinery) corrupt the control law
and push trajectories out of spec.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor

__all__ = ["PIDController", "make_pid_dataset"]


class PIDController(Module):
    """PID gains as fault-injectable parameters; plant simulation as forward.

    Parameters
    ----------
    kp, ki, kd:
        Initial gains (tuned defaults settle the default plant well).
    plant:
        ``(mass, damping, stiffness)`` of the controlled plant.
    horizon / dt:
        Simulation length and step.
    tolerance:
        Settling-error spec bound.
    """

    def __init__(
        self,
        kp: float = 8.0,
        ki: float = 2.0,
        kd: float = 3.0,
        plant: tuple[float, float, float] = (1.0, 1.2, 2.0),
        horizon: int = 60,
        dt: float = 0.05,
        tolerance: float = 0.15,
    ) -> None:
        super().__init__()
        if horizon <= 4:
            raise ValueError(f"horizon must exceed 4 steps, got {horizon}")
        if dt <= 0 or tolerance <= 0:
            raise ValueError("dt and tolerance must be positive")
        self.kp = Parameter(np.asarray([kp], dtype=np.float32))
        self.ki = Parameter(np.asarray([ki], dtype=np.float32))
        self.kd = Parameter(np.asarray([kd], dtype=np.float32))
        self.plant = plant
        self.horizon = horizon
        self.dt = dt
        self.tolerance = tolerance

    def simulate(self, setpoints: Tensor) -> Tensor:
        """Mean |tracking error| over the settling window, per batch element.

        ``setpoints`` has shape ``(batch, 1)`` (target position per case).
        """
        mass, damping, stiffness = self.plant
        dt = self.dt
        target = setpoints.reshape(setpoints.shape[0])

        position = target * 0.0
        velocity = target * 0.0
        integral = target * 0.0
        previous_error = target - position

        settle_start = self.horizon - self.horizon // 4
        settle_terms = []
        for step in range(self.horizon):
            error = target - position
            integral = integral + error * dt
            derivative = (error - previous_error) * (1.0 / dt)
            control = self.kp * error + self.ki * integral + self.kd * derivative
            # Clip actuator output: a real actuator saturates, and this also
            # keeps corrupted-gain simulations numerically bounded.
            control = control.clip(-1e4, 1e4)
            acceleration = (control - damping * velocity - stiffness * position) * (1.0 / mass)
            velocity = (velocity + acceleration * dt).clip(-1e6, 1e6)
            position = (position + velocity * dt).clip(-1e6, 1e6)
            previous_error = error
            if step >= settle_start:
                settle_terms.append(error.abs())
        total = settle_terms[0]
        for term in settle_terms[1:]:
            total = total + term
        return total * (1.0 / len(settle_terms))

    def forward(self, setpoints: Tensor) -> Tensor:
        settle_error = self.simulate(setpoints)
        margin = self.tolerance - settle_error
        return Tensor.concatenate(
            [margin.reshape(-1, 1), (-margin).reshape(-1, 1)], axis=1
        )


def make_pid_dataset(
    controller: PIDController,
    n: int = 64,
    setpoint_range: tuple[float, float] = (0.2, 2.0),
    rng: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Setpoints plus the *golden* controller's spec verdicts as labels.

    Returns ``(inputs, labels)`` ready for
    :class:`repro.core.BayesianFaultInjector`: label 0 = the fault-free
    controller settles this setpoint within spec.
    """
    from repro.tensor.tensor import no_grad
    from repro.utils.rng import as_generator

    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    gen = as_generator(rng)
    lo, hi = setpoint_range
    if lo >= hi:
        raise ValueError(f"degenerate setpoint range {setpoint_range}")
    setpoints = gen.uniform(lo, hi, size=(n, 1)).astype(np.float32)
    controller.eval()
    with no_grad():
        logits = controller(Tensor(setpoints))
    labels = logits.data.argmax(axis=1).astype(np.int64)
    return setpoints, labels
