"""Fault injection for differentiable programs beyond neural networks.

The paper closes its introduction with: "BFI can be used to inject faults
into programs other than neural networks, with the only assumption being
that of end-to-end differentiability." This package makes that concrete:
three differentiable programs, each a :class:`repro.nn.Module` whose
*parameters are the program's stored constants* (controller gains, filter
taps, polynomial coefficients) and whose forward pass emits two-class
"within spec / out of spec" logits — so the entire BDLFI machinery
(campaigns, MCMC, completeness, sensitivity, protection) applies unchanged.

* :class:`~repro.programs.pid.PIDController` — a PID loop driving a
  second-order plant; spec = settles within tolerance. The canonical
  safety-critical control example from the paper's motivation.
* :class:`~repro.programs.filter.FIRDetector` — an FIR filter + energy
  threshold detector over noisy signals.
* :class:`~repro.programs.polynomial.PolynomialClassifier` — a polynomial
  decision function; the minimal differentiable program.

``make_*_dataset`` helpers generate matched evaluation batches whose labels
are the *golden program's* spec outcomes, so the campaign statistic reads
"fraction of cases where the faulted program's verdict diverges from the
fault-free program".
"""

from repro.programs.pid import PIDController, make_pid_dataset
from repro.programs.filter import FIRDetector, make_filter_dataset
from repro.programs.polynomial import PolynomialClassifier, make_polynomial_dataset

__all__ = [
    "PIDController",
    "make_pid_dataset",
    "FIRDetector",
    "make_filter_dataset",
    "PolynomialClassifier",
    "make_polynomial_dataset",
]
