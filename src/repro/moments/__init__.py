"""Analytic moment propagation of fault distributions.

The paper's Fig. 1 ② describes the Bayesian failure model as making the
"output of each neuron ... a probability distribution over its output
space given the original weights and p", with "fault behavior ...
propagated through the NN". The sampling campaigns in :mod:`repro.core`
realise that push-forward by Monte Carlo; this package realises it
*analytically* for feed-forward ReLU networks, in the tradition of
assumed-density filtering in Bayesian deep learning (Gal 2016 — the
paper's reference [2]):

1. :func:`~repro.moments.perturbation.weight_perturbation_moments` turns
   the Bernoulli(p) bit-flip model into exact-to-O(p²) per-weight
   perturbation means/variances over the *finite* flip deltas, plus the
   probability that any *catastrophic* (non-finite) flip occurs;
2. :class:`~repro.moments.propagation.MomentPropagator` pushes
   (mean, variance) through Dense layers (exact, with uncertain weights)
   and ReLUs (Gaussian moment matching), then converts output-logit
   moments into a misclassification probability;
3. the total prediction decomposes as
   ``(1 − P_cat) · gaussian_error + P_cat · catastrophic_error``.

One forward pass over closed-form moments replaces an entire sampling
campaign in the small-p regime — the strongest form of the paper's
"algorithmic acceleration" advantage — and ablation A7
(``benchmarks/bench_moments.py``) validates it against Monte Carlo.
"""

from repro.moments.perturbation import weight_perturbation_moments, PerturbationMoments
from repro.moments.propagation import MomentPropagator, MomentPrediction

__all__ = [
    "weight_perturbation_moments",
    "PerturbationMoments",
    "MomentPropagator",
    "MomentPrediction",
]
