"""Per-weight perturbation moments under the Bernoulli bit-flip model.

For a stored float32 ``w`` with flip deltas ``Δ_b = flip(w, b) − w`` and
i.i.d. Bernoulli(p) lane flips, exactly one lane flips with probability
``p(1−p)³¹`` per lane and multi-flips carry O(p²) mass. To first order,

    E[Δw]  ≈ p · Σ_b Δ_b        (finite lanes)
    E[Δw²] ≈ p · Σ_b Δ_b²       (finite lanes; Var ≈ E[Δw²] − E[Δw]² )

Lanes whose flip is non-finite, or whose |Δ| exceeds a *severity
threshold*, are excluded from the moments — the Gaussian family cannot
describe a perturbation many orders of magnitude beyond the weight scale,
and such flips drive the network to a saturated regime where the moment
model's assumptions fail anyway. These *severe sites* are accounted
separately and exactly: each fires independently with probability p, so
over ``K`` sites ``P_severe = 1 − (1−p)^K``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits.float32 import BITS_PER_FLOAT
from repro.sensitivity.taylor import _flip_deltas

__all__ = ["PerturbationMoments", "weight_perturbation_moments"]


@dataclass(frozen=True)
class PerturbationMoments:
    """First-order moments of the stored-value perturbation."""

    #: E[Δw] per element (benign lanes only), same shape as the values
    mean: np.ndarray
    #: Var[Δw] per element (benign lanes only)
    variance: np.ndarray
    #: number of severe (non-finite or out-of-scale flip) lanes per element
    severe_sites: np.ndarray
    #: flip probability the moments were computed for
    p: float
    #: |Δ| bound that separated benign from severe lanes
    severe_threshold: float

    @property
    def total_severe_sites(self) -> int:
        return int(self.severe_sites.sum())

    def severe_probability(self) -> float:
        """Exact P(at least one severe flip anywhere in this tensor)."""
        k = self.total_severe_sites
        return float(1.0 - (1.0 - self.p) ** k)


def default_severe_threshold(values: np.ndarray) -> float:
    """|Δ| bound: 100× the tensor's RMS (floored at 1).

    A perturbation two orders of magnitude past the weight scale saturates
    whatever unit it feeds; treating it as "severe" rather than Gaussian is
    both numerically necessary and physically right.
    """
    values = np.asarray(values, dtype=np.float64)
    rms = float(np.sqrt((values**2).mean())) if values.size else 0.0
    return 100.0 * max(rms, 1.0)


def weight_perturbation_moments(
    values: np.ndarray,
    p: float,
    bits: tuple[int, ...] | None = None,
    severe_threshold: float | None = None,
) -> PerturbationMoments:
    """Moments of ``Δw`` for every element of ``values`` (see module docs).

    ``bits`` restricts the vulnerable lanes, matching
    :class:`repro.faults.BernoulliBitFlipModel`'s ``bits`` argument;
    ``severe_threshold`` overrides :func:`default_severe_threshold`.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"flip probability must be in [0, 1], got {p}")
    values = np.asarray(values, dtype=np.float32)
    if severe_threshold is None:
        severe_threshold = default_severe_threshold(values)
    if severe_threshold <= 0:
        raise ValueError(f"severe_threshold must be positive, got {severe_threshold}")
    deltas = _flip_deltas(values)  # (n, 32), float64, ±inf on catastrophic lanes

    if bits is not None:
        lanes = sorted(set(bits))
        if not lanes or min(lanes) < 0 or max(lanes) >= BITS_PER_FLOAT:
            raise ValueError("bits must be a non-empty subset of [0, 32)")
        lane_mask = np.zeros(BITS_PER_FLOAT, dtype=bool)
        lane_mask[lanes] = True
        deltas = deltas[:, lane_mask]

    with np.errstate(invalid="ignore"):
        benign = np.isfinite(deltas) & (np.abs(deltas) <= severe_threshold)
    benign_deltas = np.where(benign, deltas, 0.0)
    mean = p * benign_deltas.sum(axis=1)
    second = p * (benign_deltas**2).sum(axis=1)
    variance = np.maximum(second - mean**2, 0.0)
    severe = (~benign).sum(axis=1)

    shape = values.shape
    return PerturbationMoments(
        mean=mean.reshape(shape),
        variance=variance.reshape(shape),
        severe_sites=severe.reshape(shape),
        p=float(p),
        severe_threshold=float(severe_threshold),
    )
