"""Assumed-density propagation of fault moments through ReLU networks.

State: per-unit (mean, variance) with a cross-unit independence
assumption — the classic ADF factorisation. Supported layers:

* :class:`~repro.nn.layers.Dense` with uncertain weights/biases — exact
  first two moments of ``y = x·W' + b'`` when ``x``, ``ΔW`` and ``Δb`` are
  independent:
  ``E[y] = E[x]·(W̄ + m_W) + b̄ + m_b`` and
  ``Var[y] = Var[x]·(W̄+m_W)² + (E[x]² + Var[x])·v_W + v_b``
  (elementwise squares, matrix products over the input axis);
* :class:`~repro.nn.conv.Conv2d` — the same uncertain-linear algebra with
  convolutions in place of matrix products;
* :class:`~repro.nn.norm.BatchNorm2d` in eval mode — an affine transform
  with uncertain scale/shift over frozen running statistics;
* :class:`~repro.nn.activations.ReLU` — Gaussian moment matching with the
  closed-form rectified-Gaussian moments;
* :class:`~repro.nn.pooling.AvgPool2d` / ``GlobalAvgPool2d`` — linear, so
  exact (``Var(mean of k² independents) = mean(var)/k²``);
* :class:`~repro.nn.layers.Flatten` / :class:`~repro.nn.layers.Identity`.

Supported compositions: :class:`MLP`, average-pool :class:`LeNet`
(``LeNet(pool="avg")``), and arbitrary (nested) ``Sequential`` stacks of
the above. Max pooling and residual adds are not covered — use the
sampling campaigns for those architectures.

The output converts logit moments to misclassification probability with
the pairwise-Gaussian product approximation
``P(correct) ≈ Π_{j≠l} Φ((μ_l − μ_j)/√(σ_l² + σ_j²))``.

Severe flips (non-finite or far beyond the weight scale) are outside any
Gaussian's reach; they are split off exactly via their Bernoulli
probability and bounded between fully-masked and worst-case outcomes —
see :class:`MomentPrediction`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.moments.perturbation import weight_perturbation_moments
from repro.nn.activations import ReLU
from repro.nn.containers import Sequential
from repro.nn.conv import Conv2d
from repro.nn.layers import Dense, Flatten, Identity
from repro.nn.models.lenet import LeNet
from repro.nn.models.mlp import MLP
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d

__all__ = ["MomentPrediction", "MomentPropagator"]


@dataclass(frozen=True)
class MomentPrediction:
    """Analytic error prediction at one flip probability.

    A severe flip's effect is bimodal — it either saturates a unit and
    drives the output to a near-constant prediction, or (negative
    pre-activation into a ReLU) is masked entirely — so the analysis
    reports *bounds* around the severe mass plus a point estimate:

    * ``error_lower``  — every severe flip masked;
    * ``error_upper``  — every severe flip worst-case (random guessing);
    * ``combined_error`` — severe flips split evenly between the two,
      the maximum-entropy point choice.
    """

    p: float
    #: predicted error conditioned on no severe flip
    gaussian_error: float
    #: exact probability of at least one severe flip
    severe_probability: float
    #: error assigned to a worst-case severe outcome
    severe_error: float
    golden_error: float

    @property
    def error_lower(self) -> float:
        return (1.0 - self.severe_probability) * self.gaussian_error

    @property
    def error_upper(self) -> float:
        ps = self.severe_probability
        return (1.0 - ps) * self.gaussian_error + ps * self.severe_error

    @property
    def combined_error(self) -> float:
        """Point prediction: severe outcomes half masked, half worst-case."""
        ps = self.severe_probability
        return (1.0 - ps) * self.gaussian_error + 0.5 * ps * self.severe_error

    def brackets(self, measured: float) -> bool:
        """Whether a measured error falls inside [lower, upper] (validation)."""
        return self.error_lower - 1e-9 <= measured <= self.error_upper + 1e-9


def _relu_moments(mean: np.ndarray, variance: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rectified-Gaussian first two moments, elementwise."""
    sigma = np.sqrt(np.maximum(variance, 0.0))
    out_mean = np.maximum(mean, 0.0)
    out_var = np.zeros_like(variance)
    positive = sigma > 1e-12
    if np.any(positive):
        mu = mean[positive]
        sd = sigma[positive]
        alpha = mu / sd
        cdf = sps.norm.cdf(alpha)
        pdf = sps.norm.pdf(alpha)
        first = mu * cdf + sd * pdf
        second = (mu**2 + sd**2) * cdf + mu * sd * pdf
        out_mean[positive] = first
        out_var[positive] = np.maximum(second - first**2, 0.0)
    return out_mean, out_var


class MomentPropagator:
    """Analytic fault-error predictor for Dense/ReLU networks.

    Parameters
    ----------
    model:
        An :class:`~repro.nn.models.MLP`, an average-pool
        :class:`~repro.nn.models.LeNet`, or a (nested) :class:`Sequential`
        of Dense / Conv2d / BatchNorm2d / ReLU / AvgPool / Flatten layers.
    p:
        Bit-flip probability (the paper's AVF parameter).
    bits:
        Optional vulnerable-lane restriction, as in
        :class:`repro.faults.BernoulliBitFlipModel`.
    include_biases:
        Whether bias storage is part of the fault surface.
    severe_error:
        Worst-case error assigned to severe-flip draws; defaults to random
        guessing, ``1 − 1/num_classes``.
    severe_threshold:
        |Δ| bound separating Gaussian-describable lanes from severe ones;
        defaults per tensor to 100× its RMS (see
        :func:`repro.moments.perturbation.default_severe_threshold`).
    """

    def __init__(
        self,
        model: Module,
        p: float,
        bits: tuple[int, ...] | None = None,
        include_biases: bool = True,
        severe_error: float | None = None,
        severe_threshold: float | None = None,
    ) -> None:
        self.sequence = self._flatten_model(model)
        self.p = float(p)
        self.bits = bits
        self.include_biases = include_biases
        self._layer_moments: dict[int, dict[str, object]] = {}
        severe_sites = 0
        for index, layer in enumerate(self.sequence):
            if isinstance(layer, (Dense, Conv2d, BatchNorm2d)):
                weight_moments = weight_perturbation_moments(
                    layer.weight.data, p, bits=bits, severe_threshold=severe_threshold
                )
                entry: dict[str, object] = {"weight": weight_moments}
                severe_sites += weight_moments.total_severe_sites
                if include_biases and layer.bias is not None:
                    bias_moments = weight_perturbation_moments(
                        layer.bias.data, p, bits=bits, severe_threshold=severe_threshold
                    )
                    entry["bias"] = bias_moments
                    severe_sites += bias_moments.total_severe_sites
                self._layer_moments[index] = entry
        if not self._layer_moments:
            raise ValueError("model contains no parameterised layers to analyse")
        #: exact P(at least one severe flip across the whole fault surface)
        self.severe_probability = float(1.0 - (1.0 - p) ** severe_sites)
        self.total_severe_sites = severe_sites
        self._severe_error = severe_error

    _SUPPORTED_LEAVES = (Dense, Conv2d, BatchNorm2d, ReLU, Flatten, Identity, AvgPool2d, GlobalAvgPool2d)

    @classmethod
    def _flatten_model(cls, model: Module) -> list[Module]:
        """Expand known sequential compositions into a flat layer list."""
        if isinstance(model, MLP):
            model = model.layers
        if isinstance(model, LeNet):
            layers: list[Module] = [*cls._flatten_model(model.features), *cls._flatten_model(model.classifier)]
        elif isinstance(model, Sequential):
            layers = []
            for child in model:
                if isinstance(child, Sequential):
                    layers.extend(cls._flatten_model(child))
                else:
                    layers.append(child)
        elif isinstance(model, cls._SUPPORTED_LEAVES):
            layers = [model]
        else:
            raise TypeError(
                f"MomentPropagator supports MLP/LeNet/Sequential compositions, got {type(model).__name__}"
            )
        for layer in layers:
            if not isinstance(layer, cls._SUPPORTED_LEAVES):
                raise TypeError(
                    f"unsupported layer {type(layer).__name__}; analytic propagation covers "
                    "Dense/Conv2d/BatchNorm2d(eval)/ReLU/AvgPool/GlobalAvgPool/Flatten/Identity"
                )
        return layers

    # ------------------------------------------------------------------ #
    # propagation
    # ------------------------------------------------------------------ #

    def propagate(self, inputs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Push (mean, variance) of the logits for a clean input batch."""
        mean = np.asarray(inputs, dtype=np.float64)
        needs_flat = not any(isinstance(layer, (Conv2d, BatchNorm2d)) for layer in self.sequence)
        if needs_flat and mean.ndim > 2:
            mean = mean.reshape(mean.shape[0], -1)
        variance = np.zeros_like(mean)
        for index, layer in enumerate(self.sequence):
            if isinstance(layer, Dense):
                if mean.ndim > 2:
                    mean = mean.reshape(mean.shape[0], -1)
                    variance = variance.reshape(variance.shape[0], -1)
                mean, variance = self._dense_moments(layer, index, mean, variance)
            elif isinstance(layer, Conv2d):
                mean, variance = self._conv_moments(layer, index, mean, variance)
            elif isinstance(layer, BatchNorm2d):
                mean, variance = self._batchnorm_moments(layer, index, mean, variance)
            elif isinstance(layer, AvgPool2d):
                mean, variance = self._avgpool_moments(layer, mean, variance)
            elif isinstance(layer, GlobalAvgPool2d):
                spatial = mean.shape[2] * mean.shape[3]
                mean = mean.mean(axis=(2, 3))
                variance = variance.sum(axis=(2, 3)) / spatial**2
            elif isinstance(layer, ReLU):
                mean, variance = _relu_moments(mean, variance)
            elif isinstance(layer, Flatten):
                mean = mean.reshape(mean.shape[0], -1)
                variance = variance.reshape(variance.shape[0], -1)
            # Identity: nothing
        return mean, variance

    @staticmethod
    def _conv_apply(kernel: np.ndarray, values: np.ndarray, stride: int, padding: int) -> np.ndarray:
        """Plain conv2d of float64 values with a float64 kernel (no grad)."""
        from repro.tensor import conv2d as conv2d_fn
        from repro.tensor.tensor import Tensor, no_grad

        with no_grad():
            out = conv2d_fn(
                Tensor(values.astype(np.float32)),
                Tensor(kernel.astype(np.float32)),
                None,
                stride=stride,
                padding=padding,
            )
        return out.data.astype(np.float64)

    def _conv_moments(self, layer: Conv2d, index: int, x_mean, x_var):
        entry = self._layer_moments[index]
        weight_moments = entry["weight"]
        kernel_eff = layer.weight.data.astype(np.float64) + weight_moments.mean
        kernel_var = weight_moments.variance
        y_mean = self._conv_apply(kernel_eff, x_mean, layer.stride, layer.padding)
        y_var = self._conv_apply(kernel_eff**2, x_var, layer.stride, layer.padding)
        y_var = y_var + self._conv_apply(kernel_var, x_mean**2 + x_var, layer.stride, layer.padding)
        if layer.bias is not None:
            bias = layer.bias.data.astype(np.float64).reshape(1, -1, 1, 1)
            if "bias" in entry:
                bias_moments = entry["bias"]
                y_mean = y_mean + bias + bias_moments.mean.reshape(1, -1, 1, 1)
                y_var = y_var + bias_moments.variance.reshape(1, -1, 1, 1)
            else:
                y_mean = y_mean + bias
        return y_mean, np.maximum(y_var, 0.0)

    def _batchnorm_moments(self, layer: BatchNorm2d, index: int, x_mean, x_var):
        """Eval-mode affine transform with uncertain gamma/beta.

        y = a·(x − μ_r) + β' with a = γ'/σ_r; the running statistics are
        frozen constants in eval mode.
        """
        entry = self._layer_moments[index]
        gamma_moments = entry["weight"]
        sigma = np.sqrt(layer.running_var.astype(np.float64) + layer.eps)
        a_mean = (layer.weight.data.astype(np.float64) + gamma_moments.mean) / sigma
        a_var = gamma_moments.variance / sigma**2
        shape = (1, -1, 1, 1)
        centered_mean = x_mean - layer.running_mean.astype(np.float64).reshape(shape)
        y_mean = a_mean.reshape(shape) * centered_mean
        y_var = (
            a_mean.reshape(shape) ** 2 * x_var
            + a_var.reshape(shape) * (centered_mean**2 + x_var)
        )
        beta = layer.bias.data.astype(np.float64).reshape(shape)
        if "bias" in entry:
            beta_moments = entry["bias"]
            y_mean = y_mean + beta + beta_moments.mean.reshape(shape)
            y_var = y_var + beta_moments.variance.reshape(shape)
        else:
            y_mean = y_mean + beta
        return y_mean, np.maximum(y_var, 0.0)

    @staticmethod
    def _avgpool_moments(layer: AvgPool2d, x_mean, x_var):
        from repro.tensor import avg_pool2d
        from repro.tensor.tensor import Tensor, no_grad

        window = layer.kernel_size * layer.kernel_size
        with no_grad():
            mean_out = avg_pool2d(Tensor(x_mean.astype(np.float32)), layer.kernel_size, layer.stride).data
            var_out = avg_pool2d(Tensor(x_var.astype(np.float32)), layer.kernel_size, layer.stride).data
        # Var(mean of k² independents) = mean(var)/k².
        return mean_out.astype(np.float64), var_out.astype(np.float64) / window

    def _dense_moments(self, layer: Dense, index: int, x_mean, x_var):
        entry = self._layer_moments[index]
        weight_moments = entry["weight"]
        w_eff = layer.weight.data.astype(np.float64) + weight_moments.mean
        w_var = weight_moments.variance
        y_mean = x_mean @ w_eff
        y_var = x_var @ (w_eff**2) + (x_mean**2 + x_var) @ w_var
        if layer.bias is not None:
            bias = layer.bias.data.astype(np.float64)
            if "bias" in entry:
                bias_moments = entry["bias"]
                y_mean = y_mean + bias + bias_moments.mean
                y_var = y_var + bias_moments.variance
            else:
                y_mean = y_mean + bias
        return y_mean, y_var

    # ------------------------------------------------------------------ #
    # error prediction
    # ------------------------------------------------------------------ #

    @staticmethod
    def misclassification_probability(
        logit_mean: np.ndarray, logit_variance: np.ndarray, labels: np.ndarray
    ) -> float:
        """Mean P(argmax ≠ label) under the independent-Gaussian logit model."""
        labels = np.asarray(labels, dtype=np.int64)
        n, k = logit_mean.shape
        if labels.shape != (n,):
            raise ValueError(f"labels shape {labels.shape} does not match batch {n}")
        correct = np.ones(n)
        label_mean = logit_mean[np.arange(n), labels]
        label_var = logit_variance[np.arange(n), labels]
        for j in range(k):
            competitor = np.full(n, j) != labels
            if not competitor.any():
                continue
            gap = label_mean[competitor] - logit_mean[competitor, j]
            spread = np.sqrt(label_var[competitor] + logit_variance[competitor, j])
            prob = np.where(spread > 1e-12, sps.norm.cdf(gap / np.maximum(spread, 1e-12)), (gap > 0) + 0.5 * (gap == 0))
            correct[competitor] *= prob
        return float(1.0 - correct.mean())

    def _clean_logits(self, inputs: np.ndarray) -> np.ndarray:
        """Deterministic forward pass with the golden weights (no faults)."""
        from repro.tensor import avg_pool2d
        from repro.tensor.tensor import Tensor, no_grad

        x = np.asarray(inputs, dtype=np.float64)
        needs_flat = not any(isinstance(layer, (Conv2d, BatchNorm2d)) for layer in self.sequence)
        if needs_flat and x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        for layer in self.sequence:
            if isinstance(layer, Dense):
                if x.ndim > 2:
                    x = x.reshape(x.shape[0], -1)
                x = x @ layer.weight.data.astype(np.float64)
                if layer.bias is not None:
                    x = x + layer.bias.data.astype(np.float64)
            elif isinstance(layer, Conv2d):
                x = self._conv_apply(layer.weight.data.astype(np.float64), x, layer.stride, layer.padding)
                if layer.bias is not None:
                    x = x + layer.bias.data.astype(np.float64).reshape(1, -1, 1, 1)
            elif isinstance(layer, BatchNorm2d):
                sigma = np.sqrt(layer.running_var.astype(np.float64) + layer.eps)
                shape = (1, -1, 1, 1)
                x = (
                    layer.weight.data.astype(np.float64).reshape(shape)
                    * (x - layer.running_mean.astype(np.float64).reshape(shape))
                    / sigma.reshape(shape)
                    + layer.bias.data.astype(np.float64).reshape(shape)
                )
            elif isinstance(layer, AvgPool2d):
                with no_grad():
                    x = avg_pool2d(Tensor(x.astype(np.float32)), layer.kernel_size, layer.stride).data.astype(np.float64)
            elif isinstance(layer, GlobalAvgPool2d):
                x = x.mean(axis=(2, 3))
            elif isinstance(layer, ReLU):
                x = np.maximum(x, 0.0)
            elif isinstance(layer, Flatten):
                x = x.reshape(x.shape[0], -1)
        return x

    def predict_error(self, inputs: np.ndarray, labels: np.ndarray) -> MomentPrediction:
        """Analytic total-error prediction for an evaluation batch."""
        labels = np.asarray(labels, dtype=np.int64)
        mean, variance = self.propagate(inputs)
        gaussian_error = self.misclassification_probability(mean, variance, labels)
        clean = self._clean_logits(inputs)
        golden = self.misclassification_probability(clean, np.zeros_like(clean), labels)
        num_classes = mean.shape[1]
        severe_error = (
            self._severe_error if self._severe_error is not None else 1.0 - 1.0 / num_classes
        )
        return MomentPrediction(
            p=self.p,
            gaussian_error=gaussian_error,
            severe_probability=self.severe_probability,
            severe_error=float(severe_error),
            golden_error=golden,
        )
