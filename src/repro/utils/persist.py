"""Crash-safe result persistence: atomic writes, checksums, JSON-clean floats.

Long campaigns die to crashes, OOM kills, and Ctrl-C; a half-written
result file is worse than no file, because downstream analysis silently
reads garbage. Every persistence path in the library therefore goes
through this module:

* **Atomicity** — payloads are written to a temporary file in the target
  directory, flushed and fsync'd, then moved into place with
  ``os.replace``. Readers only ever observe the old file or the complete
  new one, never a torn write.
* **Integrity** — JSON payloads embed a SHA-256 content checksum
  (``__checksum__``) computed over the canonical serialisation;
  :func:`read_checked_json` recomputes and verifies it, raising
  :class:`ChecksumError` on silent corruption. Files written before
  checksumming existed (no ``__checksum__`` key) still load.
* **JSON cleanliness** — ``NaN``/``Infinity`` are not valid JSON, yet
  campaign records legitimately contain them (undefined swap acceptance,
  diverged R-hat). :func:`sanitize_nonfinite` maps ``nan`` to ``null``
  and infinities to the strings ``"inf"``/``"-inf"``;
  :func:`float_from_json` restores them on load.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import sys
import tempfile
from typing import Any, Mapping

__all__ = [
    "ChecksumError",
    "sanitize_nonfinite",
    "float_from_json",
    "canonical_dumps",
    "payload_checksum",
    "atomic_write_bytes",
    "atomic_write_json",
    "read_checked_json",
]

#: key carrying the embedded content checksum in JSON files
CHECKSUM_KEY = "__checksum__"


class ChecksumError(RuntimeError):
    """A persisted file's content does not match its recorded checksum."""


# ---------------------------------------------------------------------- #
# JSON-clean floats
# ---------------------------------------------------------------------- #


def sanitize_nonfinite(value: Any) -> Any:
    """Recursively replace non-finite floats with JSON-representable values.

    ``nan`` becomes ``None`` (JSON ``null``), ``inf``/``-inf`` become the
    strings ``"inf"``/``"-inf"``. Containers are rebuilt; everything else
    passes through untouched.
    """
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, dict):
        return {key: sanitize_nonfinite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_nonfinite(item) for item in value]
    return value


def float_from_json(value: object, default: float = float("nan")) -> float:
    """Inverse of :func:`sanitize_nonfinite` for scalar float fields.

    ``None`` maps back to ``nan`` (or ``default``), ``"inf"``/``"-inf"``
    to the infinities, anything else through ``float()``.
    """
    if value is None:
        return default
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return float(value)  # type: ignore[arg-type]


# ---------------------------------------------------------------------- #
# checksums
# ---------------------------------------------------------------------- #


def canonical_dumps(payload: Any, default=None) -> str:
    """Deterministic JSON serialisation (sorted keys, tight separators).

    ``allow_nan=False`` makes any unsanitised non-finite float a loud
    error instead of silently-invalid JSON.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False, default=default
    )


def payload_checksum(payload: Any, default=None) -> str:
    """SHA-256 hex digest of the canonical JSON serialisation."""
    return hashlib.sha256(canonical_dumps(payload, default=default).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# atomic writes
# ---------------------------------------------------------------------- #


def _chaos():
    """The chaos module, iff something already imported it (else ``None``).

    ``repro.utils`` sits below ``repro.exec`` in the import graph, so this
    module must not import :mod:`repro.exec.chaos` eagerly. An injector
    can only be installed by code that imported the module, so looking it
    up in ``sys.modules`` is both cycle-free and exactly as observable:
    when chaos was never imported, no plan can be active.
    """
    return sys.modules.get("repro.exec.chaos")


def _chaos_fire(site: str, path: str) -> bool:
    """Whether chaos site ``site`` fires for this write (False when off)."""
    chaos = _chaos()
    if chaos is None or chaos.active() is None:
        return False
    return chaos.should_fire(site, key=os.path.basename(path))


def _fsync_directory(directory: str) -> None:
    """Flush the directory entry so the rename itself survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms/filesystems without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + fsync + replace).

    Chaos sites (:mod:`repro.exec.chaos`): ``disk.full`` fires at the
    payload write, ``persist.fsync`` at the fsync, ``persist.replace`` at
    the rename — each exercising the tmp-file cleanup path at a different
    stage. All are a no-op unless a chaos plan is installed.
    """
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            if _chaos_fire("disk.full", path):
                raise _chaos().disk_full_error(path)
            handle.write(data)
            handle.flush()
            if _chaos_fire("persist.fsync", path):
                raise OSError(5, "fsync failed (chaos)", path)  # EIO
            os.fsync(handle.fileno())
        if _chaos_fire("persist.replace", path):
            raise OSError(5, "rename failed (chaos)", path)  # EIO
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    _fsync_directory(directory)


def atomic_write_json(path: str, payload: Mapping[str, Any], default=None) -> None:
    """Atomically write a JSON mapping with an embedded content checksum.

    The payload is NaN-sanitised first, so records containing sentinel
    ``nan`` fields serialise to valid JSON (``null``).
    """
    clean = sanitize_nonfinite(dict(payload))
    record = {CHECKSUM_KEY: payload_checksum(clean, default=default), **clean}
    text = json.dumps(record, indent=2, allow_nan=False, default=default)
    atomic_write_bytes(path, text.encode("utf-8"))


def read_checked_json(path: str) -> dict:
    """Load a JSON mapping written by :func:`atomic_write_json`.

    Verifies the embedded checksum when present (legacy files without one
    load unverified) and strips it from the returned dict.
    """
    with open(path, encoding="utf-8") as handle:
        record = json.load(handle)
    if not isinstance(record, dict):
        raise ChecksumError(f"{path}: expected a JSON object, got {type(record).__name__}")
    recorded = record.pop(CHECKSUM_KEY, None)
    if recorded is not None:
        actual = payload_checksum(record)
        if actual != recorded:
            raise ChecksumError(
                f"{path}: content checksum mismatch "
                f"(recorded {recorded[:12]}…, actual {actual[:12]}…); file is corrupt"
            )
    return record
