"""Deterministic random-number-generator management.

All randomness in the library flows through :class:`numpy.random.Generator`
objects. Components never call the global numpy RNG; they accept either a
``Generator`` or an integer seed and normalise it with :func:`as_generator`.

The :class:`RngFactory` supports hierarchical splitting so that, e.g., each
MCMC chain in a campaign gets an independent, reproducible stream derived
from a single campaign seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators", "RngFactory"]


def as_generator(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise an integer seed, ``Generator``, or ``None`` to a ``Generator``.

    ``None`` produces an OS-entropy-seeded generator; prefer passing an
    explicit seed anywhere reproducibility matters.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_generators(seed_or_rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one source.

    Uses numpy's ``spawn`` mechanism (SeedSequence-based), so streams do not
    overlap and the result depends only on the source seed.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    rng = as_generator(seed_or_rng)
    return list(rng.spawn(n))


class RngFactory:
    """Produce named, reproducible random streams from a single root seed.

    Streams are keyed by string name: asking twice for the same name returns
    generators with identical output, while distinct names give independent
    streams. Campaigns use this to give each (chain, layer, probability)
    combination its own stream without manual seed bookkeeping.

    Example
    -------
    >>> factory = RngFactory(1234)
    >>> a1 = factory.stream("chain-0")
    >>> a2 = factory.stream("chain-0")
    >>> b = factory.stream("chain-1")
    >>> float(a1.random()) == float(a2.random())
    True
    >>> float(factory.stream("chain-0").random()) != float(b.random())
    True
    """

    def __init__(self, root_seed: int) -> None:
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an integer, got {type(root_seed).__name__}")
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return a generator for ``name``, deterministic in (root_seed, name)."""
        # Hash the name into spawn-key entropy; SeedSequence mixes it with the
        # root seed so different roots give unrelated streams for equal names.
        name_entropy = [b for b in name.encode("utf-8")]
        seq = np.random.SeedSequence(entropy=self._root_seed, spawn_key=tuple(name_entropy))
        return np.random.Generator(np.random.PCG64(seq))

    def child(self, name: str) -> "RngFactory":
        """Return a factory whose streams are independent of this one's."""
        sub_seed = int(self.stream(f"__child__:{name}").integers(0, 2**63 - 1))
        return RngFactory(sub_seed)

    def __repr__(self) -> str:
        return f"RngFactory(root_seed={self._root_seed})"
