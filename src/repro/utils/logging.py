"""Structured logging helpers.

A thin wrapper over :mod:`logging` that gives every subsystem a namespaced
logger (``repro.core``, ``repro.mcmc``, ...) with a consistent format, and a
single knob to raise verbosity for campaign debugging.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "set_verbosity", "get_verbosity"]

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"
_configured = False


def _configure_root() -> None:
    global _configured
    if _configured:
        return
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
    root = logging.getLogger("repro")
    root.addHandler(handler)
    root.setLevel(logging.WARNING)
    root.propagate = False
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return the library logger for ``name`` (auto-prefixed with ``repro.``)."""
    _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def set_verbosity(level: int | str) -> None:
    """Set the log level for the whole library (e.g. ``"INFO"`` or ``logging.DEBUG``)."""
    _configure_root()
    logging.getLogger("repro").setLevel(level)


def get_verbosity() -> int:
    """Current numeric log level of the library root logger.

    Executor workers spawn with default logging state; the driver ships
    this level to them (via :func:`repro.obs.worker_config`) so worker
    processes honour ``set_verbosity`` instead of silently dropping
    everything below WARNING.
    """
    _configure_root()
    return logging.getLogger("repro").level
