"""Lightweight stopwatch for campaign bookkeeping.

Thin shim over the library's canonical clock source
(:func:`repro.obs.profile.clock_s`): all durations in repro come from
``time.perf_counter`` via that single function; wall-clock time is
reserved for display timestamps (:func:`repro.obs.profile.wall_display`).
This module keeps the historical ``Timer`` API while guaranteeing every
measurement uses the same monotonic clock the profiler and tracer use.
"""

from __future__ import annotations

from repro.obs.profile import clock_s

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch over the canonical monotonic clock.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = clock_s()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = clock_s() - self._start
            self._start = None

    def restart(self) -> None:
        """Reset the accumulated time and start again."""
        self.elapsed = 0.0
        self._start = clock_s()
