"""Shared utilities: seeded RNG management, logging, and timing.

Every stochastic component in :mod:`repro` takes an explicit
:class:`numpy.random.Generator` so that campaigns are exactly reproducible.
This package centralises how those generators are created and split.
"""

from repro.utils.rng import RngFactory, as_generator, spawn_generators
from repro.utils.logging import get_logger
from repro.utils.persist import (
    ChecksumError,
    atomic_write_bytes,
    atomic_write_json,
    float_from_json,
    read_checked_json,
    sanitize_nonfinite,
)
from repro.utils.timing import Timer

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "get_logger",
    "Timer",
    "ChecksumError",
    "atomic_write_bytes",
    "atomic_write_json",
    "float_from_json",
    "read_checked_json",
    "sanitize_nonfinite",
]
