"""Shared utilities: seeded RNG management, logging, and timing.

Every stochastic component in :mod:`repro` takes an explicit
:class:`numpy.random.Generator` so that campaigns are exactly reproducible.
This package centralises how those generators are created and split.
"""

from repro.utils.rng import RngFactory, as_generator, spawn_generators
from repro.utils.logging import get_logger
from repro.utils.timing import Timer

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "get_logger",
    "Timer",
]
