"""Traditional random fault injection (Li et al. SC'17 / TensorFI style).

Methodology: repeat N times — pick one storage location uniformly at
random, flip one uniformly chosen bit, run one inference, classify the
outcome against the golden run:

* **masked** — every prediction on the evaluation batch unchanged;
* **SDC** (silent data corruption) — at least one prediction changed,
  outputs finite;
* **DUE** (detectable uncorrectable error) — non-finite values reached the
  output (a real system would trap or could detect these).

This is exactly the estimator whose "incomplete traversal of the entire
injection space" the paper blames for the depth-sensitivity artifact of
prior work, so the baseline supports per-layer campaigns for the Fig. 3
comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.compare import wilson_interval
from repro.faults.configuration import FaultConfiguration
from repro.faults.injection import apply_configuration
from repro.faults.single import SingleBitFlipModel
from repro.faults.targets import TargetSpec, resolve_parameter_targets
from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.rng import RngFactory

__all__ = ["InjectionOutcome", "InjectionRecord", "RandomFaultInjector", "RandomFICampaign"]


class InjectionOutcome(enum.Enum):
    MASKED = "masked"
    SDC = "sdc"
    DUE = "due"


@dataclass(frozen=True)
class InjectionRecord:
    """One injection run's result."""

    target: str
    bit: int
    element_index: int
    outcome: InjectionOutcome
    #: fraction of evaluation samples whose prediction changed
    mismatch_fraction: float


@dataclass
class RandomFICampaign:
    """Aggregate of a random-FI campaign."""

    records: list[InjectionRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def _rate(self, outcome: InjectionOutcome) -> float:
        if not self.records:
            return float("nan")
        return float(np.mean([r.outcome is outcome for r in self.records]))

    @property
    def sdc_rate(self) -> float:
        return self._rate(InjectionOutcome.SDC)

    @property
    def due_rate(self) -> float:
        return self._rate(InjectionOutcome.DUE)

    @property
    def masked_rate(self) -> float:
        return self._rate(InjectionOutcome.MASKED)

    @property
    def mean_mismatch(self) -> float:
        """Mean fraction of predictions corrupted per injection.

        Comparable to BDLFI's excess classification error under a matched
        single-flip fault model.
        """
        if not self.records:
            return float("nan")
        return float(np.mean([r.mismatch_fraction for r in self.records]))

    def sdc_interval(self, confidence: float = 0.95) -> tuple[float, float]:
        """Wilson score interval on the SDC rate."""
        hits = sum(r.outcome is InjectionOutcome.SDC for r in self.records)
        return wilson_interval(hits, len(self.records), confidence)

    def by_bit_field(self) -> dict[str, float]:
        """SDC rate split by IEEE-754 field of the flipped bit."""
        from repro.bits.fields import bit_field

        rates: dict[str, float] = {}
        for name in ("sign", "exponent", "mantissa"):
            group = [r for r in self.records if bit_field(r.bit) == name]
            rates[name] = (
                float(np.mean([r.outcome is InjectionOutcome.SDC for r in group]))
                if group
                else float("nan")
            )
        return rates

    def summary(self) -> dict[str, float]:
        lo, hi = self.sdc_interval()
        return {
            "injections": float(len(self.records)),
            "sdc_rate": self.sdc_rate,
            "sdc_ci_lo": lo,
            "sdc_ci_hi": hi,
            "due_rate": self.due_rate,
            "masked_rate": self.masked_rate,
            "mean_mismatch": self.mean_mismatch,
        }


class RandomFaultInjector:
    """Single-bit-flip random injector over a golden model.

    Parameters
    ----------
    model / inputs / labels:
        Golden network and evaluation batch (labels only used for error
        reporting parity with BDLFI; outcome classification is vs golden
        predictions, as in the SC'17 methodology).
    spec:
        Layer/surface filter; defaults to all weights.
    """

    def __init__(
        self,
        model: Module,
        inputs: np.ndarray,
        labels: np.ndarray,
        spec: TargetSpec | None = None,
        seed: int = 0,
    ) -> None:
        self.model = model.eval()
        self.inputs = np.asarray(inputs, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.spec = spec or TargetSpec()
        self.targets = resolve_parameter_targets(model, self.spec)
        if not self.targets:
            raise ValueError("target spec selects no parameters")
        self.seed = seed
        self._rng_factory = RngFactory(seed)
        self._x = Tensor(self.inputs)
        self._golden_predictions = self._predict()
        # Element-weighted target selection: a uniformly random bit of the
        # whole space lands in a tensor proportionally to its size.
        sizes = np.asarray([param.size for _, param in self.targets], dtype=np.float64)
        self._target_weights = sizes / sizes.sum()

    def _predict(self) -> np.ndarray:
        with no_grad(), np.errstate(all="ignore"):
            logits = self.model(self._x)
        return logits.data.argmax(axis=1)

    def _logits_finite(self) -> tuple[np.ndarray, bool]:
        with no_grad(), np.errstate(all="ignore"):
            logits = self.model(self._x)
        return logits.data.argmax(axis=1), bool(np.isfinite(logits.data).all())

    def inject_once(self, rng: np.random.Generator) -> InjectionRecord:
        """One injection run: flip one random bit, classify the outcome."""
        target_index = int(rng.choice(len(self.targets), p=self._target_weights))
        name, param = self.targets[target_index]
        element = int(rng.integers(0, param.size))
        bit = int(rng.integers(0, 32))
        mask = np.zeros(param.size, dtype=np.uint32)
        mask[element] = np.uint32(1) << np.uint32(bit)
        configuration = FaultConfiguration({name: mask.reshape(param.shape)})
        with apply_configuration(self.model, configuration):
            predictions, finite = self._logits_finite()
        mismatch = float((predictions != self._golden_predictions).mean())
        if not finite:
            outcome = InjectionOutcome.DUE
        elif mismatch > 0:
            outcome = InjectionOutcome.SDC
        else:
            outcome = InjectionOutcome.MASKED
        return InjectionRecord(
            target=name, bit=bit, element_index=element, outcome=outcome, mismatch_fraction=mismatch
        )

    def run(self, injections: int, stream: str = "random-fi") -> RandomFICampaign:
        """A campaign of ``injections`` independent single-bit runs."""
        if injections <= 0:
            raise ValueError(f"injections must be positive, got {injections}")
        rng = self._rng_factory.stream(stream)
        campaign = RandomFICampaign()
        for _ in range(injections):
            campaign.records.append(self.inject_once(rng))
        return campaign

    def run_per_layer(self, injections_per_layer: int) -> dict[str, RandomFICampaign]:
        """Independent campaigns restricted to each layer (Fig. 3 baseline)."""
        campaigns: dict[str, RandomFICampaign] = {}
        layer_names = sorted({name.rsplit(".", 1)[0] for name, _ in self.targets})
        for layer in layer_names:
            sub = RandomFaultInjector(
                self.model,
                self.inputs,
                self.labels,
                spec=TargetSpec.single_layer(layer, surfaces=self.spec.surfaces),
                seed=self.seed,
            )
            campaigns[layer] = sub.run(injections_per_layer, stream=f"random-fi:{layer}")
        return campaigns
