"""Ares-style exhaustive / sampled static bit sweep.

Reagen et al. (DAC'18) quantify resilience by sweeping faults over stored
weights offline. :class:`ExhaustiveBitInjector` enumerates every
(element, bit) pair of the selected tensors — or a uniformly sampled subset
when the space is too large — evaluating each flip's effect independently.

Besides serving as the source-level baseline of experiment E7, its
per-bit-lane aggregation is the ground truth for the bit-position
sensitivity ablation (A1): exponent-bit flips dominate SDCs, which is the
mechanistic explanation for the paper's two-regime curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.compare import wilson_interval
from repro.faults.configuration import FaultConfiguration
from repro.faults.injection import apply_configuration
from repro.faults.targets import TargetSpec, resolve_parameter_targets
from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.rng import RngFactory

__all__ = ["BitPositionSensitivity", "ExhaustiveBitInjector"]


@dataclass(frozen=True)
class BitPositionSensitivity:
    """Per-bit-lane aggregation of a static sweep."""

    #: lane → SDC rate (fraction of flips at this lane changing any prediction)
    sdc_by_bit: dict[int, float]
    #: lane → DUE rate (non-finite outputs)
    due_by_bit: dict[int, float]
    #: lane → number of flips evaluated
    count_by_bit: dict[int, int]

    def field_table(self) -> list[dict[str, float | str]]:
        """Aggregate lanes into sign/exponent/mantissa rows."""
        from repro.bits.fields import bit_field

        rows = []
        for name in ("mantissa", "exponent", "sign"):
            lanes = [b for b in self.sdc_by_bit if bit_field(b) == name]
            total = sum(self.count_by_bit[b] for b in lanes)
            if total == 0:
                rows.append({"field": name, "sdc_rate": float("nan"), "due_rate": float("nan"), "flips": 0})
                continue
            sdc = sum(self.sdc_by_bit[b] * self.count_by_bit[b] for b in lanes) / total
            due = sum(self.due_by_bit[b] * self.count_by_bit[b] for b in lanes) / total
            rows.append({"field": name, "sdc_rate": sdc, "due_rate": due, "flips": total})
        return rows


class ExhaustiveBitInjector:
    """Static sweep over the (element, bit) fault space of selected tensors."""

    def __init__(
        self,
        model: Module,
        inputs: np.ndarray,
        labels: np.ndarray,
        spec: TargetSpec | None = None,
        seed: int = 0,
    ) -> None:
        self.model = model.eval()
        self.inputs = np.asarray(inputs, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.spec = spec or TargetSpec()
        self.targets = resolve_parameter_targets(model, self.spec)
        if not self.targets:
            raise ValueError("target spec selects no parameters")
        self.seed = seed
        self._rng_factory = RngFactory(seed)
        self._x = Tensor(self.inputs)
        self._golden = self._predict()

    def _predict(self) -> np.ndarray:
        with no_grad(), np.errstate(all="ignore"):
            logits = self.model(self._x)
        return logits.data.argmax(axis=1)

    @property
    def space_size(self) -> int:
        """Total number of (element, bit) fault sites."""
        return sum(param.size for _, param in self.targets) * 32

    def _site_list(self, budget: int | None) -> list[tuple[str, int, int]]:
        """(target, element, bit) sites — all of them, or a uniform sample."""
        sites: list[tuple[str, int, int]] = []
        if budget is None or budget >= self.space_size:
            for name, param in self.targets:
                for element in range(param.size):
                    for bit in range(32):
                        sites.append((name, element, bit))
            return sites
        rng = self._rng_factory.stream("site-sample")
        flat = rng.choice(self.space_size, size=budget, replace=False)
        offsets = np.cumsum([0] + [param.size * 32 for _, param in self.targets])
        for position in np.sort(flat):
            index = int(np.searchsorted(offsets, position, side="right") - 1)
            local = int(position - offsets[index])
            sites.append((self.targets[index][0], local // 32, local % 32))
        return sites

    def run(self, budget: int | None = None) -> BitPositionSensitivity:
        """Evaluate each fault site once; aggregate by bit lane.

        ``budget=None`` enumerates the full space (mind the cost: one
        forward pass per site); otherwise a uniform random subset of
        ``budget`` sites is swept.
        """
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        shapes = {name: param.shape for name, param in self.targets}
        sizes = {name: param.size for name, param in self.targets}
        sdc_counts: dict[int, int] = {b: 0 for b in range(32)}
        due_counts: dict[int, int] = {b: 0 for b in range(32)}
        totals: dict[int, int] = {b: 0 for b in range(32)}

        for name, element, bit in self._site_list(budget):
            mask = np.zeros(sizes[name], dtype=np.uint32)
            mask[element] = np.uint32(1) << np.uint32(bit)
            configuration = FaultConfiguration({name: mask.reshape(shapes[name])})
            with apply_configuration(self.model, configuration):
                with no_grad(), np.errstate(all="ignore"):
                    logits = self.model(self._x)
            predictions = logits.data.argmax(axis=1)
            finite = bool(np.isfinite(logits.data).all())
            totals[bit] += 1
            if not finite:
                due_counts[bit] += 1
            elif (predictions != self._golden).any():
                sdc_counts[bit] += 1

        observed = {b for b in range(32) if totals[b] > 0}
        return BitPositionSensitivity(
            sdc_by_bit={b: sdc_counts[b] / totals[b] for b in observed},
            due_by_bit={b: due_counts[b] / totals[b] for b in observed},
            count_by_bit={b: totals[b] for b in observed},
        )
