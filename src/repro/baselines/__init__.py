"""Traditional fault-injection baselines.

The paper positions BDLFI against the established injectors — source-level
(Ares, Reagen et al. DAC'18), instrumentation-level (TensorFI, Li et al.
ISSREW'18), and the accelerator study whose depth-sensitivity conclusion
Fig. 3 challenges (Li et al. SC'17). This package implements their
methodologies on our substrate:

* :class:`~repro.baselines.random_fi.RandomFaultInjector` — N independent
  runs, each injecting one random single-bit flip and classifying the
  outcome as masked / SDC / DUE;
* :class:`~repro.baselines.exhaustive.ExhaustiveBitInjector` — Ares-style
  static sweep over every (element, bit) of selected tensors;
* :mod:`~repro.baselines.compare` — head-to-head statistics: agreement of
  estimates and confidence-interval width per forward pass, reproducing
  the paper's "subsumes traditional FI" argument (experiment E7).
"""

from repro.baselines.random_fi import (
    InjectionOutcome,
    InjectionRecord,
    RandomFaultInjector,
    RandomFICampaign,
)
from repro.baselines.exhaustive import ExhaustiveBitInjector, BitPositionSensitivity
from repro.baselines.compare import EstimatorComparison, compare_estimators, wilson_interval

__all__ = [
    "InjectionOutcome",
    "InjectionRecord",
    "RandomFaultInjector",
    "RandomFICampaign",
    "ExhaustiveBitInjector",
    "BitPositionSensitivity",
    "EstimatorComparison",
    "compare_estimators",
    "wilson_interval",
]
