"""Head-to-head statistics: BDLFI vs traditional injectors (experiment E7).

Two questions, per the paper's claim that BDLFI "can subsume current
source-level and debugger-level FIs":

1. **Agreement** — do the estimators converge to the same quantity under a
   matched fault model? (two-proportion z-test / overlap of intervals)
2. **Efficiency** — how wide is each estimator's interval for a given
   number of forward passes? (the resource that dominates campaign cost)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as sps

__all__ = ["wilson_interval", "EstimatorComparison", "compare_estimators"]


def wilson_interval(hits: int, trials: int, confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The standard choice for FI campaign reporting: behaves sensibly at 0
    and 1 (unlike the Wald interval).
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= hits <= trials:
        raise ValueError(f"hits must be in [0, {trials}], got {hits}")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    z = float(sps.norm.ppf(0.5 + confidence / 2))
    phat = hits / trials
    denom = 1 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    half = z * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials)) / denom
    lo = 0.0 if hits == 0 else max(0.0, center - half)  # exact endpoints at the
    hi = 1.0 if hits == trials else min(1.0, center + half)  # boundary counts
    return lo, hi


@dataclass(frozen=True)
class EstimatorComparison:
    """Result of comparing two error/SDC-rate estimators."""

    name_a: str
    name_b: str
    estimate_a: float
    estimate_b: float
    interval_a: tuple[float, float]
    interval_b: tuple[float, float]
    evaluations_a: int
    evaluations_b: int
    z_statistic: float
    p_value: float

    @property
    def agree(self) -> bool:
        """No significant difference at the 5 % level."""
        return bool(self.p_value > 0.05)

    @property
    def interval_width_a(self) -> float:
        return self.interval_a[1] - self.interval_a[0]

    @property
    def interval_width_b(self) -> float:
        return self.interval_b[1] - self.interval_b[0]

    def efficiency_ratio(self) -> float:
        """Forward passes per unit of squared precision, B relative to A.

        Interval width scales ∝ 1/√n, so (width²·n) is a scale-free cost;
        values > 1 mean estimator A is more efficient.
        """
        cost_a = self.interval_width_a**2 * self.evaluations_a
        cost_b = self.interval_width_b**2 * self.evaluations_b
        if cost_a == 0:
            return float("inf")
        return cost_b / cost_a

    def summary(self) -> dict[str, float | str | bool]:
        return {
            "estimator_a": self.name_a,
            "estimator_b": self.name_b,
            "estimate_a": self.estimate_a,
            "estimate_b": self.estimate_b,
            "ci_width_a": self.interval_width_a,
            "ci_width_b": self.interval_width_b,
            "evals_a": self.evaluations_a,
            "evals_b": self.evaluations_b,
            "p_value": self.p_value,
            "agree": self.agree,
            "efficiency_a_over_b": self.efficiency_ratio(),
        }


def compare_estimators(
    name_a: str,
    hits_a: int,
    trials_a: int,
    name_b: str,
    hits_b: int,
    trials_b: int,
    confidence: float = 0.95,
) -> EstimatorComparison:
    """Two-proportion z-test plus Wilson intervals for two campaigns."""
    if trials_a <= 0 or trials_b <= 0:
        raise ValueError("both campaigns need at least one trial")
    p_a = hits_a / trials_a
    p_b = hits_b / trials_b
    pooled = (hits_a + hits_b) / (trials_a + trials_b)
    variance = pooled * (1 - pooled) * (1 / trials_a + 1 / trials_b)
    if variance == 0:
        z = 0.0
        p_value = 1.0
    else:
        z = (p_a - p_b) / math.sqrt(variance)
        p_value = float(2 * sps.norm.sf(abs(z)))
    return EstimatorComparison(
        name_a=name_a,
        name_b=name_b,
        estimate_a=p_a,
        estimate_b=p_b,
        interval_a=wilson_interval(hits_a, trials_a, confidence),
        interval_b=wilson_interval(hits_b, trials_b, confidence),
        evaluations_a=trials_a,
        evaluations_b=trials_b,
        z_statistic=float(z),
        p_value=p_value,
    )
