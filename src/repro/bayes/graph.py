"""Directed graphical models (Bayesian networks).

A network is a DAG of nodes, each either

* a :class:`RandomVariable` — its distribution may depend on parent values
  (supply a callable ``parents → Distribution``), or
* a :class:`Deterministic` — a pure function of parent values (the XOR
  fault transform and the neural forward pass are deterministic nodes).

Supports ancestral sampling into a :class:`Trace` and evaluating the joint
log-density of a trace. :mod:`repro.core.bayesian_network` builds the
paper's per-neuron failure model (Fig. 1 ②) out of these pieces.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.bayes.distributions import Distribution

__all__ = ["RandomVariable", "Deterministic", "BayesianNetwork", "Trace"]


class Trace(dict):
    """A realisation of every node in a network: name → value."""

    def __repr__(self) -> str:
        return f"Trace({list(self.keys())})"


class _Node:
    def __init__(self, name: str, parents: tuple[str, ...]) -> None:
        if not name:
            raise ValueError("node name must be non-empty")
        self.name = name
        self.parents = tuple(parents)


class RandomVariable(_Node):
    """A stochastic node.

    ``distribution`` is either a :class:`Distribution` (no parent
    dependence) or a callable mapping the dict of parent values to one.
    """

    def __init__(
        self,
        name: str,
        distribution: Distribution | Callable[[Mapping[str, object]], Distribution],
        parents: tuple[str, ...] = (),
    ) -> None:
        super().__init__(name, parents)
        self._distribution = distribution

    def resolve(self, parent_values: Mapping[str, object]) -> Distribution:
        if isinstance(self._distribution, Distribution):
            return self._distribution
        return self._distribution(parent_values)


class Deterministic(_Node):
    """A node computed as a pure function of its parents."""

    def __init__(
        self,
        name: str,
        fn: Callable[[Mapping[str, object]], object],
        parents: tuple[str, ...],
    ) -> None:
        super().__init__(name, parents)
        self.fn = fn


class BayesianNetwork:
    """A DAG of random and deterministic nodes with ancestral sampling."""

    def __init__(self) -> None:
        self._nodes: dict[str, _Node] = {}
        self._order: list[str] | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add(self, node: _Node) -> "BayesianNetwork":
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        for parent in node.parents:
            if parent not in self._nodes:
                raise ValueError(f"node {node.name!r} references unknown parent {parent!r}")
        self._nodes[node.name] = node
        self._order = None
        return self

    def random_variable(self, name: str, distribution, parents: tuple[str, ...] = ()) -> "BayesianNetwork":
        return self.add(RandomVariable(name, distribution, parents))

    def deterministic(self, name: str, fn, parents: tuple[str, ...]) -> "BayesianNetwork":
        return self.add(Deterministic(name, fn, parents))

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> _Node:
        return self._nodes[name]

    def topological_order(self) -> list[str]:
        """Node names in dependency order (parents precede children).

        Insertion already guarantees acyclicity (parents must pre-exist),
        so insertion order *is* a topological order; kept as a method for
        interface clarity and future node mutation support.
        """
        if self._order is None:
            self._order = list(self._nodes)
        return self._order

    def random_variables(self) -> list[str]:
        return [n for n, node in self._nodes.items() if isinstance(node, RandomVariable)]

    # ------------------------------------------------------------------ #
    # inference primitives
    # ------------------------------------------------------------------ #

    def sample(self, rng: np.random.Generator, given: Mapping[str, object] | None = None) -> Trace:
        """Ancestral sample: draw every node top-down, honouring ``given`` clamps."""
        trace = Trace(given or {})
        for name in self.topological_order():
            if name in trace:
                continue
            node = self._nodes[name]
            parent_values = {p: trace[p] for p in node.parents}
            if isinstance(node, RandomVariable):
                trace[name] = node.resolve(parent_values).sample(rng)
            else:
                trace[name] = node.fn(parent_values)
        return trace

    def log_prob(self, trace: Mapping[str, object]) -> float:
        """Joint log-density of the stochastic nodes in ``trace``.

        Deterministic nodes contribute no density but must be present (or
        recomputable) so child distributions can condition on them.
        """
        values = dict(trace)
        total = 0.0
        for name in self.topological_order():
            node = self._nodes[name]
            parent_values = {p: values[p] for p in node.parents}
            if isinstance(node, Deterministic):
                if name not in values:
                    values[name] = node.fn(parent_values)
                continue
            if name not in values:
                raise KeyError(f"trace missing value for random variable {name!r}")
            total += float(np.sum(node.resolve(parent_values).log_prob(values[name])))
        return total
