"""Probabilistic-programming layer: distributions and Bayesian networks.

The paper encodes its fault model "in a Bayesian Network ... for each neuron
in the NN" (Fig. 1 ②): Bernoulli variables b₁..b₃₂ per stored float, a
deterministic XOR transform to the faulted weights, the deterministic
forward computation, and the output distribution. This package provides the
formalism — distribution objects with ``sample``/``log_prob`` and a directed
graphical model with ancestral sampling and joint densities — that
:mod:`repro.core.bayesian_network` instantiates for a concrete trained
network, and that the :mod:`repro.mcmc` kernels target.
"""

from repro.bayes.distributions import (
    Distribution,
    Bernoulli,
    Binomial,
    Categorical,
    Normal,
    Beta,
    PoissonBinomial,
)
from repro.bayes.graph import BayesianNetwork, RandomVariable, Deterministic, Trace

__all__ = [
    "Distribution",
    "Bernoulli",
    "Binomial",
    "Categorical",
    "Normal",
    "Beta",
    "PoissonBinomial",
    "BayesianNetwork",
    "RandomVariable",
    "Deterministic",
    "Trace",
]
