"""Probability distributions with sampling and log-density.

Small, numpy-native, and sufficient for the paper's failure model:
Bernoulli lattices over bits, Binomial/Poisson-Binomial flip counts (the
backbone of the stratified accelerator), Categorical outputs, and
Normal/Beta for posterior summaries and conjugate error-rate estimation.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import betaln, gammaln

__all__ = [
    "Distribution",
    "Bernoulli",
    "Binomial",
    "Categorical",
    "Normal",
    "Beta",
    "PoissonBinomial",
]


class Distribution:
    """Interface: ``sample(rng, size)`` and ``log_prob(value)``."""

    def sample(self, rng: np.random.Generator, size: int | tuple[int, ...] | None = None):
        raise NotImplementedError

    def log_prob(self, value) -> np.ndarray:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        raise NotImplementedError

    @property
    def variance(self) -> float:
        raise NotImplementedError


class Bernoulli(Distribution):
    """Coin flip with success probability ``p`` — one bit of the AVF model."""

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = float(p)

    def sample(self, rng, size=None):
        draw = np.asarray(rng.random(size) < self.p).astype(np.int64)
        return draw if size is not None else int(draw)

    def log_prob(self, value):
        value = np.asarray(value)
        if np.any((value != 0) & (value != 1)):
            raise ValueError("Bernoulli support is {0, 1}")
        with np.errstate(divide="ignore"):
            return np.where(value == 1, np.log(self.p), np.log1p(-self.p))

    @property
    def mean(self) -> float:
        return self.p

    @property
    def variance(self) -> float:
        return self.p * (1.0 - self.p)


class Binomial(Distribution):
    """Number of successes in ``n`` Bernoulli(p) trials — the flip count K."""

    def __init__(self, n: int, p: float) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.n = int(n)
        self.p = float(p)

    def sample(self, rng, size=None):
        return rng.binomial(self.n, self.p, size=size)

    def log_prob(self, value):
        k = np.asarray(value)
        if np.any((k < 0) | (k > self.n)):
            raise ValueError(f"Binomial support is [0, {self.n}]")
        log_comb = gammaln(self.n + 1) - gammaln(k + 1) - gammaln(self.n - k + 1)
        with np.errstate(divide="ignore", invalid="ignore"):
            term = np.where(k > 0, k * np.log(self.p) if self.p > 0 else -np.inf, 0.0)
            term = term + np.where(
                self.n - k > 0, (self.n - k) * np.log1p(-self.p) if self.p < 1 else -np.inf, 0.0
            )
        return log_comb + term

    def pmf(self, k: np.ndarray) -> np.ndarray:
        """Exact probability mass at ``k`` (used for stratum weighting)."""
        return np.exp(self.log_prob(k))

    @property
    def mean(self) -> float:
        return self.n * self.p

    @property
    def variance(self) -> float:
        return self.n * self.p * (1.0 - self.p)


class Categorical(Distribution):
    """Distribution over ``len(probs)`` categories — the softmax output node."""

    def __init__(self, probs: np.ndarray) -> None:
        probs = np.asarray(probs, dtype=np.float64)
        if probs.ndim != 1 or probs.size == 0:
            raise ValueError("probs must be a non-empty 1-D array")
        if np.any(probs < 0):
            raise ValueError("probabilities must be non-negative")
        total = probs.sum()
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"probabilities must sum to 1, got {total}")
        self.probs = probs / total

    def sample(self, rng, size=None):
        return rng.choice(len(self.probs), size=size, p=self.probs)

    def log_prob(self, value):
        value = np.asarray(value, dtype=np.int64)
        if np.any((value < 0) | (value >= len(self.probs))):
            raise ValueError("category out of range")
        with np.errstate(divide="ignore"):
            return np.log(self.probs[value])

    @property
    def mean(self) -> float:
        return float(np.arange(len(self.probs)) @ self.probs)

    @property
    def variance(self) -> float:
        idx = np.arange(len(self.probs))
        m = self.mean
        return float(((idx - m) ** 2) @ self.probs)


class Normal(Distribution):
    """Gaussian — posterior summaries and Geweke asymptotics."""

    def __init__(self, loc: float, scale: float) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.loc = float(loc)
        self.scale = float(scale)

    def sample(self, rng, size=None):
        return rng.normal(self.loc, self.scale, size=size)

    def log_prob(self, value):
        value = np.asarray(value, dtype=np.float64)
        z = (value - self.loc) / self.scale
        return -0.5 * z * z - math.log(self.scale) - 0.5 * math.log(2 * math.pi)

    @property
    def mean(self) -> float:
        return self.loc

    @property
    def variance(self) -> float:
        return self.scale**2


class Beta(Distribution):
    """Beta distribution — the conjugate posterior over an SDC/error rate.

    A campaign observing ``k`` misclassifications in ``n`` faulted runs with
    a Beta(a₀, b₀) prior has posterior Beta(a₀+k, b₀+n−k); campaigns use it
    to report credible intervals over error probabilities.
    """

    def __init__(self, a: float, b: float) -> None:
        if a <= 0 or b <= 0:
            raise ValueError(f"shape parameters must be positive, got a={a}, b={b}")
        self.a = float(a)
        self.b = float(b)

    def sample(self, rng, size=None):
        return rng.beta(self.a, self.b, size=size)

    def log_prob(self, value):
        value = np.asarray(value, dtype=np.float64)
        if np.any((value < 0) | (value > 1)):
            raise ValueError("Beta support is [0, 1]")
        with np.errstate(divide="ignore"):
            return (
                (self.a - 1) * np.log(value)
                + (self.b - 1) * np.log1p(-value)
                - betaln(self.a, self.b)
            )

    def interval(self, mass: float = 0.95) -> tuple[float, float]:
        """Central credible interval containing ``mass`` probability.

        Delegates to :func:`repro.bayes.intervals.beta_central_interval`,
        so near-degenerate posteriors (k=0 / k=n conjugate updates) always
        yield a finite, clamped sub-interval of ``[0, 1]``.
        """
        from repro.bayes.intervals import beta_central_interval

        return beta_central_interval(self.a, self.b, mass)

    def posterior(self, successes: int, failures: int) -> "Beta":
        """Conjugate update with observed counts."""
        if successes < 0 or failures < 0:
            raise ValueError("counts must be non-negative")
        return Beta(self.a + successes, self.b + failures)

    @property
    def mean(self) -> float:
        return self.a / (self.a + self.b)

    @property
    def variance(self) -> float:
        total = self.a + self.b
        return self.a * self.b / (total**2 * (total + 1))


class PoissonBinomial(Distribution):
    """Sum of independent Bernoulli(pᵢ) with heterogeneous pᵢ.

    Models the flip count when bit lanes have *different* AVFs (e.g.
    ECC-protected exponent bits). PMF computed exactly by iterative
    convolution — fine for the few-thousand-bit scales we stratify over.
    """

    def __init__(self, probs: np.ndarray) -> None:
        probs = np.asarray(probs, dtype=np.float64)
        if probs.ndim != 1:
            raise ValueError("probs must be 1-D")
        if np.any((probs < 0) | (probs > 1)):
            raise ValueError("probabilities must be in [0, 1]")
        self.probs = probs
        self._pmf_cache: np.ndarray | None = None

    def _pmf(self) -> np.ndarray:
        if self._pmf_cache is None:
            pmf = np.array([1.0])
            for p in self.probs:
                pmf = np.convolve(pmf, [1.0 - p, p])
            self._pmf_cache = pmf
        return self._pmf_cache

    def sample(self, rng, size=None):
        if size is None:
            return int((rng.random(len(self.probs)) < self.probs).sum())
        size_tuple = (size,) if isinstance(size, int) else tuple(size)
        draws = rng.random(size_tuple + (len(self.probs),)) < self.probs
        return draws.sum(axis=-1)

    def log_prob(self, value):
        pmf = self._pmf()
        value = np.asarray(value, dtype=np.int64)
        if np.any((value < 0) | (value >= len(pmf))):
            raise ValueError("value out of Poisson-Binomial support")
        with np.errstate(divide="ignore"):
            return np.log(pmf[value])

    @property
    def mean(self) -> float:
        return float(self.probs.sum())

    @property
    def variance(self) -> float:
        return float((self.probs * (1 - self.probs)).sum())
