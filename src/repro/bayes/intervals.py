"""One shared convention for central intervals — Bayesian and frequentist.

Several parts of the library summarise an estimate with a *central*
interval: :meth:`repro.bayes.distributions.Beta.interval` (credible
interval on a rate), :func:`repro.analysis.stats.bootstrap_ci`
(percentile bootstrap), and
:meth:`repro.core.posterior.ErrorPosterior.credible_interval` (sample
quantiles). They all mean the same thing — put ``(1 - mass) / 2``
probability in each tail — but each used to spell the tail arithmetic
out locally, which is exactly how conventions drift apart. This module
is the single definition they now share.

:func:`beta_central_interval` additionally hardens the Beta case for the
degenerate posteriors a campaign legitimately produces: a stratum with
``k = 0`` degraded outcomes of ``n`` (or ``k = n``) has a posterior
piled against an endpoint, where ``scipy``'s ``beta.ppf`` can underflow
to denormals or — for pathological shape parameters — return ``NaN``.
Estimates must stay plottable and comparable, so the interval is always
clamped into ``[0, 1]`` with non-finite endpoints collapsed to the
matching support bound (``lo → 0``, ``hi → 1``), never ``NaN``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["central_tails", "clamp_unit_interval", "beta_central_interval"]


def central_tails(mass: float) -> tuple[float, float]:
    """The (lower, upper) quantile levels of a central interval.

    A central interval containing ``mass`` probability leaves
    ``(1 - mass) / 2`` in each tail; this returns the two quantile levels
    to evaluate — ``(tail, 1 - tail)``. Every central-interval summary in
    the library derives its quantiles from here.
    """
    if not 0 < mass < 1:
        raise ValueError(f"mass must be in (0, 1), got {mass}")
    tail = (1.0 - mass) / 2.0
    return tail, 1.0 - tail


def clamp_unit_interval(lo: float, hi: float) -> tuple[float, float]:
    """Force an interval over a rate into a valid ``[0, 1]`` sub-interval.

    Non-finite endpoints collapse to the matching support bound (a ``NaN``
    or ``-inf`` lower endpoint becomes ``0``, a ``NaN`` or ``+inf`` upper
    endpoint becomes ``1``), endpoints are clipped into ``[0, 1]``, and
    ordering is restored — the result is always a valid, possibly
    degenerate, interval.
    """
    lo = 0.0 if not np.isfinite(lo) else min(max(float(lo), 0.0), 1.0)
    hi = 1.0 if not np.isfinite(hi) else min(max(float(hi), 0.0), 1.0)
    if lo > hi:
        lo, hi = hi, lo
    return lo, hi


def beta_central_interval(a, b, mass: float = 0.95):
    """Clamped central credible interval(s) of Beta(``a``, ``b``).

    Vectorised: scalar shapes give a ``(lo, hi)`` float pair, array
    shapes give a pair of arrays. Endpoints are guaranteed finite and in
    ``[0, 1]`` even for near-degenerate posteriors (``k = 0`` / ``k = n``
    conjugate updates), where the raw ``ppf`` may underflow or go
    non-finite; see :func:`clamp_unit_interval` for the repair rule.
    """
    from scipy import stats as sps

    lo_q, hi_q = central_tails(mass)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    with np.errstate(all="ignore"):
        lo = sps.beta.ppf(lo_q, a, b)
        hi = sps.beta.ppf(hi_q, a, b)
    if np.ndim(lo) == 0:
        return clamp_unit_interval(float(lo), float(hi))
    lo = np.where(np.isfinite(lo), np.clip(lo, 0.0, 1.0), 0.0)
    hi = np.where(np.isfinite(hi), np.clip(hi, 0.0, 1.0), 1.0)
    swapped = lo > hi
    if np.any(swapped):
        lo[swapped], hi[swapped] = hi[swapped], lo[swapped]
    return lo, hi
