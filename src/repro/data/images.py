"""Procedural class-conditional image dataset — the CIFAR-10 stand-in.

The paper trains its MLP and ResNet-18 on CIFAR-10; the offline environment
has no dataset access, so this module synthesises a structured 10-class
image distribution with the properties the experiments rely on:

* a *learnable but non-trivial* classification problem — golden-run error is
  tunable via ``noise`` and ``class_separation`` so we can place it in the
  same regime as the paper's figures (MLP golden ≈ 5 %, ResNet golden at a
  higher baseline on its harder configuration);
* spatial structure (smooth class-specific textures) so convolutions and
  pooling do real work;
* float32 pixels with realistic magnitude spread, so bit flips in the data
  path behave as they would on normalised CIFAR images.

Generation: each class owns ``basis_rank`` smooth random fields (low-res
Gaussian noise bilinearly upsampled). A sample is a random positive
combination of its class basis plus white noise and a random brightness
shift, then channel-standardised.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.data.datasets import ArrayDataset
from repro.utils.rng import as_generator

__all__ = ["SyntheticImageConfig", "make_synthetic_images", "class_basis"]


@dataclass(frozen=True)
class SyntheticImageConfig:
    """Parameters of the procedural image distribution.

    Attributes
    ----------
    num_classes: class count (10 to mirror CIFAR-10).
    image_size: square image edge in pixels.
    channels: image channels (3 to mirror CIFAR-10).
    basis_rank: smooth basis fields per class; higher = more intra-class variety.
    noise: white-noise std added per pixel; the main difficulty knob.
    class_separation: scale of class basis relative to noise; lower = harder.
    seed: generation seed; the dataset is a pure function of this config.
    """

    num_classes: int = 10
    image_size: int = 32
    channels: int = 3
    basis_rank: int = 3
    noise: float = 0.6
    class_separation: float = 1.0
    seed: int = 2019

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError(f"need at least 2 classes, got {self.num_classes}")
        if self.image_size < 4:
            raise ValueError(f"image_size must be >= 4, got {self.image_size}")
        if self.channels < 1:
            raise ValueError(f"channels must be >= 1, got {self.channels}")
        if self.basis_rank < 1:
            raise ValueError(f"basis_rank must be >= 1, got {self.basis_rank}")
        if self.noise < 0:
            raise ValueError(f"noise must be non-negative, got {self.noise}")


def class_basis(config: SyntheticImageConfig) -> np.ndarray:
    """Smooth per-class basis fields, shape (classes, rank, C, H, W).

    Deterministic in ``config.seed``: train and test splits share the same
    class structure.
    """
    gen = as_generator(config.seed)
    low = max(config.image_size // 4, 2)
    basis = np.empty(
        (config.num_classes, config.basis_rank, config.channels, config.image_size, config.image_size),
        dtype=np.float32,
    )
    zoom = config.image_size / low
    for cls in range(config.num_classes):
        for rank in range(config.basis_rank):
            for channel in range(config.channels):
                field = gen.normal(0.0, 1.0, size=(low, low))
                smooth = ndimage.zoom(field, zoom, order=1)[: config.image_size, : config.image_size]
                basis[cls, rank, channel] = smooth
    # Normalise each basis field to unit RMS so class_separation is meaningful.
    rms = np.sqrt((basis**2).mean(axis=(2, 3, 4), keepdims=True))
    return basis / np.maximum(rms, 1e-8)


def make_synthetic_images(
    config: SyntheticImageConfig,
    train_size: int,
    test_size: int,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Generate (train, test) datasets of NCHW float32 images.

    Train and test are drawn i.i.d. from the same class-conditional
    distribution with independent sampling streams.
    """
    if train_size <= 0 or test_size <= 0:
        raise ValueError("train_size and test_size must be positive")
    basis = class_basis(config)
    train = _sample_split(config, basis, train_size, stream="train")
    test = _sample_split(config, basis, test_size, stream="test")
    return train, test


def _sample_split(
    config: SyntheticImageConfig,
    basis: np.ndarray,
    n: int,
    stream: str,
) -> ArrayDataset:
    stream_key = {"train": 1, "test": 2}[stream]
    gen = np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy=config.seed, spawn_key=(stream_key,))))
    labels = gen.integers(0, config.num_classes, size=n).astype(np.int64)
    # Positive random mixing coefficients over the class basis.
    coeffs = gen.gamma(2.0, 0.5, size=(n, config.basis_rank)).astype(np.float32)
    coeffs *= config.class_separation
    images = np.einsum("nr,nrchw->nchw", coeffs, basis[labels], optimize=True)
    images += gen.normal(0.0, config.noise, size=images.shape).astype(np.float32)
    # Random per-image brightness shift (a nuisance factor).
    images += gen.normal(0.0, 0.1, size=(n, 1, 1, 1)).astype(np.float32)
    # Channel-standardise with the split's own statistics (as CIFAR pipelines do).
    mean = images.mean(axis=(0, 2, 3), keepdims=True)
    std = images.std(axis=(0, 2, 3), keepdims=True)
    images = (images - mean) / np.maximum(std, 1e-6)
    return ArrayDataset(images.astype(np.float32), labels)
