"""2-D synthetic classification distributions.

These drive the decision-boundary experiment (paper Fig. 1 ③): the MLP in
Fig. 1 takes a low-dimensional input and the figure plots log error
probability over the input plane. Two-moons is the canonical choice for a
curved boundary; blobs, spirals, and XOR provide boundary geometries of
increasing complexity for extension studies.

All generators return ``(features, labels)`` with features float32 of shape
``(n, 2)`` and integer labels.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["two_moons", "gaussian_blobs", "spirals", "xor_clusters"]


def two_moons(
    n: int,
    noise: float = 0.1,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaving half-circles; binary labels."""
    if n < 2:
        raise ValueError(f"need at least 2 samples, got {n}")
    gen = as_generator(rng)
    n0 = n // 2
    n1 = n - n0
    theta0 = gen.uniform(0.0, np.pi, n0)
    theta1 = gen.uniform(0.0, np.pi, n1)
    upper = np.stack([np.cos(theta0), np.sin(theta0)], axis=1)
    lower = np.stack([1.0 - np.cos(theta1), 0.5 - np.sin(theta1)], axis=1)
    features = np.concatenate([upper, lower], axis=0)
    features += gen.normal(0.0, noise, size=features.shape)
    labels = np.concatenate([np.zeros(n0, dtype=np.int64), np.ones(n1, dtype=np.int64)])
    order = gen.permutation(n)
    return features[order].astype(np.float32), labels[order]


def gaussian_blobs(
    n: int,
    centers: np.ndarray | None = None,
    scale: float = 0.5,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Isotropic Gaussian clusters, one per class.

    Default centers place 3 classes at the vertices of a triangle.
    """
    gen = as_generator(rng)
    if centers is None:
        centers = np.array([[0.0, 0.0], [2.0, 0.0], [1.0, 1.8]])
    centers = np.asarray(centers, dtype=np.float64)
    k = len(centers)
    labels = gen.integers(0, k, size=n)
    features = centers[labels] + gen.normal(0.0, scale, size=(n, 2))
    return features.astype(np.float32), labels.astype(np.int64)


def spirals(
    n: int,
    turns: float = 1.5,
    noise: float = 0.05,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaved Archimedean spirals; binary labels."""
    gen = as_generator(rng)
    n0 = n // 2
    n1 = n - n0
    parts = []
    labels = []
    for cls, count in ((0, n0), (1, n1)):
        t = gen.uniform(0.25, 1.0, count) * turns * 2 * np.pi
        radius = t / (turns * 2 * np.pi)
        angle = t + cls * np.pi
        xy = np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1)
        xy += gen.normal(0.0, noise, size=xy.shape)
        parts.append(xy)
        labels.append(np.full(count, cls, dtype=np.int64))
    features = np.concatenate(parts, axis=0)
    labels_arr = np.concatenate(labels)
    order = gen.permutation(n)
    return features[order].astype(np.float32), labels_arr[order]


def xor_clusters(
    n: int,
    scale: float = 0.35,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Four Gaussian clusters in XOR arrangement; binary labels."""
    gen = as_generator(rng)
    corners = np.array([[1.0, 1.0], [-1.0, -1.0], [1.0, -1.0], [-1.0, 1.0]])
    corner_labels = np.array([0, 0, 1, 1], dtype=np.int64)
    which = gen.integers(0, 4, size=n)
    features = corners[which] + gen.normal(0.0, scale, size=(n, 2))
    return features.astype(np.float32), corner_labels[which]
