"""Procedural seven-segment digit images.

A second image distribution besides the Gaussian-texture CIFAR stand-in:
digits 0–9 rendered as seven-segment glyphs with random position/thickness
jitter and pixel noise. Unlike the texture dataset, the classes are
human-interpretable, which makes fault-injection failure cases legible
("the faulted network reads 8 as 0") — handy for demos and the LeNet
experiments.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.utils.rng import as_generator

__all__ = ["render_digit", "make_digit_dataset", "SEGMENTS"]

#: segment activation per digit: (top, top-left, top-right, middle,
#: bottom-left, bottom-right, bottom)
SEGMENTS: dict[int, tuple[int, ...]] = {
    0: (1, 1, 1, 0, 1, 1, 1),
    1: (0, 0, 1, 0, 0, 1, 0),
    2: (1, 0, 1, 1, 1, 0, 1),
    3: (1, 0, 1, 1, 0, 1, 1),
    4: (0, 1, 1, 1, 0, 1, 0),
    5: (1, 1, 0, 1, 0, 1, 1),
    6: (1, 1, 0, 1, 1, 1, 1),
    7: (1, 0, 1, 0, 0, 1, 0),
    8: (1, 1, 1, 1, 1, 1, 1),
    9: (1, 1, 1, 1, 0, 1, 1),
}


def render_digit(
    digit: int,
    size: int = 16,
    thickness: int = 2,
    offset: tuple[int, int] = (0, 0),
) -> np.ndarray:
    """Render one glyph as a (size, size) float32 image in [0, 1].

    The glyph occupies roughly the central 60 % of the canvas; ``offset``
    shifts it (clipped at the borders) for position jitter.
    """
    if digit not in SEGMENTS:
        raise ValueError(f"digit must be 0-9, got {digit}")
    if size < 8:
        raise ValueError(f"size must be >= 8, got {size}")
    if thickness < 1:
        raise ValueError(f"thickness must be >= 1, got {thickness}")
    canvas = np.zeros((size, size), dtype=np.float32)
    top = size // 5 + offset[0]
    bottom = size - size // 5 + offset[0]
    middle = (top + bottom) // 2
    left = size // 4 + offset[1]
    right = size - size // 4 + offset[1]

    def clamp(v: int) -> int:
        return int(np.clip(v, 0, size - 1))

    def horizontal(row: int) -> None:
        r0, r1 = clamp(row), clamp(row + thickness)
        canvas[r0 : r1 or r0 + 1, clamp(left) : clamp(right) + 1] = 1.0

    def vertical(row0: int, row1: int, col: int) -> None:
        c0, c1 = clamp(col), clamp(col + thickness)
        canvas[clamp(row0) : clamp(row1) + 1, c0 : c1 or c0 + 1] = 1.0

    on = SEGMENTS[digit]
    if on[0]:
        horizontal(top)
    if on[1]:
        vertical(top, middle, left)
    if on[2]:
        vertical(top, middle, right - thickness + 1)
    if on[3]:
        horizontal(middle)
    if on[4]:
        vertical(middle, bottom, left)
    if on[5]:
        vertical(middle, bottom, right - thickness + 1)
    if on[6]:
        horizontal(bottom - thickness + 1)
    return canvas


def make_digit_dataset(
    n: int,
    size: int = 16,
    noise: float = 0.25,
    jitter: int = 1,
    rng: int | np.random.Generator | None = 0,
) -> ArrayDataset:
    """``n`` jittered, noisy seven-segment digits as a 1-channel dataset.

    Features have shape ``(n, 1, size, size)``; labels are the digits.
    ``noise`` is the white-noise std; ``jitter`` the max |position offset|
    in pixels. Standardised to zero mean / unit std overall.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if noise < 0 or jitter < 0:
        raise ValueError("noise and jitter must be non-negative")
    gen = as_generator(rng)
    labels = gen.integers(0, 10, size=n).astype(np.int64)
    images = np.empty((n, 1, size, size), dtype=np.float32)
    for i, digit in enumerate(labels):
        offset = (int(gen.integers(-jitter, jitter + 1)), int(gen.integers(-jitter, jitter + 1)))
        thickness = int(gen.integers(1, 3))
        glyph = render_digit(int(digit), size=size, thickness=thickness, offset=offset)
        images[i, 0] = glyph + gen.normal(0.0, noise, size=glyph.shape)
    mean = images.mean()
    std = images.std() or 1.0
    return ArrayDataset((images - mean) / std, labels)
