"""Dataset abstractions."""

from __future__ import annotations

import numpy as np

__all__ = ["Dataset", "ArrayDataset"]


class Dataset:
    """Minimal dataset protocol: ``__len__`` and ``__getitem__`` → (x, y)."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """In-memory dataset over aligned feature and label arrays.

    Features are stored float32; labels int64. Supports vectorised slicing
    via :meth:`arrays`, which the loader uses to avoid per-sample overhead.
    """

    def __init__(self, features: np.ndarray, labels: np.ndarray) -> None:
        features = np.asarray(features, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64)
        if len(features) != len(labels):
            raise ValueError(f"features ({len(features)}) and labels ({len(labels)}) misaligned")
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
        self.features = features
        self.labels = labels

    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.features[index], int(self.labels[index])

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the underlying (features, labels) arrays."""
        return self.features, self.labels

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return ArrayDataset(self.features[indices], self.labels[indices])

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0
