"""Deterministic dataset splitting."""

from __future__ import annotations

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.utils.rng import as_generator

__all__ = ["train_test_split"]


def train_test_split(
    dataset: ArrayDataset,
    test_fraction: float = 0.2,
    rng: int | np.random.Generator | None = None,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Shuffle and split a dataset into (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    n = len(dataset)
    if n < 2:
        raise ValueError("dataset too small to split")
    gen = as_generator(rng)
    order = gen.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx = order[:n_test]
    train_idx = order[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)
