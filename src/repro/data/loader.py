"""Batched iteration over datasets."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.datasets import ArrayDataset
from repro.utils.rng import as_generator

__all__ = ["DataLoader"]


class DataLoader:
    """Yield ``(features, labels)`` numpy batches from an :class:`ArrayDataset`.

    Shuffling uses the provided generator, re-drawn each epoch, so two loaders
    constructed with equal seeds produce identical batch orders.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = as_generator(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        features, labels = self.dataset.arrays()
        n = len(labels)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            if len(idx) == 0:
                break
            yield features[idx], labels[idx]
