"""Datasets and loaders.

The paper trains on CIFAR-10 and visualises a 2-D MLP's decision boundary.
With no network access, this package provides:

* :mod:`~repro.data.synthetic` — 2-D toy distributions (two-moons, blobs,
  spirals, XOR) for the decision-boundary study (Fig. 1 ③);
* :mod:`~repro.data.images` — a procedural, class-conditional image dataset
  standing in for CIFAR-10 (10 classes, 3×32×32 float32) with a difficulty
  knob so golden-run error can be matched to the paper's regimes;
* :class:`~repro.data.datasets.ArrayDataset` and
  :class:`~repro.data.loader.DataLoader` for batched iteration.
"""

from repro.data.datasets import Dataset, ArrayDataset
from repro.data.loader import DataLoader
from repro.data.synthetic import two_moons, gaussian_blobs, spirals, xor_clusters
from repro.data.images import SyntheticImageConfig, make_synthetic_images
from repro.data.digits import make_digit_dataset, render_digit
from repro.data.splits import train_test_split

__all__ = [
    "Dataset",
    "ArrayDataset",
    "DataLoader",
    "two_moons",
    "gaussian_blobs",
    "spirals",
    "xor_clusters",
    "SyntheticImageConfig",
    "make_synthetic_images",
    "make_digit_dataset",
    "render_digit",
    "train_test_split",
]
