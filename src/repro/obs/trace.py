"""Trace spans in Chrome-trace format, viewable in Perfetto.

A :class:`Tracer` records *complete* events (``ph: "X"``) — named spans
with microsecond start/duration from the monotonic clock, tagged with the
recording process id and thread id — plus *instant* events for point
occurrences. The export format is the Chrome Trace Event JSON object
(``{"traceEvents": [...]}``), which loads directly in
https://ui.perfetto.dev or ``chrome://tracing``.

Spans nest naturally through the context-manager API::

    with tracer.span("executor.execute", tasks=13):
        with tracer.span("campaign.forward", p=1e-3):
            ...

Worker processes record into their own tracer (fresh per process, so the
pid tag is honest) and ship the drained event list back over the result
pipe; the driver merges them, so one trace file shows the driver timeline
and every worker's campaign spans side by side as separate process
tracks.

The default tracer is *disabled*: ``span`` is a no-op yield and nothing
allocates, so instrumentation sites cost almost nothing until a trace is
requested (CLI ``--trace PATH`` or :func:`repro.obs.configure`).
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager

from repro.obs.profile import clock_s
from repro.utils.persist import atomic_write_bytes, sanitize_nonfinite

__all__ = ["Tracer"]


def _now_us() -> float:
    """Monotonic timestamp in microseconds (Chrome-trace time unit).

    Rides the library's canonical duration clock
    (:func:`repro.obs.profile.clock_s`, i.e. ``perf_counter``) —
    CLOCK_MONOTONIC-based on Linux, so timestamps are comparable across
    fork-started worker processes on the same host.
    """
    return clock_s() * 1e6


class Tracer:
    """Span recorder emitting Chrome-trace ``traceEvents``."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[dict] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    @contextmanager
    def span(self, name: str, category: str = "repro", **args):
        """Record a complete event around the enclosed block.

        ``args`` become the span's ``args`` payload (shown on click in
        Perfetto); keep them small and JSON-representable.
        """
        if not self.enabled:
            yield
            return
        start = _now_us()
        try:
            yield
        finally:
            end = _now_us()
            self._append(
                {
                    "name": name,
                    "cat": category,
                    "ph": "X",
                    "ts": start,
                    "dur": end - start,
                    "pid": os.getpid(),
                    "tid": threading.get_ident(),
                    "args": {key: _clean(value) for key, value in args.items()},
                }
            )

    def instant(self, name: str, category: str = "repro", **args) -> None:
        """Record a zero-duration instant event (scope: thread)."""
        if not self.enabled:
            return
        self._append(
            {
                "name": name,
                "cat": category,
                "ph": "i",
                "s": "t",
                "ts": _now_us(),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": {key: _clean(value) for key, value in args.items()},
            }
        )

    def _append(self, event: dict) -> None:
        with self._lock:
            self.events.append(event)

    # ------------------------------------------------------------------ #
    # reduction and export
    # ------------------------------------------------------------------ #

    def drain(self) -> list[dict]:
        """Remove and return all recorded events (worker → driver shipping)."""
        with self._lock:
            events, self.events = self.events, []
        return events

    def merge(self, events: list[dict] | None) -> None:
        """Fold another tracer's drained events in (e.g. from a worker)."""
        if not events:
            return
        with self._lock:
            self.events.extend(events)

    def export(self) -> dict:
        """The Chrome Trace Event JSON object (sorted by timestamp)."""
        from repro.obs.schema import artifact_stamp

        with self._lock:
            events = sorted(self.events, key=lambda e: e["ts"])
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs", "format_version": 1, **artifact_stamp()},
        }

    def save(self, path: str) -> None:
        """Atomically write the trace as Chrome-trace JSON.

        Plain JSON (no embedded checksum key) so Perfetto and
        ``chrome://tracing`` load the file as-is; atomicity still comes
        from the tmp-file + ``os.replace`` write path.
        """
        payload = sanitize_nonfinite(self.export())
        atomic_write_bytes(path, json.dumps(payload).encode("utf-8"))

    def __len__(self) -> int:
        with self._lock:
            return len(self.events)

    def __repr__(self) -> str:
        return f"Tracer(enabled={self.enabled}, events={len(self)})"


def _clean(value):
    """JSON-safe view of a span arg (numbers/strings pass, the rest reprs)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)
