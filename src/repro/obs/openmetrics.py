"""OpenMetrics/Prometheus text rendering of a MetricsRegistry snapshot.

The :class:`~repro.obs.metrics.MetricsRegistry` already freezes into a
plain dict (``snapshot()``); this module renders that dict in the
OpenMetrics text exposition format so any Prometheus-compatible scraper
can consume a live campaign's ``/metrics`` endpoint
(:mod:`repro.obs.server`):

* counters become ``<name>_total`` samples under a ``counter`` family;
* gauges become plain samples under a ``gauge`` family (NaN gauges —
  "never written" — are skipped rather than exported as ``NaN``);
* histograms become the classic cumulative ``_bucket{le="..."}`` /
  ``_sum`` / ``_count`` triple, with the implicit overflow bucket
  exported as ``le="+Inf"``.

Registry names are dotted (``executor.retries.crash``); metric names are
sanitised to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset (dots become
underscores) and prefixed ``repro_``. Optional labels (campaign id,
worker pid) are attached to every sample.

:func:`validate` is a deliberately *strict* line-format checker — the
test suite and the CI observability job run every served payload through
it, so a drifting exporter fails loudly rather than producing output
Prometheus silently mis-parses.
"""

from __future__ import annotations

import math
import re
from typing import Mapping

__all__ = [
    "OpenMetricsError",
    "metric_name",
    "escape_label_value",
    "render_openmetrics",
    "validate_openmetrics",
    "parse_samples",
]

#: prefix namespacing every exported metric family
PREFIX = "repro_"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: one sample line: name, optional {labels}, value (no timestamps exported)
#: braces/commas/quotes are all legal *inside* a quoted label value, so
#: the label block is a sequence of quoted strings and non-quote filler —
#: not simply "anything but braces"
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^"{}]|"(?:[^"\\]|\\.)*")*)\})?'
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')


class OpenMetricsError(ValueError):
    """An exposition payload violates the OpenMetrics line format."""


def metric_name(name: str) -> str:
    """Sanitise a dotted registry name into a legal metric name.

    Dots and any other illegal characters become underscores; a leading
    digit gains an underscore prefix. The result always matches
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
    """
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = "_" + cleaned
    return PREFIX + cleaned


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (backslash, quote, LF)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Canonical sample value rendering (integers stay integral)."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_block(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    parts = []
    for name in sorted(labels):
        if not _LABEL_NAME_RE.match(name):
            raise OpenMetricsError(f"illegal label name {name!r}")
        parts.append(f'{name}="{escape_label_value(str(labels[name]))}"')
    return "{" + ",".join(parts) + "}"


def _bucket_label_block(labels: Mapping[str, str] | None, le: str) -> str:
    merged = dict(labels or {})
    merged["le"] = le
    # `le` must render unescaped-numeric; it never needs escaping anyway
    parts = [f'{name}="{escape_label_value(str(value))}"' for name, value in sorted(merged.items())]
    return "{" + ",".join(parts) + "}"


def render_openmetrics(
    snapshot: Mapping | None,
    labels: Mapping[str, str] | None = None,
    families: list | None = None,
) -> str:
    """Render a ``MetricsRegistry.snapshot()`` as OpenMetrics text.

    ``labels`` (e.g. ``{"campaign": fingerprint, "pid": "1234"}``) are
    attached to every sample. An empty or ``None`` snapshot renders a
    valid, empty exposition (just the ``# EOF`` terminator), so a server
    whose registry is detached still serves a scrapeable payload.

    ``families`` appends extra metric families whose samples carry
    *per-sample* labels — the registry's snapshot attaches one label set
    to everything, which cannot express a per-stratum gauge. Each entry
    is ``{"name": <registry-style name>, "type": "counter"|"gauge",
    "samples": [(sample_labels, value), ...]}``; sample labels are merged
    over the shared ``labels`` (sample keys win) and counters get the
    ``_total`` suffix exactly like snapshot counters do. A family whose
    name collides with a snapshot metric raises — the strict validator
    would reject the redeclaration anyway, better to fail at render time.
    """
    snapshot = snapshot or {}
    lines: list[str] = []
    block = _label_block(labels)
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family}_total{block} {_format_value(value)}")
    for name, value in sorted((snapshot.get("gauges") or {}).items()):
        value = float(value) if value is not None else float("nan")
        if math.isnan(value):
            continue  # never-written gauge carries no information
        family = metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family}{block} {_format_value(value)}")
    for name, payload in sorted((snapshot.get("histograms") or {}).items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += int(count)
            lines.append(
                f"{family}_bucket{_bucket_label_block(labels, _format_value(bound))} {cumulative}"
            )
        cumulative += int(payload["counts"][len(payload["bounds"])])
        lines.append(f"{family}_bucket{_bucket_label_block(labels, '+Inf')} {cumulative}")
        lines.append(f"{family}_sum{block} {_format_value(payload['sum'])}")
        lines.append(f"{family}_count{block} {int(payload['count'])}")
    declared = {
        metric_name(name)
        for section in ("counters", "gauges", "histograms")
        for name in (snapshot.get(section) or {})
    }
    for extra in families or ():
        family = metric_name(extra["name"])
        kind = extra.get("type", "gauge")
        if kind not in ("counter", "gauge"):
            raise OpenMetricsError(f"extra family {family!r} has unsupported type {kind!r}")
        if family in declared:
            raise OpenMetricsError(f"extra family {family!r} collides with a snapshot metric")
        declared.add(family)
        lines.append(f"# TYPE {family} {kind}")
        sample_name = f"{family}_total" if kind == "counter" else family
        for sample_labels, value in extra.get("samples") or ():
            merged = {**(labels or {}), **(sample_labels or {})}
            lines.append(f"{sample_name}{_label_block(merged)} {_format_value(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _parse_labels(text: str | None) -> dict[str, str]:
    # label values may contain escaped quotes, commas, and braces, so the
    # block is scanned pair by pair rather than split on commas
    if not text:
        return {}
    labels: dict[str, str] = {}
    position = 0
    while position < len(text):
        match = _LABEL_RE.match(text, position)
        if match is None:
            raise OpenMetricsError(f"malformed label pair {text[position:]!r}")
        labels[match.group("name")] = match.group("value")
        position = match.end()
        if position < len(text):
            if text[position] != ",":
                raise OpenMetricsError(f"malformed label separator {text[position:]!r}")
            position += 1
    return labels


def _parse_value(text: str, where: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError as exc:
        raise OpenMetricsError(f"{where}: unparsable sample value {text!r}") from exc


def validate_openmetrics(text: str) -> dict[str, str]:
    """Strictly validate an exposition payload; returns ``{family: type}``.

    Checks, line by line:

    * every line is a ``# TYPE``/``# HELP`` comment, a sample, or the
      terminal ``# EOF`` (which must be present, once, at the end);
    * metric and label names match the legal charset;
    * every sample belongs to a previously-declared family (given the
      counter ``_total`` and histogram ``_bucket``/``_sum``/``_count``
      suffix rules) and families are not re-declared;
    * histogram buckets are cumulative (non-decreasing counts, strictly
      increasing ``le`` bounds, ``+Inf`` bucket present and equal to the
      family's ``_count`` sample).

    Raises :class:`OpenMetricsError` on the first violation.
    """
    if not text.endswith("\n"):
        raise OpenMetricsError("payload must end with a newline")
    lines = text.split("\n")[:-1]
    if not lines or lines[-1] != "# EOF":
        raise OpenMetricsError("payload must terminate with '# EOF'")
    families: dict[str, str] = {}
    # histogram bookkeeping: family -> (last le, last cumulative count)
    bucket_state: dict[str, tuple[float, float]] = {}
    bucket_inf: dict[str, float] = {}
    hist_count: dict[str, float] = {}
    for number, line in enumerate(lines[:-1], start=1):
        if line == "# EOF":
            raise OpenMetricsError(f"line {number}: '# EOF' before the end of the payload")
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise OpenMetricsError(f"line {number}: malformed TYPE comment {line!r}")
            _, _, family, kind = parts
            if not _NAME_RE.match(family):
                raise OpenMetricsError(f"line {number}: illegal family name {family!r}")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped", "info"):
                raise OpenMetricsError(f"line {number}: unknown metric type {kind!r}")
            if family in families:
                raise OpenMetricsError(f"line {number}: family {family!r} declared twice")
            families[family] = kind
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            raise OpenMetricsError(f"line {number}: unexpected comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise OpenMetricsError(f"line {number}: malformed sample line {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        value = _parse_value(match.group("value"), f"line {number}")
        family, kind = _resolve_family(name, families)
        if family is None:
            raise OpenMetricsError(f"line {number}: sample {name!r} has no TYPE declaration")
        if kind == "counter":
            if not name.endswith("_total"):
                raise OpenMetricsError(f"line {number}: counter sample {name!r} must end in _total")
            if value < 0:
                raise OpenMetricsError(f"line {number}: counter {name!r} is negative")
        if kind == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                raise OpenMetricsError(f"line {number}: histogram bucket without an 'le' label")
            le = _parse_value(labels["le"], f"line {number} (le)")
            last_le, last_count = bucket_state.get(family, (-math.inf, -math.inf))
            if le <= last_le:
                raise OpenMetricsError(
                    f"line {number}: bucket le={labels['le']} not increasing for {family!r}"
                )
            if value < max(last_count, 0.0):
                raise OpenMetricsError(
                    f"line {number}: bucket counts not cumulative for {family!r}"
                )
            bucket_state[family] = (le, value)
            if math.isinf(le):
                bucket_inf[family] = value
        if kind == "histogram" and name.endswith("_count"):
            hist_count[family] = value
    for family, kind in families.items():
        if kind != "histogram":
            continue
        if family not in bucket_inf:
            raise OpenMetricsError(f"histogram {family!r} has no '+Inf' bucket")
        if family not in hist_count:
            raise OpenMetricsError(f"histogram {family!r} has no '_count' sample")
        if bucket_inf[family] != hist_count[family]:
            raise OpenMetricsError(
                f"histogram {family!r}: +Inf bucket ({bucket_inf[family]:g}) "
                f"!= _count ({hist_count[family]:g})"
            )
    return families


def _resolve_family(sample_name: str, families: Mapping[str, str]) -> tuple[str | None, str | None]:
    """Map a sample name back to its declared family via the suffix rules."""
    if sample_name in families:
        return sample_name, families[sample_name]
    for suffix in ("_total", "_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            family = sample_name[: -len(suffix)]
            if family in families:
                return family, families[family]
    return None, None


def parse_samples(text: str) -> dict[str, float]:
    """Flat ``{sample name: value}`` view of an exposition payload.

    Bucketed samples keep their ``le`` label in the key
    (``name_bucket{le="0.1"}``). Convenience for ``repro top`` and tests;
    run :func:`validate_openmetrics` first for strictness.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        labels = _parse_labels(match.group("labels"))
        key = match.group("name")
        if "le" in labels:
            key = f'{key}{{le="{labels["le"]}"}}'
        samples[key] = _parse_value(match.group("value"), key)
    return samples
