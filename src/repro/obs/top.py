"""``repro top`` — a live terminal dashboard for a running campaign.

Two sources, one renderer:

* a **status URL** (a campaign started with ``--serve``): each frame
  polls ``/status`` (and opportunistically ``/metrics``) over stdlib
  ``urllib``;
* a **progress JSONL file** (a campaign started with
  ``--progress PATH``): each frame re-reads the file and replays every
  event through a :class:`~repro.obs.server.StatusTracker` — the same
  fold the live server uses, so both sources render identically.

The dashboard is plain ANSI (clear + home between frames), no curses —
it degrades to a repeated printout on dumb terminals and under test
capture. Rendering is pure (:func:`render_dashboard` takes a status
dict, returns a string), so tests never need a TTY or a sleep.
"""

from __future__ import annotations

import json
import math
import sys
import time
from typing import Callable

from repro.obs.progress import ProgressEvent
from repro.obs.server import StatusTracker
from repro.utils.logging import get_logger

__all__ = ["render_dashboard", "summarize_metrics", "status_source", "run_top"]

_LOGGER = get_logger("obs.top")

_CLEAR = "\x1b[2J\x1b[H"


def _fmt_duration(seconds) -> str:
    if seconds is None:
        return "--"
    seconds = float(seconds)
    if not math.isfinite(seconds):
        return "n/a"
    if seconds < 0:
        return "--"
    if seconds < 100:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m" if hours else f"{minutes}m{secs:02d}s"


def _fmt_value(value) -> str:
    """A gauge/sample value for display; non-finite renders as ``n/a``."""
    if value is None:
        return "n/a"
    value = float(value)
    if not math.isfinite(value):
        return "n/a"
    return f"{value:.4g}"


def _bar(done: int, total: int, width: int = 30) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(width * min(1.0, done / total))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _sparkline(values, width: int = 16) -> str:
    """Render a numeric series as unicode block characters (newest last)."""
    finite = [float(v) for v in values if v is not None and math.isfinite(float(v))]
    if not finite:
        return ""
    if len(finite) > width:
        # resample to the display width, keeping first and last
        idx = [round(i * (len(finite) - 1) / (width - 1)) for i in range(width)]
        finite = [finite[i] for i in idx]
    lo, hi = min(finite), max(finite)
    span = (hi - lo) or 1.0
    return "".join(_SPARK_CHARS[int((v - lo) / span * (len(_SPARK_CHARS) - 1))] for v in finite)


def _histogram_quantile(bounds, cumulative, q: float) -> float | None:
    """Prometheus-style quantile from cumulative bucket counts.

    Linear interpolation inside the bucket containing the target rank;
    the overflow bucket yields its lower (highest finite) bound, the
    honest answer available without raw samples.
    """
    if not cumulative or cumulative[-1] <= 0:
        return None
    rank = q * cumulative[-1]
    previous_bound, previous_count = 0.0, 0.0
    for bound, count in zip(bounds, cumulative):
        if count >= rank:
            if not math.isfinite(bound) or count == previous_count:
                return float(bound) if math.isfinite(bound) else previous_bound
            fraction = (rank - previous_count) / (count - previous_count)
            return float(previous_bound + (bound - previous_bound) * fraction)
        previous_bound, previous_count = float(bound), float(count)
    return previous_bound


def summarize_metrics(text: str) -> dict:
    """Digest an exposition payload into display-ready summaries.

    Histograms become ``{count, p50, p90, max, overflow}`` quantile
    summaries (satellite of the raw-bucket display: nobody reads 12
    ``le=`` lines on a dashboard); gauges and counters keep their last
    sample value. Labelled per-stratum estimator families are skipped —
    the estimator panel renders those with full fidelity.
    """
    from repro.obs.openmetrics import parse_samples, validate_openmetrics

    families = validate_openmetrics(text)
    samples = parse_samples(text)
    summary: dict = {"gauges": {}, "counters": {}, "histograms": {}}
    for family in sorted(families):
        kind = families[family]
        if "stratum" in family:
            continue
        if kind == "gauge" and family in samples:
            summary["gauges"][family] = samples[family]
        elif kind == "counter" and f"{family}_total" in samples:
            summary["counters"][family] = samples[f"{family}_total"]
        elif kind == "histogram":
            prefix = f'{family}_bucket{{le="'
            buckets = []
            for key, value in samples.items():
                if key.startswith(prefix):
                    le = key[len(prefix) : -2]
                    buckets.append((math.inf if le == "+Inf" else float(le), float(value)))
            buckets.sort(key=lambda item: item[0])
            if not buckets or buckets[-1][1] <= 0:
                continue
            bounds = [b for b, _ in buckets]
            cumulative = [c for _, c in buckets]
            finite_top = max((c for b, c in buckets if math.isfinite(b)), default=0.0)
            summary["histograms"][family] = {
                "count": samples.get(f"{family}_count", cumulative[-1]),
                "p50": _histogram_quantile(bounds, cumulative, 0.5),
                "p90": _histogram_quantile(bounds, cumulative, 0.9),
                "max": _histogram_quantile(bounds, cumulative, 1.0),
                "overflow": cumulative[-1] > finite_top,
            }
    return summary


def _metrics_lines(summary: dict) -> list[str]:
    """Dashboard lines for a :func:`summarize_metrics` digest."""
    lines = []
    for family, doc in sorted(summary.get("histograms", {}).items()):
        top = _fmt_value(doc["max"]) + ("+" if doc["overflow"] else "")
        lines.append(
            f"    {family:<40} n={int(doc['count'])}  "
            f"p50={_fmt_value(doc['p50'])}  p90={_fmt_value(doc['p90'])}  max={top}"
        )
    for family, value in sorted(summary.get("gauges", {}).items()):
        lines.append(f"    {family:<40} {_fmt_value(value)}")
    for family, value in sorted(summary.get("counters", {}).items()):
        lines.append(f"    {family:<40} {_fmt_value(value)}")
    return lines


#: strata shown in the convergence panel (worst half-width first)
ESTIMATOR_ROWS = 8


def _estimator_lines(document: dict) -> list[str]:
    """Dashboard lines for an ``/estimates`` document (worst-first)."""
    strata = document.get("strata") or []
    if not strata:
        return []
    target = document.get("target") or {}
    overall = document.get("overall") or {}
    header = (
        f"  estimate  mean {_fmt_value(overall.get('mean'))}  "
        f"±{_fmt_value(overall.get('halfwidth'))} "
        f"@ {float(document.get('mass', 0.95)):.0%}"
    )
    if target:
        header += f"    target ±{target['halfwidth']:g}"
    converged = document.get("converged")
    if converged is not None:
        header += f"    converged {converged['converged']}/{converged['total']}"
    crossed = overall.get("crossed_at")
    if crossed is not None:
        header += f"  (campaign crossed at task {crossed})"
    lines = [header, "    stratum (layer|bitfield|p)           mean      ±ci       trend"]
    ordered = sorted(strata, key=lambda doc: -float(doc.get("halfwidth") or 0.0))
    for doc in ordered[:ESTIMATOR_ROWS]:
        label = f"{doc['layer']}|{doc['bitfield']}|{doc['p']:.4g}"
        spark = _sparkline([point["halfwidth"] for point in doc.get("history") or []])
        mark = ""
        if doc.get("converged"):
            mark = f"  ok@{doc['crossed_at']}" if doc.get("crossed_at") is not None else "  ok"
        elif doc.get("converged") is False:
            mark = "  …"
        lines.append(
            f"    {label:<36} {_fmt_value(doc.get('mean')):<9} "
            f"{_fmt_value(doc.get('halfwidth')):<9} {spark}{mark}"
        )
    if len(ordered) > ESTIMATOR_ROWS:
        lines.append(f"    … {len(ordered) - ESTIMATOR_ROWS} tighter strata not shown")
    return lines


def render_dashboard(status: dict, source: str = "") -> str:
    """Render one dashboard frame from a ``/status`` document."""
    tasks = status.get("tasks") or {}
    total = int(tasks.get("total") or 0)
    completed = int(tasks.get("completed") or 0)
    failed = int(tasks.get("failed") or 0)
    running = status.get("running")
    state = "RUNNING" if running else ("idle" if running is not None else "?")
    lines = [
        f"repro top — {source}" if source else "repro top",
        "",
        f"  state     {state}    tasks {completed + failed}/{total} "
        f"{_bar(completed + failed, total)}",
        f"  completed {completed}    failed {failed}    "
        f"retries {tasks.get('retries', 0)} {tasks.get('retries_by_cause') or {}}",
        f"  rate      {status.get('rate_per_s') or 0:.2f} tasks/s    "
        f"eta {_fmt_duration(status.get('eta_s'))}    "
        f"heartbeats {status.get('heartbeats', 0)}",
    ]
    journal = status.get("journal") or {}
    if journal.get("records") is not None:
        lines.append(
            f"  journal   {journal['records']} record(s)"
            + (f"    quarantined {journal['quarantined']}" if journal.get("quarantined") else "")
        )
    chaos = status.get("chaos_fired") or {}
    if chaos:
        fired = ", ".join(f"{site}={count}" for site, count in sorted(chaos.items()))
        lines.append(f"  chaos     {fired}")
    sweep = status.get("sweep") or {}
    if sweep.get("points_done"):
        last = sweep.get("last") or {}
        lines.append(
            f"  sweep     {sweep['points_done']} point(s) done"
            + (f"    last p={last.get('p'):.3g}" if last.get("p") is not None else "")
        )
    adaptive = status.get("adaptive")
    if adaptive:
        lines.append(
            f"  adaptive  steps={adaptive.get('steps')} r_hat={adaptive.get('r_hat')} "
            f"ess={adaptive.get('ess')}"
        )
    estimator = status.get("estimator")
    if estimator and estimator.get("tasks"):
        lines.append("")
        lines.extend(_estimator_lines(estimator))
    workers = status.get("workers") or {}
    lines.append("")
    if workers:
        lines.append("  workers (running tasks):")
        lines.append("    task   pid       attempt  elapsed   beat age")
        for task in sorted(workers, key=lambda t: int(t) if str(t).isdigit() else 0):
            beat = workers[task]
            lines.append(
                f"    {task:<6} {str(beat.get('pid')):<9} {str(beat.get('attempt')):<8} "
                f"{_fmt_duration(beat.get('elapsed_s')):<9} "
                f"{_fmt_duration(beat.get('heartbeat_age_s'))}"
            )
    else:
        lines.append("  workers: none beating")
    last_complete = status.get("last_complete")
    if last_complete:
        lines.append("")
        lines.append(
            f"  done: {last_complete.get('tasks')} task(s) in "
            f"{_fmt_duration(last_complete.get('duration_s'))}, "
            f"failed {last_complete.get('failed', 0)}"
        )
    server = status.get("server")
    if server:
        lines.append("")
        lines.append(
            f"  server up {_fmt_duration(server.get('uptime_s'))}    "
            f"sse subscribers {server.get('sse_subscribers', 0)}"
        )
    metrics_summary = status.get("metrics_summary")
    if metrics_summary and any(metrics_summary.values()):
        lines.append("")
        lines.append("  metrics (histograms as p50/p90/max):")
        lines.extend(_metrics_lines(metrics_summary))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------- #
# sources
# ---------------------------------------------------------------------- #


def _poll_url(url: str) -> dict:
    import urllib.request

    base = url.rstrip("/")
    with urllib.request.urlopen(base + "/status", timeout=5.0) as response:
        status = json.loads(response.read().decode("utf-8"))
    # opportunistic: a server without detailed metrics still renders fine
    try:
        with urllib.request.urlopen(base + "/metrics", timeout=5.0) as response:
            status["metrics_summary"] = summarize_metrics(response.read().decode("utf-8"))
    except (OSError, ValueError):
        pass
    return status


def _replay_jsonl(path: str) -> dict:
    from repro.obs.estimator import EstimatorTracker

    tracker = StatusTracker()
    estimator = EstimatorTracker()
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of a live file; next frame will see it whole
            kind = record.pop("kind", None)
            if not kind or kind == "progress.header":
                continue
            wall_time = record.pop("wall_time", 0.0) or 0.0
            # the envelope pid stays in the payload: worker-carrying events
            # (heartbeats) read it from there
            event = ProgressEvent(
                kind=kind, payload=record, wall_time=wall_time, pid=record.get("pid", 0) or 0
            )
            tracker.emit(event)
            estimator.emit(event)
    status = tracker.status()
    if estimator.contributions:
        # same fold the live server embeds, so both sources render identically
        status["estimator"] = estimator.estimates()
    return status


def status_source(source: str) -> Callable[[], dict]:
    """A zero-argument poller for ``source`` (status URL or progress JSONL)."""
    if source.startswith(("http://", "https://")):
        return lambda: _poll_url(source)
    return lambda: _replay_jsonl(source)


def run_top(
    source: str,
    interval_s: float = 1.0,
    frames: int | None = None,
    stream=None,
    clear: bool = True,
) -> int:
    """Poll ``source`` and render the dashboard until interrupted.

    ``frames`` bounds the number of refreshes (``None`` = until Ctrl-C);
    returns a process exit code. Poll failures render an error frame and
    keep trying — a campaign restarting between frames is normal.
    """
    out = stream if stream is not None else sys.stdout
    rendered = 0
    failures = 0
    reached = False  # a source that never answered is an error, not a wait
    poll = status_source(source)
    try:
        while frames is None or rendered < frames:
            if rendered:
                time.sleep(interval_s)
            try:
                status = poll()
            except (OSError, ValueError) as exc:
                failures += 1
                frame = f"repro top — {source}\n\n  unreachable: {exc}\n"
                if failures > 5 and not reached:
                    out.write(frame)
                    return 1
            else:
                failures = 0
                reached = True
                frame = render_dashboard(status, source=source)
            out.write((_CLEAR if clear else "") + frame)
            out.flush()
            rendered += 1
    except KeyboardInterrupt:
        pass
    return 0
