"""``repro top`` — a live terminal dashboard for a running campaign.

Two sources, one renderer:

* a **status URL** (a campaign started with ``--serve``): each frame
  polls ``/status`` (and opportunistically ``/metrics``) over stdlib
  ``urllib``;
* a **progress JSONL file** (a campaign started with
  ``--progress PATH``): each frame re-reads the file and replays every
  event through a :class:`~repro.obs.server.StatusTracker` — the same
  fold the live server uses, so both sources render identically.

The dashboard is plain ANSI (clear + home between frames), no curses —
it degrades to a repeated printout on dumb terminals and under test
capture. Rendering is pure (:func:`render_dashboard` takes a status
dict, returns a string), so tests never need a TTY or a sleep.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable

from repro.obs.progress import ProgressEvent
from repro.obs.server import StatusTracker
from repro.utils.logging import get_logger

__all__ = ["render_dashboard", "status_source", "run_top"]

_LOGGER = get_logger("obs.top")

_CLEAR = "\x1b[2J\x1b[H"


def _fmt_duration(seconds) -> str:
    if seconds is None:
        return "--"
    seconds = float(seconds)
    if seconds < 0:
        return "--"
    if seconds < 100:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(seconds), 60)
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m" if hours else f"{minutes}m{secs:02d}s"


def _bar(done: int, total: int, width: int = 30) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(width * min(1.0, done / total))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render_dashboard(status: dict, source: str = "") -> str:
    """Render one dashboard frame from a ``/status`` document."""
    tasks = status.get("tasks") or {}
    total = int(tasks.get("total") or 0)
    completed = int(tasks.get("completed") or 0)
    failed = int(tasks.get("failed") or 0)
    running = status.get("running")
    state = "RUNNING" if running else ("idle" if running is not None else "?")
    lines = [
        f"repro top — {source}" if source else "repro top",
        "",
        f"  state     {state}    tasks {completed + failed}/{total} "
        f"{_bar(completed + failed, total)}",
        f"  completed {completed}    failed {failed}    "
        f"retries {tasks.get('retries', 0)} {tasks.get('retries_by_cause') or {}}",
        f"  rate      {status.get('rate_per_s') or 0:.2f} tasks/s    "
        f"eta {_fmt_duration(status.get('eta_s'))}    "
        f"heartbeats {status.get('heartbeats', 0)}",
    ]
    journal = status.get("journal") or {}
    if journal.get("records") is not None:
        lines.append(
            f"  journal   {journal['records']} record(s)"
            + (f"    quarantined {journal['quarantined']}" if journal.get("quarantined") else "")
        )
    chaos = status.get("chaos_fired") or {}
    if chaos:
        fired = ", ".join(f"{site}={count}" for site, count in sorted(chaos.items()))
        lines.append(f"  chaos     {fired}")
    sweep = status.get("sweep") or {}
    if sweep.get("points_done"):
        last = sweep.get("last") or {}
        lines.append(
            f"  sweep     {sweep['points_done']} point(s) done"
            + (f"    last p={last.get('p'):.3g}" if last.get("p") is not None else "")
        )
    adaptive = status.get("adaptive")
    if adaptive:
        lines.append(
            f"  adaptive  steps={adaptive.get('steps')} r_hat={adaptive.get('r_hat')} "
            f"ess={adaptive.get('ess')}"
        )
    workers = status.get("workers") or {}
    lines.append("")
    if workers:
        lines.append("  workers (running tasks):")
        lines.append("    task   pid       attempt  elapsed   beat age")
        for task in sorted(workers, key=lambda t: int(t) if str(t).isdigit() else 0):
            beat = workers[task]
            lines.append(
                f"    {task:<6} {str(beat.get('pid')):<9} {str(beat.get('attempt')):<8} "
                f"{_fmt_duration(beat.get('elapsed_s')):<9} "
                f"{_fmt_duration(beat.get('heartbeat_age_s'))}"
            )
    else:
        lines.append("  workers: none beating")
    last_complete = status.get("last_complete")
    if last_complete:
        lines.append("")
        lines.append(
            f"  done: {last_complete.get('tasks')} task(s) in "
            f"{_fmt_duration(last_complete.get('duration_s'))}, "
            f"failed {last_complete.get('failed', 0)}"
        )
    server = status.get("server")
    if server:
        lines.append("")
        lines.append(
            f"  server up {_fmt_duration(server.get('uptime_s'))}    "
            f"sse subscribers {server.get('sse_subscribers', 0)}"
        )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------- #
# sources
# ---------------------------------------------------------------------- #


def _poll_url(url: str) -> dict:
    import urllib.request

    with urllib.request.urlopen(url.rstrip("/") + "/status", timeout=5.0) as response:
        return json.loads(response.read().decode("utf-8"))


def _replay_jsonl(path: str) -> dict:
    tracker = StatusTracker()
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of a live file; next frame will see it whole
            kind = record.pop("kind", None)
            if not kind or kind == "progress.header":
                continue
            wall_time = record.pop("wall_time", 0.0) or 0.0
            # the envelope pid stays in the payload: worker-carrying events
            # (heartbeats) read it from there
            tracker.emit(
                ProgressEvent(
                    kind=kind, payload=record, wall_time=wall_time, pid=record.get("pid", 0) or 0
                )
            )
    return tracker.status()


def status_source(source: str) -> Callable[[], dict]:
    """A zero-argument poller for ``source`` (status URL or progress JSONL)."""
    if source.startswith(("http://", "https://")):
        return lambda: _poll_url(source)
    return lambda: _replay_jsonl(source)


def run_top(
    source: str,
    interval_s: float = 1.0,
    frames: int | None = None,
    stream=None,
    clear: bool = True,
) -> int:
    """Poll ``source`` and render the dashboard until interrupted.

    ``frames`` bounds the number of refreshes (``None`` = until Ctrl-C);
    returns a process exit code. Poll failures render an error frame and
    keep trying — a campaign restarting between frames is normal.
    """
    out = stream if stream is not None else sys.stdout
    rendered = 0
    failures = 0
    reached = False  # a source that never answered is an error, not a wait
    poll = status_source(source)
    try:
        while frames is None or rendered < frames:
            if rendered:
                time.sleep(interval_s)
            try:
                status = poll()
            except (OSError, ValueError) as exc:
                failures += 1
                frame = f"repro top — {source}\n\n  unreachable: {exc}\n"
                if failures > 5 and not reached:
                    out.write(frame)
                    return 1
            else:
                failures = 0
                reached = True
                frame = render_dashboard(status, source=source)
            out.write((_CLEAR if clear else "") + frame)
            out.flush()
            rendered += 1
    except KeyboardInterrupt:
        pass
    return 0
