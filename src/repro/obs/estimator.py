"""Live per-stratum posterior telemetry — the statistical view of a campaign.

The rest of :mod:`repro.obs` watches *mechanics* (task counts, heartbeats,
FLOPs, chaos retries). This module watches the thing the campaign is
actually for: how tight the Beta posterior over the SDC rate is right
now, per stratum, where a **stratum** is one (layer selection, bit-field,
flip probability) cell — the granularity at which a budget allocator
would steer further injections.

Design, in the same spirit as :class:`~repro.obs.server.StatusTracker`:

* Delivery sites (executor absorb, journal replay, sequential loops)
  publish one ``estimate`` event per completed campaign task via
  :func:`publish_outcome`. The payload is **pure data** derived from the
  :class:`~repro.core.campaign.CampaignResult` — task index, stratum
  labels, trial count, and the indices of degraded trials — so the same
  event stream reconstructs identically from a live sink, a replayed
  ``progress.jsonl``, or a journal resume.
* :class:`EstimatorTracker` is a passive
  :class:`~repro.obs.progress.ProgressSink` whose fold is an O(1),
  idempotent, task-indexed insert. **All** statistics are computed at
  query time by replaying contributions in task-index order, so the
  estimates document is a pure function of the set of delivered outcomes
  — sequential, pooled, and SIGKILL-resumed runs produce bit-identical
  documents regardless of delivery order.
* :class:`StoppingMonitor` is strictly *advisory*: given a
  :class:`StoppingTarget` (CI half-width at a credible mass) it stamps
  the first task index at which each stratum — and the whole campaign —
  crossed the target, and logs a human summary. Nothing here stops a
  run or touches an RNG stream; instrumented campaigns stay
  bit-identical to bare ones.

The module keeps a process-global tracker (``install``/``active``/
``uninstall``, mirroring :mod:`repro.obs.flight`) so the flight recorder
can embed estimator state in postmortem bundles without an import cycle.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.bayes.distributions import Beta
from repro.obs.progress import ProgressEvent, ProgressSink
from repro.utils.logging import get_logger

__all__ = [
    "EVENT_KIND",
    "DEFAULT_MASS",
    "HISTORY_POINTS",
    "StoppingTarget",
    "EstimatorTracker",
    "StoppingMonitor",
    "outcome_payload",
    "publish_outcome",
    "active",
    "install",
    "uninstall",
]

_LOGGER = get_logger("obs.estimator")

#: the progress-event kind carrying one campaign task's outcome counts
EVENT_KIND = "estimate"

#: credible mass used for intervals when no stopping target names one
DEFAULT_MASS = 0.95

#: maximum checkpoints kept per stratum's half-width convergence history
HISTORY_POINTS = 32

#: Jeffreys prior — matches ErrorPosterior.sdc_beta_posterior's default
PRIOR_A = 0.5
PRIOR_B = 0.5


@dataclass(frozen=True)
class StoppingTarget:
    """An advisory convergence target: CI half-width at a credible mass.

    A stratum "meets the target" once the central credible interval
    containing ``mass`` probability has half-width ≤ ``halfwidth``.
    """

    halfwidth: float
    mass: float = DEFAULT_MASS

    def __post_init__(self) -> None:
        if not 0 < self.halfwidth < 0.5:
            raise ValueError(f"target halfwidth must be in (0, 0.5), got {self.halfwidth}")
        if not 0 < self.mass < 1:
            raise ValueError(f"target mass must be in (0, 1), got {self.mass}")

    def to_dict(self) -> dict:
        return {"halfwidth": self.halfwidth, "mass": self.mass}


# ---------------------------------------------------------------------- #
# outcome events
# ---------------------------------------------------------------------- #


def _layer_label(target) -> str:
    """Stratum label for a :class:`~repro.faults.targets.TargetSpec`."""
    include = getattr(target, "include_layers", None) if target is not None else None
    if not include:
        return "all"
    return ",".join(include)


def _bitfield_label(spec) -> str:
    """Stratum label for a campaign spec's fault-model lane restriction."""
    model = getattr(spec, "fault_model", None) if spec is not None else None
    bits = getattr(model, "bits", None) if model is not None else None
    if bits is None:
        return "all"
    from repro.bits.fields import bit_field

    fields = sorted({bit_field(int(b)) for b in np.asarray(bits).reshape(-1)})
    return "+".join(fields)


def outcome_payload(index: int, outcome, spec=None, target=None) -> dict:
    """The ``estimate`` event payload for one completed campaign task.

    ``outcome`` is a :class:`~repro.core.campaign.CampaignResult` (or a
    tempered ``(result, weighted)`` pair — unwrapped). The payload holds
    everything the tracker needs and nothing more: the task index, the
    stratum labels, the trial count, and the indices of trials whose
    error exceeded the golden error — trial-level resolution so the
    convergence history is meaningful even when a stratum receives a
    single task.
    """
    if isinstance(outcome, tuple) and outcome:
        outcome = outcome[0]
    posterior = outcome.posterior
    samples = posterior.samples
    degraded = np.flatnonzero(samples > posterior.golden_error)
    return {
        "task": int(index),
        "layer": _layer_label(target),
        "bitfield": _bitfield_label(spec),
        "p": float(outcome.flip_probability),
        "trials": int(samples.size),
        "degraded_trials": [int(i) for i in degraded],
    }


def publish_outcome(index: int, outcome, spec=None, target=None) -> None:
    """Publish one task outcome as an ``estimate`` event (free when unobserved).

    Payload construction costs a threshold scan over the error samples,
    so the event is only built when a progress sink or flight recorder
    would actually see it — the same guard :func:`repro.obs.publish`
    applies, hoisted above the payload work.
    """
    import repro.obs as obs
    from repro.obs import flight

    if obs.progress() is None and flight.active() is None:
        return
    obs.publish(EVENT_KIND, **outcome_payload(index, outcome, spec=spec, target=target))


# ---------------------------------------------------------------------- #
# the tracker
# ---------------------------------------------------------------------- #


def _history_checkpoints(n: int, limit: int = HISTORY_POINTS) -> np.ndarray:
    """≤ ``limit`` trial counts at which to sample the half-width history."""
    if n <= limit:
        return np.arange(1, n + 1)
    return np.unique(np.linspace(1, n, limit).round().astype(np.int64))


def _halfwidths(k: np.ndarray, n: np.ndarray, mass: float) -> np.ndarray:
    """Vectorised posterior CI half-widths for cumulative (k, n) counts."""
    from repro.bayes.intervals import beta_central_interval

    lo, hi = beta_central_interval(PRIOR_A + k, PRIOR_B + (n - k), mass)
    return (np.atleast_1d(hi) - np.atleast_1d(lo)) / 2.0


class EstimatorTracker(ProgressSink):
    """Fold ``estimate`` events into streaming per-stratum Beta posteriors.

    The sink side is an O(1) idempotent insert keyed by task index
    (duplicate deliveries and journal replays collapse naturally); the
    query side (:meth:`estimates`) replays contributions in task-index
    order, so the document is independent of delivery order — the
    property the resume/pool bit-identity tests pin down.
    """

    def __init__(self, target: StoppingTarget | None = None) -> None:
        self.target = target
        self._lock = threading.Lock()
        self._contributions: dict[int, dict] = {}

    # -- sink side ----------------------------------------------------- #

    def emit(self, event: ProgressEvent) -> None:
        if event.kind != EVENT_KIND:
            return
        payload = event.payload
        task = payload.get("task")
        trials = payload.get("trials")
        if task is None or trials is None or int(trials) <= 0:
            return
        contribution = {
            "task": int(task),
            "layer": str(payload.get("layer", "all")),
            "bitfield": str(payload.get("bitfield", "all")),
            "p": float(payload.get("p", 0.0)),
            "trials": int(trials),
            "degraded_trials": [int(i) for i in payload.get("degraded_trials") or ()],
        }
        with self._lock:
            # first delivery wins: replays and duplicates are no-ops
            self._contributions.setdefault(contribution["task"], contribution)

    @property
    def contributions(self) -> int:
        """Number of distinct task outcomes folded so far."""
        with self._lock:
            return len(self._contributions)

    # -- query side ---------------------------------------------------- #

    def estimates(self) -> dict:
        """The current ``/estimates`` document (JSON-safe, deterministic).

        A pure function of the folded outcome set: no wall times, no
        delivery-order dependence — an interrupted-and-resumed campaign
        reproduces the uninterrupted document bit for bit.
        """
        with self._lock:
            ordered = [self._contributions[task] for task in sorted(self._contributions)]
        mass = self.target.mass if self.target is not None else DEFAULT_MASS
        strata: dict[tuple[str, str, float], list[dict]] = {}
        for contribution in ordered:
            key = (contribution["layer"], contribution["bitfield"], contribution["p"])
            strata.setdefault(key, []).append(contribution)

        stratum_docs = []
        for key in sorted(strata):
            stratum_docs.append(self._stratum_doc(key, strata[key], mass))

        total_trials = sum(doc["trials"] for doc in stratum_docs)
        total_degraded = sum(doc["degraded"] for doc in stratum_docs)
        overall = self._summary(total_degraded, total_trials, mass)
        converged = None
        if self.target is not None and stratum_docs:
            crossed = [doc for doc in stratum_docs if doc["crossed_at"] is not None]
            converged = {
                "converged": len(crossed),
                "total": len(stratum_docs),
                "fraction": len(crossed) / len(stratum_docs),
            }
            overall["crossed_at"] = (
                max(doc["crossed_at"] for doc in crossed)
                if len(crossed) == len(stratum_docs)
                else None
            )
        return {
            "target": self.target.to_dict() if self.target is not None else None,
            "mass": mass,
            "tasks": len(ordered),
            "trials": total_trials,
            "degraded": total_degraded,
            "overall": overall,
            "strata": stratum_docs,
            "converged": converged,
        }

    def _summary(self, k: int, n: int, mass: float) -> dict:
        """Posterior point/interval summary for ``k`` degraded of ``n``."""
        posterior = Beta(PRIOR_A + k, PRIOR_B + (n - k))
        lo, hi = posterior.interval(mass)
        return {
            "trials": n,
            "degraded": k,
            "mean": posterior.mean,
            "interval": [lo, hi],
            "halfwidth": (hi - lo) / 2.0,
            "variance": posterior.variance,
        }

    def _stratum_doc(self, key: tuple[str, str, float], contributions: list[dict], mass: float) -> dict:
        layer, bitfield, p = key
        # trial-level cumulative counts: concatenate tasks in index order
        total = sum(c["trials"] for c in contributions)
        indicator = np.zeros(total, dtype=np.float64)
        offset = 0
        for contribution in contributions:
            for trial in contribution["degraded_trials"]:
                if 0 <= trial < contribution["trials"]:
                    indicator[offset + trial] = 1.0
            offset += contribution["trials"]
        cum_k = np.cumsum(indicator)
        k_total = int(cum_k[-1]) if total else 0

        doc = self._summary(k_total, total, mass)
        doc.update({"layer": layer, "bitfield": bitfield, "p": p, "tasks": len(contributions)})

        # convergence history at ≤ HISTORY_POINTS trial counts
        checkpoints = _history_checkpoints(total)
        widths = _halfwidths(cum_k[checkpoints - 1], checkpoints.astype(np.float64), mass)
        doc["history"] = [
            {"n": int(n_at), "halfwidth": float(w)} for n_at, w in zip(checkpoints, widths)
        ]

        # first task index whose cumulative posterior met the target
        doc["crossed_at"] = None
        doc["converged"] = None
        if self.target is not None:
            boundaries = np.cumsum([c["trials"] for c in contributions])
            k_at = cum_k[boundaries - 1] if total else np.zeros(len(contributions))
            widths_at = _halfwidths(k_at, boundaries.astype(np.float64), mass)
            met = np.flatnonzero(widths_at <= self.target.halfwidth)
            if met.size:
                doc["crossed_at"] = int(contributions[int(met[0])]["task"])
            doc["converged"] = doc["halfwidth"] <= self.target.halfwidth
        return doc

    # -- exposition ---------------------------------------------------- #

    def metric_families(self) -> list[dict]:
        """OpenMetrics families for the ``/metrics`` endpoint.

        Per-stratum gauges labelled ``layer``/``bitfield``/``p``, the
        campaign-level ``repro_ci_halfwidth`` gauge, and — when a
        stopping target is armed — the ``repro_strata_converged_total``
        counter ("k of S strata meet the target half-width").
        """
        document = self.estimates()
        if not document["tasks"]:
            return []
        stratum_mean = []
        stratum_halfwidth = []
        stratum_trials = []
        for doc in document["strata"]:
            labels = {
                "layer": doc["layer"],
                "bitfield": doc["bitfield"],
                "p": f"{doc['p']:.6g}",
            }
            stratum_mean.append((labels, doc["mean"]))
            stratum_halfwidth.append((labels, doc["halfwidth"]))
            stratum_trials.append((labels, doc["trials"]))
        families = [
            {"name": "stratum_mean", "type": "gauge", "samples": stratum_mean},
            {"name": "stratum_ci_halfwidth", "type": "gauge", "samples": stratum_halfwidth},
            {"name": "stratum_trials", "type": "counter", "samples": stratum_trials},
            {
                "name": "ci_halfwidth",
                "type": "gauge",
                "samples": [({}, document["overall"]["halfwidth"])],
            },
        ]
        if document["converged"] is not None:
            families.append(
                {
                    "name": "strata_converged",
                    "type": "counter",
                    "samples": [({}, document["converged"]["converged"])],
                }
            )
        return families


# ---------------------------------------------------------------------- #
# the advisory stopping monitor
# ---------------------------------------------------------------------- #


class StoppingMonitor:
    """Advisory convergence reporting over an :class:`EstimatorTracker`.

    Observational only — it renders and logs which strata crossed the
    tracker's :class:`StoppingTarget` and at which task index, but never
    interrupts the campaign. Early stopping stays a *decision* for the
    budget allocator this telemetry was built to feed.
    """

    def __init__(self, tracker: EstimatorTracker) -> None:
        if tracker.target is None:
            raise ValueError("StoppingMonitor needs a tracker with a StoppingTarget")
        self.tracker = tracker

    @property
    def target(self) -> StoppingTarget:
        return self.tracker.target

    def summary(self) -> dict:
        """Crossing stamps per stratum plus the campaign-level verdict."""
        document = self.tracker.estimates()
        return {
            "target": document["target"],
            "converged": document["converged"],
            "campaign_crossed_at": document["overall"].get("crossed_at"),
            "strata": [
                {
                    "layer": doc["layer"],
                    "bitfield": doc["bitfield"],
                    "p": doc["p"],
                    "halfwidth": doc["halfwidth"],
                    "crossed_at": doc["crossed_at"],
                }
                for doc in document["strata"]
            ],
        }

    def report_lines(self) -> list[str]:
        """Human-readable crossing report (one line per stratum)."""
        summary = self.summary()
        target = summary["target"]
        lines = [
            f"stopping monitor: target halfwidth {target['halfwidth']:g} "
            f"at {target['mass']:.0%} credible mass"
        ]
        for stratum in summary["strata"]:
            where = (
                f"crossed at task {stratum['crossed_at']}"
                if stratum["crossed_at"] is not None
                else "not yet converged"
            )
            lines.append(
                f"  layer={stratum['layer']} bitfield={stratum['bitfield']} "
                f"p={stratum['p']:.6g}: halfwidth {stratum['halfwidth']:.4g} ({where})"
            )
        converged = summary["converged"]
        if converged is not None:
            lines.append(
                f"  {converged['converged']}/{converged['total']} strata at target"
                + (
                    f"; campaign crossed at task {summary['campaign_crossed_at']}"
                    if summary["campaign_crossed_at"] is not None
                    else ""
                )
            )
        return lines

    def log_report(self) -> None:
        for line in self.report_lines():
            _LOGGER.info("%s", line)


# ---------------------------------------------------------------------- #
# process-global installation (mirrors repro.obs.flight)
# ---------------------------------------------------------------------- #

_active: EstimatorTracker | None = None


def active() -> EstimatorTracker | None:
    """The installed tracker, or ``None`` (estimator telemetry off)."""
    return _active


def install(tracker: EstimatorTracker | None = None) -> EstimatorTracker:
    """Install a tracker process-wide; returns the live instance."""
    global _active
    _active = tracker if tracker is not None else EstimatorTracker()
    return _active


def uninstall() -> None:
    """Detach the process-global tracker."""
    global _active
    _active = None
