"""Metrics registry: counters, gauges, histograms with snapshot/merge.

Zero-dependency instrumentation primitives for campaign telemetry. A
:class:`MetricsRegistry` is a named bag of three instrument kinds:

* **counters** — monotonically increasing integer totals (evaluations run,
  flips applied per bit-field, hazard rows quarantined, worker retries);
* **gauges** — last-written floating-point values (current acceptance
  rate, R-hat of the latest assessment, evaluations/s);
* **histograms** — bucketed distributions (campaign durations, statistic
  values) with running sum/count/min/max.

The registry is built for *distributed reduction*: :meth:`snapshot`
freezes everything into a plain, picklable, JSON-clean dict, and
:meth:`merge` folds such a snapshot back in (counters and histogram
buckets add, gauges take the incoming value). That is how per-worker
metrics from :class:`~repro.exec.executor.ParallelCampaignExecutor`
processes are reduced into the driver: each campaign stamps its own
digest, the digest rides home on the result, and the driver merges it —
so a parallel sweep's counters are identical to a sequential run's.

All mutation is lock-guarded, so hook threads and schedulers can record
into one registry safely.
"""

from __future__ import annotations

import math
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: default histogram bucket upper bounds (seconds-flavoured log grid)
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0)


class Counter:
    """A monotonically increasing integer total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: cannot decrease by {amount}")
        self.value += int(amount)

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-write-wins floating-point value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """A fixed-bucket distribution with running sum/count/min/max.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge, so
    ``len(counts) == len(bounds) + 1``.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r}: bounds must be non-empty and increasing")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return  # undefined observations carry no information
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:g})"


class MetricsRegistry:
    """Named counters/gauges/histograms with snapshot/merge reduction.

    Instruments are created on first use (``registry.counter("x").inc()``)
    so instrumentation sites never need registration boilerplate.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # instrument access
    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, bounds)
            return instrument

    # convenience one-liners for instrumentation sites
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------ #
    # reduction
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Freeze the registry into a plain, picklable, JSON-ready dict."""
        with self._lock:
            return {
                "counters": {name: c.value for name, c in sorted(self._counters.items())},
                "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
                "histograms": {
                    name: {
                        "bounds": list(h.bounds),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                        "min": h.min if h.count else float("nan"),
                        "max": h.max if h.count else float("nan"),
                    }
                    for name, h in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: dict | None) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value (last write wins). Histograms under the same name must
        share bucket bounds. ``None`` merges as a no-op, so callers can
        pass an optional digest straight through.
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            if value is not None and not (isinstance(value, float) and math.isnan(value)):
                self.gauge(name).set(float(value))
        for name, payload in snapshot.get("histograms", {}).items():
            bounds = tuple(float(b) for b in payload["bounds"])
            histogram = self.histogram(name, bounds)
            if histogram.bounds != bounds:
                raise ValueError(
                    f"histogram {name!r}: cannot merge bounds {bounds} into {histogram.bounds}"
                )
            with self._lock:
                for i, count in enumerate(payload["counts"]):
                    histogram.counts[i] += int(count)
                histogram.sum += float(payload["sum"])
                histogram.count += int(payload["count"])
                incoming_min = payload.get("min")
                incoming_max = payload.get("max")
                if incoming_min is not None and not math.isnan(float(incoming_min)):
                    histogram.min = min(histogram.min, float(incoming_min))
                if incoming_max is not None and not math.isnan(float(incoming_max)):
                    histogram.max = max(histogram.max, float(incoming_max))

    def counters(self) -> dict[str, int]:
        """Current counter totals (the deterministic, order-independent part)."""
        with self._lock:
            return {name: c.value for name, c in sorted(self._counters.items())}

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
            )
