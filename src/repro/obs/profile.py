"""Deterministic, opt-in profiling: per-op counters, per-layer time, phases.

The :class:`Profiler` answers the question PR 3's tracer cannot: *where*
inside a 4-second worker span the time went — 70% ``Conv2d`` forward versus
bit-flip application versus journal fsync. It observes three granularities:

* **per-op counters** — every tensor-engine operation that goes through
  :meth:`repro.tensor.tensor.Tensor._make` records its call count, an
  estimated FLOP cost (exact for matmul/conv2d, elementwise-sized
  otherwise), output bytes allocated, and an *estimated* self time (the
  clock delta since the previous op record inside the same profiled
  region — numpy compute dominates that window, so the estimate tracks
  real kernel cost closely while costing two clock reads);
* **per-layer time** — :func:`profile_module` instruments a
  :class:`~repro.nn.module.Module` tree with forward pre/post hooks and
  maintains a layer stack, yielding cumulative (inclusive of children)
  and self (exclusive) forward time per dotted layer name, plus backward
  self time attributed through the autodiff tape (ops record which layer
  was live when they were created; their wrapped backward closures bill
  that layer);
* **phases** — coarse campaign accounting (``forward.eval`` vs
  ``flip.apply`` vs ``journal.fsync`` vs ``ipc.recv``) via the
  :meth:`Profiler.phase` context manager, nested into a dotted stack.

Everything is strictly *passive*: the profiler only reads clocks and
counts — it never touches an RNG stream, never replaces a hook value, and
never changes control flow — so a campaign run under profiling is
bit-identical to a bare one. When no profiler is attached the hot-path
hook in the tensor engine is a single ``is None`` check.

This module also owns the library's **canonical clock**: every duration in
repro comes from :func:`clock_s` / :func:`clock_ns` (``time.perf_counter``
— monotonic, highest resolution, comparable across fork-started workers on
one host); wall-clock time is reserved for *display* timestamps via
:func:`wall_display`. ``repro.utils.timing.Timer`` and the trace clock are
thin shims over these.

Reduction follows the PR 3 metrics pattern: :meth:`Profiler.snapshot`
freezes everything into a picklable JSON-clean dict, :meth:`Profiler.merge`
folds worker snapshots back into the driver, and
:meth:`Profiler.publish_to` projects totals into a
:class:`~repro.obs.metrics.MetricsRegistry` so ``--metrics`` and
``--profile`` compose.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Callable, Iterable

__all__ = [
    "clock_s",
    "clock_ns",
    "wall_display",
    "OpStats",
    "LayerStats",
    "PhaseStats",
    "Profiler",
    "profile_module",
]


# ---------------------------------------------------------------------- #
# the canonical clock
# ---------------------------------------------------------------------- #


def clock_s() -> float:
    """Monotonic seconds for measuring durations (``time.perf_counter``).

    The single clock every repro duration is measured with. Monotonic
    (never jumps back on NTP adjustments) and CLOCK_MONOTONIC-based on
    Linux, so readings are comparable across fork-started worker
    processes on the same host.
    """
    return time.perf_counter()


def clock_ns() -> int:
    """Monotonic nanoseconds (``time.perf_counter_ns``) for fine timers."""
    return time.perf_counter_ns()


def wall_display() -> str:
    """ISO-8601 UTC wall-clock timestamp, for *display/metadata only*.

    Never subtract two of these to get a duration — use :func:`clock_s`.
    """
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


# ---------------------------------------------------------------------- #
# per-granularity accumulators
# ---------------------------------------------------------------------- #


@dataclass
class OpStats:
    """Accumulated counters for one tensor-engine op kind."""

    calls: int = 0
    flops: float = 0.0
    bytes: int = 0
    #: estimated self seconds (clock deltas between consecutive op records)
    self_s_est: float = 0.0

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "flops": self.flops,
            "bytes": self.bytes,
            "self_s_est": self.self_s_est,
        }


@dataclass
class LayerStats:
    """Forward/backward timing for one dotted layer name."""

    calls: int = 0
    #: forward seconds inclusive of child modules
    forward_cum_s: float = 0.0
    #: forward seconds exclusive of child modules
    forward_self_s: float = 0.0
    #: backward seconds billed through the tape (self by construction)
    backward_self_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "calls": self.calls,
            "forward_cum_s": self.forward_cum_s,
            "forward_self_s": self.forward_self_s,
            "backward_self_s": self.backward_self_s,
        }


@dataclass
class PhaseStats:
    """Cumulative/self time for one dotted phase path."""

    count: int = 0
    cum_s: float = 0.0
    self_s: float = 0.0

    def as_dict(self) -> dict:
        return {"count": self.count, "cum_s": self.cum_s, "self_s": self.self_s}


@dataclass
class _Frame:
    """One live stack entry (phase or layer) being timed."""

    name: str
    path: str
    started: float
    child_s: float = 0.0


# FLOP estimators. matmul/conv2d get exact multiply-add counts from parent
# shapes; everything else is billed one flop per output element, which keeps
# the hot-spot ordering honest without per-op bespoke formulas.
def _estimate_flops(op: str, out_data, parents: tuple) -> float:
    size = float(out_data.size)
    if op == "matmul" and len(parents) >= 2:
        inner = parents[0].data.shape[-1] if parents[0].data.ndim else 1
        return 2.0 * size * float(inner)
    if op == "conv2d" and len(parents) >= 2:
        weight = parents[1].data  # (out_c, in_c, kh, kw)
        if weight.ndim == 4:
            return 2.0 * size * float(weight[0].size)
    return size


class Profiler:
    """Passive per-op / per-layer / per-phase profiler.

    One profiler is attached per process via :func:`repro.obs.configure`
    (``profiler=True``); worker processes get a fresh one through
    :class:`~repro.obs.WorkerObsConfig` and their snapshots merge back
    into the driver's, so a parallel campaign's profile covers the whole
    fleet.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self.ops: dict[str, OpStats] = {}
        self.layers: dict[str, LayerStats] = {}
        self.phases: dict[str, PhaseStats] = {}
        #: shared stack of live phase frames (dotted paths)
        self._phase_stack: list[_Frame] = []
        #: shared stack of live layer frames (module call nesting)
        self._layer_stack: list[_Frame] = []
        #: clock reading of the previous op record (None = estimator reset)
        self._last_op_ts: float | None = None

    # ------------------------------------------------------------------ #
    # op recording (the tensor-engine hot path)
    # ------------------------------------------------------------------ #

    def record_tensor_op(self, op: str, out_data, parents: tuple, flops: float | None = None) -> None:
        """Record one tensor op: calls, FLOPs, bytes, estimated self time.

        Called from :meth:`Tensor._make` right after the numpy compute, so
        the delta since the previous record approximates this op's kernel
        time. The estimator resets at layer/phase boundaries (and on the
        first op of a region) so inter-op gaps spent outside the tensor
        engine are never billed to an op.
        """
        now = clock_s()
        stats = self.ops.get(op)
        if stats is None:
            stats = self.ops.setdefault(op, OpStats())
        stats.calls += 1
        stats.flops += _estimate_flops(op, out_data, parents) if flops is None else float(flops)
        stats.bytes += int(out_data.nbytes)
        if self._last_op_ts is not None:
            stats.self_s_est += now - self._last_op_ts
        self._last_op_ts = now

    def reset_op_clock(self) -> None:
        """Detach the op self-time estimator from the preceding gap."""
        self._last_op_ts = None

    def wrap_backward(self, op: str, backward_fn: Callable) -> Callable:
        """Time a tape closure, billing the layer live when it was recorded."""
        layer = self._layer_stack[-1].path if self._layer_stack else None

        def timed(grad):
            started = clock_s()
            try:
                return backward_fn(grad)
            finally:
                elapsed = clock_s() - started
                if layer is not None:
                    stats = self.layers.get(layer)
                    if stats is None:
                        stats = self.layers.setdefault(layer, LayerStats())
                    stats.backward_self_s += elapsed

        return timed

    # ------------------------------------------------------------------ #
    # layer timing (driven by profile_module hooks)
    # ------------------------------------------------------------------ #

    def _layer_enter(self, name: str) -> None:
        self.reset_op_clock()
        self._layer_stack.append(_Frame(name=name, path=name, started=clock_s()))

    def _layer_exit(self, name: str) -> None:
        now = clock_s()
        self.reset_op_clock()
        # Unwind to the matching frame; an exception inside a child forward
        # can leave orphans, which are dropped rather than mis-billed.
        while self._layer_stack:
            frame = self._layer_stack.pop()
            if frame.name == name:
                cum = now - frame.started
                stats = self.layers.get(name)
                if stats is None:
                    stats = self.layers.setdefault(name, LayerStats())
                stats.calls += 1
                stats.forward_cum_s += cum
                stats.forward_self_s += max(0.0, cum - frame.child_s)
                if self._layer_stack:
                    self._layer_stack[-1].child_s += cum
                return

    # ------------------------------------------------------------------ #
    # phase accounting
    # ------------------------------------------------------------------ #

    @contextlib.contextmanager
    def phase(self, name: str):
        """Time a campaign phase; nested phases form dotted paths.

        >>> profiler = Profiler()
        >>> with profiler.phase("campaign"):
        ...     with profiler.phase("forward.eval"):
        ...         pass
        >>> sorted(profiler.phases)
        ['campaign', 'campaign/forward.eval']
        """
        if not self.enabled:
            yield
            return
        parent = self._phase_stack[-1].path if self._phase_stack else None
        path = f"{parent}/{name}" if parent else name
        frame = _Frame(name=name, path=path, started=clock_s())
        self._phase_stack.append(frame)
        self.reset_op_clock()
        try:
            yield
        finally:
            now = clock_s()
            self.reset_op_clock()
            if self._phase_stack and self._phase_stack[-1] is frame:
                self._phase_stack.pop()
            cum = now - frame.started
            stats = self.phases.get(path)
            if stats is None:
                stats = self.phases.setdefault(path, PhaseStats())
            stats.count += 1
            stats.cum_s += cum
            stats.self_s += max(0.0, cum - frame.child_s)
            if self._phase_stack:
                self._phase_stack[-1].child_s += cum

    # ------------------------------------------------------------------ #
    # reduction
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Freeze into a plain, picklable, JSON-clean dict."""
        with self._lock:
            return {
                "ops": {name: s.as_dict() for name, s in sorted(self.ops.items())},
                "layers": {name: s.as_dict() for name, s in sorted(self.layers.items())},
                "phases": {name: s.as_dict() for name, s in sorted(self.phases.items())},
            }

    def merge(self, snapshot: dict | None) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) in."""
        if not snapshot:
            return
        with self._lock:
            for name, payload in snapshot.get("ops", {}).items():
                stats = self.ops.setdefault(name, OpStats())
                stats.calls += int(payload["calls"])
                stats.flops += float(payload["flops"])
                stats.bytes += int(payload["bytes"])
                stats.self_s_est += float(payload.get("self_s_est", 0.0))
            for name, payload in snapshot.get("layers", {}).items():
                stats = self.layers.setdefault(name, LayerStats())
                stats.calls += int(payload["calls"])
                stats.forward_cum_s += float(payload["forward_cum_s"])
                stats.forward_self_s += float(payload["forward_self_s"])
                stats.backward_self_s += float(payload.get("backward_self_s", 0.0))
            for name, payload in snapshot.get("phases", {}).items():
                stats = self.phases.setdefault(name, PhaseStats())
                stats.count += int(payload["count"])
                stats.cum_s += float(payload["cum_s"])
                stats.self_s += float(payload["self_s"])

    def publish_to(self, registry) -> None:
        """Project profile totals into a :class:`MetricsRegistry`.

        Counters for op calls/FLOPs/bytes and a histogram of per-layer
        forward self time, so ``--metrics`` and ``--profile`` compose
        instead of duplicating accounting.
        """
        for name, stats in sorted(self.ops.items()):
            registry.inc(f"profile.op.{name}.calls", stats.calls)
            registry.inc(f"profile.op.{name}.flops", int(stats.flops))
            registry.inc(f"profile.op.{name}.bytes", stats.bytes)
        for _, stats in sorted(self.layers.items()):
            if stats.calls:
                registry.observe("profile.layer.forward_s", stats.forward_self_s / stats.calls)
        for name, stats in sorted(self.phases.items()):
            registry.observe("profile.phase.cum_s", stats.cum_s)
            registry.inc(f"profile.phase.{name}.count", stats.count)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def hotspot_rows(self, limit: int | None = None) -> list[dict]:
        """Sorted hot-spot rows mixing phases, layers, and ops.

        Every row carries ``kind``/``name``/``self_s``/``cum_s``; layers
        add calls and backward time, ops add calls/GFLOP/MB (their times
        are delta estimates). Sorted by self time, descending.
        """
        rows: list[dict] = []
        for name, stats in self.phases.items():
            rows.append(
                {
                    "kind": "phase",
                    "name": name,
                    "calls": stats.count,
                    "self_s": stats.self_s,
                    "cum_s": stats.cum_s,
                }
            )
        for name, stats in self.layers.items():
            rows.append(
                {
                    "kind": "layer",
                    "name": name,
                    "calls": stats.calls,
                    "self_s": stats.forward_self_s,
                    "cum_s": stats.forward_cum_s,
                    "backward_s": stats.backward_self_s,
                }
            )
        for name, stats in self.ops.items():
            rows.append(
                {
                    "kind": "op",
                    "name": name,
                    "calls": stats.calls,
                    "self_s": stats.self_s_est,
                    "cum_s": stats.self_s_est,
                    "gflop": stats.flops / 1e9,
                    "mbytes": stats.bytes / 1e6,
                }
            )
        rows.sort(key=lambda row: row["self_s"], reverse=True)
        return rows[:limit] if limit is not None else rows

    def hotspot_table(self, limit: int = 30) -> str:
        """The sorted hot-spot table as rendered text."""
        rows = self.hotspot_rows(limit)
        if not rows:
            return "profile: no samples recorded"
        header = f"{'kind':<6} {'name':<44} {'calls':>8} {'self_s':>10} {'cum_s':>10} {'detail':<24}"
        lines = [header, "-" * len(header)]
        for row in rows:
            if row["kind"] == "op":
                detail = f"{row['gflop']:.3f} GFLOP, {row['mbytes']:.1f} MB"
            elif row["kind"] == "layer":
                detail = f"backward {row['backward_s']:.4f}s"
            else:
                detail = ""
            name = row["name"]
            if len(name) > 44:
                name = "…" + name[-43:]
            lines.append(
                f"{row['kind']:<6} {name:<44} {row['calls']:>8d} "
                f"{row['self_s']:>10.4f} {row['cum_s']:>10.4f} {detail:<24}"
            )
        return "\n".join(lines)

    def collapsed_stacks(self) -> list[str]:
        """Brendan-Gregg collapsed stacks (speedscope/flamegraph loadable).

        One line per leaf: ``frame;frame;frame <microseconds>``. Phase
        paths become stacks directly; layer self time is appended under a
        ``layers`` root (dotted module paths become frames), op estimates
        under an ``ops`` root.
        """
        lines: list[str] = []
        for path, stats in sorted(self.phases.items()):
            micros = int(round(stats.self_s * 1e6))
            if micros > 0:
                lines.append(f"{path.replace('/', ';')} {micros}")
        for name, stats in sorted(self.layers.items()):
            micros = int(round(stats.forward_self_s * 1e6))
            if micros > 0:
                frames = ";".join(["layers"] + name.split("."))
                lines.append(f"{frames} {micros}")
            back = int(round(stats.backward_self_s * 1e6))
            if back > 0:
                frames = ";".join(["layers"] + name.split(".") + ["backward"])
                lines.append(f"{frames} {back}")
        for name, stats in sorted(self.ops.items()):
            micros = int(round(stats.self_s_est * 1e6))
            if micros > 0:
                lines.append(f"ops;{name} {micros}")
        return lines

    def save_collapsed(self, path: str) -> None:
        """Atomically write the collapsed-stack file (open in speedscope)."""
        from repro.utils.persist import atomic_write_bytes

        payload = "\n".join(self.collapsed_stacks())
        atomic_write_bytes(path, (payload + "\n").encode("utf-8") if payload else b"")

    def __repr__(self) -> str:
        return (
            f"Profiler(enabled={self.enabled}, ops={len(self.ops)}, "
            f"layers={len(self.layers)}, phases={len(self.phases)})"
        )


# ---------------------------------------------------------------------- #
# the process-global hot-path hook
# ---------------------------------------------------------------------- #

#: the profiler consulted by the tensor-engine hot path; ``None`` = off.
#: Owned by :func:`repro.obs.configure` — do not set directly.
ACTIVE: Profiler | None = None


def _set_active(profiler: Profiler | None) -> None:
    """Install the hot-path profiler (called by ``repro.obs.configure``)."""
    global ACTIVE
    ACTIVE = profiler


# ---------------------------------------------------------------------- #
# module instrumentation
# ---------------------------------------------------------------------- #


@contextlib.contextmanager
def profile_module(model, profiler: Profiler, names: Iterable[tuple[str, object]] | None = None):
    """Attach per-layer timing hooks to every submodule of ``model``.

    Hooks are passive (they return ``None``, never replacing inputs or
    outputs) and are removed on exit even when the forward pass raises.
    ``names`` overrides the instrumented set (default: every named
    submodule, root excluded — the root's time is the campaign phase).
    """
    if names is None:
        names = [(name, module) for name, module in model.named_modules() if name]
    handles = []
    try:
        for name, module in names:

            def pre_hook(mod, inputs, _name=name):
                profiler._layer_enter(_name)

            def post_hook(mod, inputs, output, _name=name):
                profiler._layer_exit(_name)

            handles.append(module.register_forward_pre_hook(pre_hook))
            handles.append(module.register_forward_hook(post_hook))
        yield profiler
    finally:
        for handle in handles:
            handle.remove()
