"""Versioning for emitted observability artifacts.

Every artifact the obs stack writes to disk — the metrics digest JSON,
the Chrome-trace JSON, the progress JSONL stream, bench ``BENCH_*.json``
records, and flight-recorder postmortem bundles — carries the same two
fields so a future campaign *service* (ROADMAP) can negotiate formats
with clients running older or newer library versions:

* ``schema_version`` — the artifact format generation (bumped on
  breaking layout changes);
* ``repro_version`` — the library version that produced the artifact
  (forensics: "which code wrote this file?").

Loaders are **v0-tolerant**: an artifact written before these fields
existed simply has no ``schema_version`` key, and
:func:`artifact_version` maps that to ``0`` instead of failing — old
files keep loading forever.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["SCHEMA_VERSION", "artifact_stamp", "artifact_version"]

#: current format generation for obs-emitted artifacts
SCHEMA_VERSION = 1


def artifact_stamp() -> dict:
    """The ``{schema_version, repro_version}`` fields to embed in artifacts."""
    from repro import __version__

    return {"schema_version": SCHEMA_VERSION, "repro_version": __version__}


def artifact_version(payload: Mapping | None) -> int:
    """The schema generation an artifact was written under.

    Artifacts predating the stamp (no ``schema_version`` key) are
    generation ``0`` — loaders accept them unchanged.
    """
    if not payload:
        return 0
    try:
        return int(payload.get("schema_version", 0))
    except (TypeError, ValueError):
        return 0
