"""Live campaign telemetry over HTTP — stdlib only, strictly passive.

A long fault-injection campaign should be watchable while it runs, not
just autopsied from artifacts afterwards. :class:`StatusServer` runs a
:class:`http.server.ThreadingHTTPServer` on a background daemon thread
and exposes read-only endpoints:

* ``/metrics`` — the attached :class:`~repro.obs.MetricsRegistry`
  snapshot rendered in the OpenMetrics text format
  (:mod:`repro.obs.openmetrics`), scrapeable by Prometheus — plus the
  per-stratum posterior families when an
  :class:`~repro.obs.estimator.EstimatorTracker` is attached;
* ``/status`` — one JSON document with executor progress, per-worker
  heartbeat ages, retry/chaos/journal accounting, and an ETA derived
  from the windowed task-completion rate;
* ``/estimates`` — the live per-stratum Beta-posterior document (means,
  credible intervals, CI half-widths vs. the stopping target);
* ``/events`` — a Server-Sent-Events bridge over the live
  :class:`~repro.obs.progress.ProgressSink` stream (one ``data:`` frame
  per progress event, with keepalive comments while the campaign is
  quiet);
* ``/healthz`` — liveness probe.

The server never *drives* anything: :class:`StatusTracker` and
:class:`SseSink` are ordinary progress sinks tee'd into the existing
stream (:class:`~repro.obs.progress.TeeSink`), all endpoint handlers
only read snapshots, and nothing here touches an RNG stream — a campaign
run with ``--serve`` is bit-identical to one without (enforced by parity
tests).

Slow or stuck SSE consumers are shed, not waited for: each client gets a
bounded queue and events that cannot be enqueued are counted and
dropped. Observability must not be able to stall the campaign.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping

from repro.obs.progress import ProgressEvent, ProgressSink
from repro.obs.schema import artifact_stamp
from repro.utils.logging import get_logger
from repro.utils.persist import sanitize_nonfinite

__all__ = ["StatusTracker", "SseSink", "StatusServer", "parse_endpoint"]

_LOGGER = get_logger("obs.server")

#: completion timestamps kept for the windowed throughput / ETA estimate
DEFAULT_RATE_WINDOW = 64


def parse_endpoint(spec: str) -> tuple[str, int]:
    """``"[HOST:]PORT"`` → ``(host, port)``; host defaults to localhost.

    Accepts ``"8080"``, ``"0.0.0.0:8080"``, and bracketed IPv6
    (``"[::1]:8080"``). Port ``0`` asks the OS for a free port.
    """
    spec = spec.strip()
    host, port_text = "127.0.0.1", spec
    if spec.startswith("["):  # [v6addr]:port
        closing = spec.find("]")
        if closing < 0 or not spec[closing + 1 :].startswith(":"):
            raise ValueError(f"malformed [HOST]:PORT spec {spec!r}")
        host, port_text = spec[1:closing], spec[closing + 2 :]
    elif ":" in spec:
        host, port_text = spec.rsplit(":", 1)
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"malformed port in {spec!r}") from exc
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in {spec!r}")
    return host or "127.0.0.1", port


# ---------------------------------------------------------------------- #
# live state derived from the progress stream
# ---------------------------------------------------------------------- #


class StatusTracker(ProgressSink):
    """Fold the progress-event stream into one queryable status document.

    The tracker knows nothing about the executor's internals — everything
    in :meth:`status` is derived from published events, so the same
    tracker works live (tee'd into the sink chain), against a replayed
    ``progress.jsonl`` (``repro top``), and across journal resumes (the
    journal publishes its replayed position).
    """

    def __init__(self, rate_window: int = DEFAULT_RATE_WINDOW) -> None:
        self._lock = threading.Lock()
        self._completions: deque[float] = deque(maxlen=max(2, rate_window))
        self._started_wall: float | None = None
        self._tasks_total = 0
        self._workers = 0
        self._completed = 0
        self._failed = 0
        self._retries_by_cause: dict[str, int] = {}
        self._heartbeats = 0
        self._beats: dict[int, dict] = {}  # task index → last heartbeat payload
        self._journal_records: int | None = None
        self._journal_quarantined = 0
        self._chaos_fired: dict[str, int] = {}
        self._sweep_done = 0
        self._last_sweep: dict | None = None
        self._last_adaptive: dict | None = None
        self._last_complete: dict | None = None
        self._running = False
        self._events_seen = 0

    # -- sink side ----------------------------------------------------- #

    def emit(self, event: ProgressEvent) -> None:
        kind, payload = event.kind, event.payload
        with self._lock:
            self._events_seen += 1
            if kind == "executor.start":
                self._started_wall = event.wall_time
                self._tasks_total = int(payload.get("tasks", 0))
                self._workers = int(payload.get("workers", 0))
                self._completed = 0
                self._failed = 0
                self._retries_by_cause = {}
                self._heartbeats = 0
                self._beats.clear()
                self._completions.clear()
                self._last_complete = None
                self._running = True
            elif kind == "executor.task_done":
                self._completed += 1
                self._completions.append(event.wall_time)
                self._beats.pop(payload.get("task"), None)
            elif kind == "executor.task_failed":
                self._failed += 1
                self._beats.pop(payload.get("task"), None)
            elif kind == "executor.retry":
                cause = str(payload.get("cause", "unknown"))
                self._retries_by_cause[cause] = self._retries_by_cause.get(cause, 0) + 1
                self._beats.pop(payload.get("task"), None)
            elif kind == "executor.heartbeat":
                self._heartbeats += 1
                task = payload.get("task")
                if task is not None:
                    self._beats[task] = {**payload, "wall_time": event.wall_time}
            elif kind == "executor.complete":
                self._last_complete = dict(payload)
                self._beats.clear()
                self._running = False
            elif kind in ("journal.append", "journal.replayed"):
                self._journal_records = int(payload.get("records", 0))
            elif kind == "journal.quarantined":
                self._journal_quarantined += int(payload.get("lines", 1))
            elif kind == "chaos.fired":
                site = str(payload.get("site", "?"))
                self._chaos_fired[site] = self._chaos_fired.get(site, 0) + 1
            elif kind == "sweep.point":
                self._sweep_done += 1
                self._last_sweep = dict(payload)
            elif kind == "adaptive.progress":
                self._last_adaptive = dict(payload)

    # -- query side ---------------------------------------------------- #

    def _rate(self) -> float | None:
        """Windowed completions/second, or ``None`` before two completions."""
        if len(self._completions) < 2:
            return None
        span = self._completions[-1] - self._completions[0]
        if span <= 0:
            return None
        return (len(self._completions) - 1) / span

    def status(self) -> dict:
        """The current ``/status`` document (JSON-safe, self-contained)."""
        now = time.time()
        with self._lock:
            remaining = max(0, self._tasks_total - self._completed - self._failed)
            rate = self._rate()
            eta_s = remaining / rate if (rate and self._running) else None
            workers = {
                str(task): {
                    "pid": beat.get("pid"),
                    "attempt": beat.get("attempt"),
                    "elapsed_s": beat.get("elapsed_s"),
                    "heartbeat_age_s": max(0.0, now - beat["wall_time"]),
                }
                for task, beat in self._beats.items()
            }
            return sanitize_nonfinite(
                {
                    **artifact_stamp(),
                    "running": self._running,
                    "started_wall": self._started_wall,
                    "tasks": {
                        "total": self._tasks_total,
                        "completed": self._completed,
                        "failed": self._failed,
                        "remaining": remaining,
                        "retries": sum(self._retries_by_cause.values()),
                        "retries_by_cause": dict(self._retries_by_cause),
                    },
                    "rate_per_s": rate,
                    "eta_s": eta_s,
                    "workers": workers,
                    "heartbeats": self._heartbeats,
                    "journal": {
                        "records": self._journal_records,
                        "quarantined": self._journal_quarantined,
                    },
                    "chaos_fired": dict(self._chaos_fired),
                    "sweep": {"points_done": self._sweep_done, "last": self._last_sweep},
                    "adaptive": self._last_adaptive,
                    "last_complete": self._last_complete,
                    "events_seen": self._events_seen,
                }
            )


# ---------------------------------------------------------------------- #
# SSE fan-out
# ---------------------------------------------------------------------- #


class SseSink(ProgressSink):
    """Bridge the progress stream to Server-Sent-Events subscribers.

    Each subscriber owns a bounded queue; a consumer that stops reading
    loses events (counted in :attr:`dropped`) instead of exerting any
    backpressure on the campaign. ``None`` is the shutdown sentinel.
    """

    def __init__(self, max_queue: int = 256) -> None:
        self._lock = threading.Lock()
        self._subscribers: list[queue.Queue] = []
        self._max_queue = max_queue
        self.dropped = 0
        self.delivered = 0
        self._closed = False

    def subscribe(self) -> queue.Queue:
        client: queue.Queue = queue.Queue(maxsize=self._max_queue)
        with self._lock:
            if self._closed:
                client.put_nowait(None)
            else:
                self._subscribers.append(client)
        return client

    def unsubscribe(self, client: queue.Queue) -> None:
        with self._lock:
            if client in self._subscribers:
                self._subscribers.remove(client)

    @property
    def subscribers(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def emit(self, event: ProgressEvent) -> None:
        with self._lock:
            clients = list(self._subscribers)
        if not clients:
            return
        frame = json.dumps(event.to_dict(), allow_nan=False)
        for client in clients:
            try:
                client.put_nowait(frame)
                self.delivered += 1
            except queue.Full:
                self.dropped += 1

    def close(self) -> None:
        with self._lock:
            self._closed = True
            clients = list(self._subscribers)
            self._subscribers.clear()
        for client in clients:
            try:
                client.put_nowait(None)
            except queue.Full:
                pass  # the pending backlog still ends with a dead connection


# ---------------------------------------------------------------------- #
# the HTTP server
# ---------------------------------------------------------------------- #

_OPENMETRICS_CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


class StatusServer:
    """Background-thread HTTP server for live campaign telemetry.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` picks a free port (see :attr:`port`
        after :meth:`start`).
    tracker:
        The :class:`StatusTracker` backing ``/status`` (optional — the
        endpoint reports ``tracker: null`` without one).
    sse:
        The :class:`SseSink` backing ``/events`` (optional — the endpoint
        returns 503 without one).
    estimator:
        The :class:`~repro.obs.estimator.EstimatorTracker` backing
        ``/estimates`` (optional — the endpoint returns 503 without one).
        Its per-stratum posterior families are also appended to
        ``/metrics`` and its document embedded in ``/status``, so
        ``repro top`` sees the same estimates from a URL and a JSONL
        replay.
    labels:
        Labels attached to every ``/metrics`` sample (campaign id, pid).
    keepalive_s:
        Idle interval after which ``/events`` emits an SSE comment so
        proxies and clients can tell a quiet campaign from a dead one.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        tracker: StatusTracker | None = None,
        sse: SseSink | None = None,
        labels: Mapping[str, str] | None = None,
        keepalive_s: float = 15.0,
        estimator=None,
    ) -> None:
        self.host = host
        self.requested_port = port
        self.tracker = tracker
        self.sse = sse
        self.estimator = estimator
        self.labels = dict(labels or {})
        self.keepalive_s = keepalive_s
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._started_wall: float | None = None

    # -- lifecycle ----------------------------------------------------- #

    @property
    def port(self) -> int:
        """The bound port (resolves port-0 requests after :meth:`start`)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self.requested_port

    @property
    def url(self) -> str:
        host = self.host if ":" not in self.host else f"[{self.host}]"
        return f"http://{host}:{self.port}"

    def start(self) -> "StatusServer":
        """Bind and serve on a daemon thread; returns ``self``."""
        if self._httpd is not None:
            raise RuntimeError("status server already started")
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self.requested_port), handler)
        self._httpd.daemon_threads = True
        self._stopping.clear()
        self._started_wall = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-status-server",
            daemon=True,
        )
        self._thread.start()
        _LOGGER.info("status server listening on %s", self.url)
        return self

    def stop(self) -> None:
        """Shut down the listener and unblock every SSE stream."""
        if self._httpd is None:
            return
        self._stopping.set()
        if self.sse is not None:
            self.sse.close()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- endpoint payloads (handler delegates here) --------------------- #

    def metrics_payload(self) -> str:
        import repro.obs as obs  # lazy: repro.obs must not import this module eagerly
        from repro.obs.openmetrics import render_openmetrics

        registry = obs.metrics()
        snapshot = registry.snapshot() if registry is not None else None
        families = self.estimator.metric_families() if self.estimator is not None else None
        return render_openmetrics(snapshot, labels=self.labels or None, families=families)

    def estimates_payload(self) -> dict | None:
        """The ``/estimates`` document, or ``None`` with no estimator attached."""
        if self.estimator is None:
            return None
        return {**artifact_stamp(), **self.estimator.estimates()}

    def status_payload(self) -> dict:
        document = self.tracker.status() if self.tracker is not None else {"tracker": None}
        if self.estimator is not None:
            document["estimator"] = self.estimator.estimates()
        document["server"] = {
            "url": self.url,
            "uptime_s": (time.time() - self._started_wall) if self._started_wall else 0.0,
            "sse_subscribers": self.sse.subscribers if self.sse is not None else 0,
            "sse_dropped": self.sse.dropped if self.sse is not None else 0,
        }
        return document


def _make_handler(server: StatusServer):
    """Build the request-handler class bound to one :class:`StatusServer`."""

    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # requests are logged at debug, not printed to stderr
        def log_message(self, fmt, *args):  # noqa: A003 — BaseHTTPRequestHandler API
            _LOGGER.debug("%s %s", self.address_string(), fmt % args)

        def _send_text(self, body: str, content_type: str, code: int = 200) -> None:
            payload = body.encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_json(self, document, code: int = 200) -> None:
            self._send_text(
                json.dumps(sanitize_nonfinite(document), allow_nan=False, indent=2) + "\n",
                "application/json; charset=utf-8",
                code,
            )

        def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path == "/healthz":
                    self._send_text("ok\n", "text/plain; charset=utf-8")
                elif path == "/metrics":
                    self._send_text(server.metrics_payload(), _OPENMETRICS_CONTENT_TYPE)
                elif path == "/status":
                    self._send_json(server.status_payload())
                elif path == "/estimates":
                    document = server.estimates_payload()
                    if document is None:
                        self._send_json({"error": "no estimator attached"}, code=503)
                    else:
                        self._send_json(document)
                elif path == "/events":
                    self._serve_events()
                elif path == "/":
                    self._send_json(
                        {
                            **artifact_stamp(),
                            "endpoints": [
                                "/metrics", "/status", "/estimates", "/events", "/healthz",
                            ],
                        }
                    )
                else:
                    self._send_json({"error": f"no such endpoint {path!r}"}, code=404)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away; nothing to salvage
            except Exception as exc:  # noqa: BLE001 — a handler bug must not kill the thread
                _LOGGER.warning("status server: %s failed: %s", path, exc)
                try:
                    self._send_json({"error": str(exc)}, code=500)
                except OSError:
                    pass

        def _serve_events(self) -> None:
            if server.sse is None:
                self._send_json({"error": "no event stream attached"}, code=503)
                return
            client = server.sse.subscribe()
            try:
                self.send_response(200)
                self.send_header("Content-Type", "text/event-stream; charset=utf-8")
                self.send_header("Cache-Control", "no-store")
                # SSE is unbounded; close delimits the stream instead of a length
                self.send_header("Connection", "close")
                self.end_headers()
                while not server._stopping.is_set():
                    try:
                        frame = client.get(timeout=server.keepalive_s)
                    except queue.Empty:
                        self.wfile.write(b": keepalive\n\n")
                        self.wfile.flush()
                        continue
                    if frame is None:  # shutdown sentinel
                        break
                    self.wfile.write(f"data: {frame}\n\n".encode("utf-8"))
                    self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass  # consumer disconnected; drop its queue and move on
            finally:
                server.sse.unsubscribe(client)
                self.close_connection = True

    return _Handler
