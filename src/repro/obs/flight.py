"""Flight recorder: a bounded ring of recent events + crash postmortems.

Post-hoc artifacts (metrics JSON, traces, progress JSONL) answer "what
happened over the whole run"; a *crash* needs the opposite — a small,
always-on window of what happened **just before** things went wrong. The
:class:`FlightRecorder` keeps a bounded ring buffer of recent structured
events (every :func:`repro.obs.publish` event — chaos fires, worker
heartbeats, retries, journal appends and CRC quarantines, task
completions/failures — plus anything recorded explicitly) and, on
campaign failure/degrade/abort or on ``SIGUSR1``, atomically dumps a
*postmortem bundle*:

* the ring buffer contents (most recent last),
* the attached :class:`~repro.obs.MetricsRegistry` snapshot,
* the profiler hot-spot table (when ``--profile`` is on),
* the active chaos plan and its per-site fire counts,
* the installed estimator tracker's per-stratum posterior document
  (:mod:`repro.obs.estimator`), so a postmortem carries the statistical
  state of the campaign at death, not just its mechanics,
* executor completeness accounting when the executor triggered the dump,
* environment (python/numpy/platform/pid) and the schema stamp.

Bundles are written through :mod:`repro.utils.persist`
(atomic + checksummed) and load back via :func:`load_postmortem`, which
accepts stamp-less v0 bundles.

Like every obs instrument the recorder is strictly passive: recording is
an O(1) deque append under a lock, nothing touches an RNG stream, and
when no recorder is installed the hook is a single ``None`` check.
"""

from __future__ import annotations

import itertools
import os
import platform
import signal
import sys
import threading
from typing import Mapping

from repro.obs.schema import artifact_stamp, artifact_version
from repro.utils.logging import get_logger
from repro.utils.persist import atomic_write_json, read_checked_json, sanitize_nonfinite

__all__ = [
    "FlightRecorder",
    "PostmortemError",
    "active",
    "install",
    "uninstall",
    "record",
    "autodump",
    "enable_signal_dump",
    "load_postmortem",
]

_LOGGER = get_logger("obs.flight")

#: default ring capacity — big enough to cover the tail of a large
#: campaign (heartbeats + task events), small enough to dump instantly
DEFAULT_CAPACITY = 512


class PostmortemError(RuntimeError):
    """A postmortem bundle is unreadable or not a postmortem."""


class FlightRecorder:
    """Bounded ring buffer of recent structured events with postmortem dumps.

    Parameters
    ----------
    capacity:
        Ring size; the oldest events fall off as new ones arrive.
    autodump_dir:
        Directory for automatic dumps (executor failure hooks, SIGUSR1).
        ``None`` disables automatic dumping — :meth:`dump` still works
        with an explicit path.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, autodump_dir: str | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        from collections import deque

        self.capacity = capacity
        self.autodump_dir = autodump_dir
        self._ring: "deque[dict]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._dropped = 0
        self._recorded = 0
        self._dump_counter = itertools.count(1)
        #: paths of every bundle this recorder has written (newest last)
        self.dumps: list[str] = []

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def record(self, kind: str, **payload) -> None:
        """Append one structured event to the ring (cheap, thread-safe)."""
        import time

        event = {"kind": kind, "wall_time": time.time(), "pid": os.getpid(), **payload}
        with self._lock:
            if len(self._ring) == self.capacity:
                self._dropped += 1
            self._ring.append(event)
            self._recorded += 1

    def record_event(self, event) -> None:
        """Append a :class:`~repro.obs.progress.ProgressEvent` (publish hook)."""
        with self._lock:
            if len(self._ring) == self.capacity:
                self._dropped += 1
            self._ring.append(event.to_dict())
            self._recorded += 1

    def events(self) -> list[dict]:
        """Ring contents, oldest first."""
        with self._lock:
            return list(self._ring)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including those aged off the ring)."""
        with self._lock:
            return self._recorded

    @property
    def dropped(self) -> int:
        """Events that aged off the bounded ring."""
        with self._lock:
            return self._dropped

    # ------------------------------------------------------------------ #
    # postmortem bundles
    # ------------------------------------------------------------------ #

    def bundle(self, reason: str, stats: Mapping | None = None) -> dict:
        """Assemble the postmortem payload (no I/O)."""
        import numpy

        import repro.obs as obs
        from repro.obs.profile import wall_display

        registry = obs.metrics()
        profiler = obs.profiler()
        chaos = sys.modules.get("repro.exec.chaos")
        injector = chaos.active() if chaos is not None else None
        estimator_mod = sys.modules.get("repro.obs.estimator")
        estimator = estimator_mod.active() if estimator_mod is not None else None
        with self._lock:
            events = list(self._ring)
            dropped = self._dropped
            recorded = self._recorded
        return sanitize_nonfinite(
            {
                **artifact_stamp(),
                "bundle": "repro-postmortem",
                "reason": reason,
                "created": wall_display(),
                "pid": os.getpid(),
                "environment": {
                    "python": platform.python_version(),
                    "numpy": numpy.__version__,
                    "platform": sys.platform,
                    "cpu_count": os.cpu_count(),
                    "argv": list(sys.argv),
                },
                "events": events,
                "events_recorded": recorded,
                "events_dropped": dropped,
                "metrics": registry.snapshot() if registry is not None else None,
                "profile_hotspots": profiler.hotspot_rows(30) if profiler is not None else None,
                "chaos": None
                if injector is None
                else {"plan": injector.plan.describe(), "fired": injector.fired()},
                "estimator": estimator.estimates() if estimator is not None else None,
                "executor": dict(stats) if stats is not None else None,
            }
        )

    def dump(self, path: str | None = None, reason: str = "manual", stats: Mapping | None = None) -> str:
        """Atomically write a postmortem bundle; returns its path.

        With no explicit ``path``, a unique name is minted under
        ``autodump_dir`` (which must then be set).
        """
        if path is None:
            if self.autodump_dir is None:
                raise ValueError("no path given and autodump_dir is not set")
            slug = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)
            path = os.path.join(
                self.autodump_dir,
                f"postmortem-{os.getpid()}-{next(self._dump_counter)}-{slug}.json",
            )
        atomic_write_json(path, self.bundle(reason, stats=stats))
        self.dumps.append(path)
        _LOGGER.warning("flight recorder: postmortem bundle written to %s (%s)", path, reason)
        return path

    def maybe_autodump(self, reason: str, stats: Mapping | None = None) -> str | None:
        """Dump iff automatic dumping is configured; never raises into callers."""
        if self.autodump_dir is None:
            return None
        try:
            return self.dump(reason=reason, stats=stats)
        except Exception as exc:  # noqa: BLE001 — a failing dump must not mask the failure
            _LOGGER.warning("flight recorder: postmortem dump failed: %s", exc)
            return None

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(capacity={self.capacity}, events={len(self.events())}, "
            f"autodump_dir={self.autodump_dir!r})"
        )


# ---------------------------------------------------------------------- #
# process-global installation (mirrors repro.exec.chaos)
# ---------------------------------------------------------------------- #

_active: FlightRecorder | None = None


def active() -> FlightRecorder | None:
    """The installed recorder, or ``None`` (recording off — the default)."""
    return _active


def install(recorder: FlightRecorder | None = None) -> FlightRecorder:
    """Install a recorder process-wide; returns the live instance."""
    global _active
    _active = recorder if recorder is not None else FlightRecorder()
    return _active


def uninstall() -> None:
    """Disable the flight recorder (the hook back to a ``None`` check)."""
    global _active
    _active = None


def record(kind: str, **payload) -> None:
    """Module-level hook: record iff a recorder is installed (free when off)."""
    if _active is not None:
        _active.record(kind, **payload)


def autodump(reason: str, stats: Mapping | None = None) -> str | None:
    """Module-level hook: auto-dump a bundle iff a recorder is installed."""
    if _active is None:
        return None
    return _active.maybe_autodump(reason, stats=stats)


def enable_signal_dump(recorder: FlightRecorder) -> bool:
    """Dump a postmortem bundle on ``SIGUSR1`` (where the platform has it).

    Returns whether the handler was installed. Only callable from the
    main thread (signal module restriction); the handler is best-effort
    and never raises into the interrupted frame.
    """
    if not hasattr(signal, "SIGUSR1"):
        return False

    def _handler(signum, frame):  # noqa: ARG001 — signal handler signature
        recorder.maybe_autodump("sigusr1")

    try:
        signal.signal(signal.SIGUSR1, _handler)
    except ValueError:  # not the main thread
        return False
    return True


def load_postmortem(path: str) -> dict:
    """Load a postmortem bundle written by :meth:`FlightRecorder.dump`.

    Verifies the persistence checksum, checks the bundle marker, and
    normalises the version fields — a stamp-less bundle loads as
    ``schema_version`` 0 (:mod:`repro.obs.schema`).
    """
    record_ = read_checked_json(path)
    if record_.get("bundle") != "repro-postmortem":
        raise PostmortemError(f"{path}: not a postmortem bundle")
    record_["schema_version"] = artifact_version(record_)
    record_.setdefault("repro_version", None)
    if not isinstance(record_.get("events"), list):
        raise PostmortemError(f"{path}: bundle has no events list")
    return record_
