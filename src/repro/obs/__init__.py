"""repro.obs — zero-dependency campaign observability.

The instrumentation spine of the library: a :class:`MetricsRegistry`
(counters/gauges/histograms with snapshot/merge reduction), a
:class:`Tracer` emitting Chrome-trace JSON viewable in Perfetto, and a
pluggable live :class:`ProgressSink` stream — wired through every
execution layer (injector campaigns, worker pools, journal fsyncs, MCMC
chain loops).

This module owns the *process-global* observability state the
instrumentation sites consult:

* :func:`tracer` — always returns a tracer; the default one is disabled,
  so ``with obs.tracer().span(...)`` costs a no-op until tracing is on;
* :func:`metrics` — the attached driver-level registry, or ``None`` when
  detailed metrics are off (campaigns still stamp their own per-campaign
  digest either way);
* :func:`publish` — fire-and-forget progress events, dropped when no
  sink is configured;
* :func:`profiler` — the attached :class:`~repro.obs.profile.Profiler`,
  or ``None`` when profiling is off; :func:`phase` wraps a block in a
  profiler phase (a no-op context when detached).

Worker processes never share the driver's state: the executor captures a
picklable :func:`worker_config` (library verbosity + which instruments
are on) and each worker calls :func:`apply_worker_config` first thing,
replacing any state inherited through ``fork`` with fresh instruments.
Metrics ride home on each result's digest; trace events are drained via
:func:`drain_worker_report` and shipped over the result pipe.

Observability is deliberately *passive*: nothing here touches an RNG
stream, so instrumented campaigns are bit-identical to uninstrumented
ones.
"""

from __future__ import annotations

import contextlib
import logging
from dataclasses import dataclass

from repro.obs import flight as _flight_mod
from repro.obs import profile as _profile_mod
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import Profiler, profile_module
from repro.obs.schema import SCHEMA_VERSION, artifact_stamp, artifact_version
from repro.obs.progress import (
    JsonlSink,
    MemorySink,
    ProgressEvent,
    ProgressSink,
    StderrSink,
    TeeSink,
)
from repro.obs.trace import Tracer
from repro.utils.logging import get_verbosity, set_verbosity

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "profile_module",
    "Tracer",
    "ProgressEvent",
    "ProgressSink",
    "MemorySink",
    "JsonlSink",
    "StderrSink",
    "TeeSink",
    "SCHEMA_VERSION",
    "artifact_stamp",
    "artifact_version",
    "WorkerObsConfig",
    "configure",
    "reset",
    "metrics",
    "tracer",
    "progress",
    "profiler",
    "span",
    "phase",
    "publish",
    "merge_metrics",
    "merge_campaign_metrics",
    "worker_config",
    "apply_worker_config",
    "drain_worker_report",
]

_UNSET = object()

_metrics: MetricsRegistry | None = None
_tracer: Tracer = Tracer(enabled=False)
_progress: ProgressSink | None = None
_profiler: Profiler | None = None


# ---------------------------------------------------------------------- #
# global state
# ---------------------------------------------------------------------- #


def configure(metrics=_UNSET, tracer=_UNSET, progress=_UNSET, profiler=_UNSET) -> None:
    """Install observability instruments for this process.

    Only the arguments you pass change; each accepts ``None`` to detach.
    ``metrics=True`` / ``tracer=True`` / ``profiler=True`` are shorthand
    for fresh instances. The profiler is additionally published to the
    tensor-engine hot path (:data:`repro.obs.profile.ACTIVE`).
    """
    global _metrics, _tracer, _progress, _profiler
    if metrics is not _UNSET:
        _metrics = MetricsRegistry() if metrics is True else metrics
    if tracer is not _UNSET:
        if tracer is True:
            _tracer = Tracer(enabled=True)
        elif tracer is None:
            _tracer = Tracer(enabled=False)
        else:
            _tracer = tracer
    if progress is not _UNSET:
        _progress = progress
    if profiler is not _UNSET:
        _profiler = Profiler() if profiler is True else profiler
        _profile_mod._set_active(_profiler)


def reset() -> None:
    """Back to the defaults: no metrics, disabled tracer, no progress sink."""
    configure(metrics=None, tracer=None, progress=None, profiler=None)


def metrics() -> MetricsRegistry | None:
    """The attached driver-level registry, or ``None`` (detailed metrics off)."""
    return _metrics


def tracer() -> Tracer:
    """The process tracer (a disabled no-op tracer by default)."""
    return _tracer


def progress() -> ProgressSink | None:
    """The attached progress sink, or ``None``."""
    return _progress


def profiler() -> Profiler | None:
    """The attached profiler, or ``None`` (profiling off)."""
    return _profiler


# ---------------------------------------------------------------------- #
# instrumentation-site conveniences
# ---------------------------------------------------------------------- #


def span(name: str, **args):
    """``tracer().span(...)`` shorthand for instrumentation sites."""
    return _tracer.span(name, **args)


def phase(name: str):
    """``profiler().phase(...)`` shorthand; a no-op when profiling is off."""
    if _profiler is None:
        return contextlib.nullcontext()
    return _profiler.phase(name)


def publish(kind: str, /, **payload) -> None:
    """Publish a progress event; silently dropped when no sink is attached.

    Every published event is also offered to the installed flight
    recorder (:mod:`repro.obs.flight`) — with no recorder and no sink
    this is two ``None`` checks.
    """
    recorder = _flight_mod.active()
    if _progress is None and recorder is None:
        return
    event = ProgressEvent(kind=kind, payload=payload)
    if _progress is not None:
        _progress.publish(event)
    if recorder is not None:
        recorder.record_event(event)


def merge_metrics(snapshot: dict | None) -> None:
    """Merge a metrics snapshot into the attached registry (no-op if none)."""
    if _metrics is not None and snapshot:
        _metrics.merge(snapshot)


def merge_campaign_metrics(outcome) -> None:
    """Merge a campaign outcome's stamped metrics digest into the registry.

    Accepts a :class:`~repro.core.campaign.CampaignResult`, a
    ``(result, weighted)`` tempered pair, or anything without a
    ``metrics`` attribute (ignored). This is how results computed
    *elsewhere* — in a worker process, or restored from a journal — feed
    the driver's totals exactly once.
    """
    if _metrics is None:
        return
    if isinstance(outcome, tuple) and outcome:
        outcome = outcome[0]
    digest = getattr(outcome, "metrics", None)
    if isinstance(digest, dict):
        _metrics.merge(digest)


# ---------------------------------------------------------------------- #
# worker propagation
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class WorkerObsConfig:
    """Picklable observability state shipped to executor workers.

    Carries the driver's library log level (workers otherwise spawn at
    the default WARNING and their logs silently vanish) and which
    instruments to enable worker-side.
    """

    verbosity: int = logging.WARNING
    trace: bool = False
    detailed_metrics: bool = False
    profile: bool = False


def worker_config() -> WorkerObsConfig:
    """Capture this process's observability state for a worker to apply."""
    return WorkerObsConfig(
        verbosity=get_verbosity(),
        trace=_tracer.enabled,
        detailed_metrics=_metrics is not None,
        profile=_profiler is not None,
    )


def apply_worker_config(config: WorkerObsConfig) -> None:
    """Install a worker's observability state (first thing in the worker).

    Replaces any instruments inherited from the driver through ``fork``
    with fresh ones, so a worker never re-ships driver-recorded events,
    and detaches the progress sink (events cannot cross the process
    boundary; the driver publishes executor-level progress — including
    per-task ``estimate`` outcomes, on delivery — instead, so estimator
    telemetry has exactly one source regardless of pool shape).
    """
    set_verbosity(config.verbosity)
    configure(
        metrics=MetricsRegistry() if config.detailed_metrics else None,
        tracer=Tracer(enabled=config.trace),
        progress=None,
        profiler=Profiler() if config.profile else None,
    )


def drain_worker_report() -> dict:
    """Collect worker-side observations to ship back over the result pipe."""
    report: dict = {}
    if _tracer.enabled:
        events = _tracer.drain()
        if events:
            report["trace"] = events
    if _profiler is not None:
        snapshot = _profiler.snapshot()
        if any(snapshot.values()):
            report["profile"] = snapshot
    return report
