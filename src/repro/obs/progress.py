"""Live progress events and pluggable sinks.

Long campaigns publish small, structured :class:`ProgressEvent`s while
they run — windowed mixing diagnostics from adaptive campaigns, per-point
sweep completions, executor heartbeats, chain-loop checkpoints — so a
multi-hour run is observable *before* its final JSON lands.

Events flow to a :class:`ProgressSink`:

* :class:`MemorySink` — in-process list, for tests and notebooks;
* :class:`JsonlSink` — one JSON object per line, machine-tailable
  (``tail -f campaign.progress.jsonl | jq``);
* :class:`StderrSink` — human-readable one-line-per-event stream
  (the CLI's ``--progress`` flag);
* :class:`TeeSink` — fan out to several sinks at once.

Publishing is fire-and-forget and never raises into the campaign: a sink
that fails is logged and the campaign continues — observability must not
take down the thing it observes.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field

from repro.utils.logging import get_logger
from repro.utils.persist import sanitize_nonfinite

__all__ = ["ProgressEvent", "ProgressSink", "MemorySink", "JsonlSink", "StderrSink", "TeeSink"]

_LOGGER = get_logger("obs.progress")


@dataclass(frozen=True)
class ProgressEvent:
    """One observation published mid-campaign.

    ``kind`` namespaces the event (``adaptive.progress``, ``sweep.point``,
    ``executor.heartbeat``, ``chain.progress``, ``task.done`` …);
    ``payload`` carries the numbers. ``wall_time`` is the Unix timestamp
    at publication and ``pid`` the publishing process.
    """

    kind: str
    payload: dict = field(default_factory=dict)
    wall_time: float = field(default_factory=time.time)
    pid: int = field(default_factory=os.getpid)

    def to_dict(self) -> dict:
        # envelope fields written last so a payload key can never clobber them
        return sanitize_nonfinite(
            {**self.payload, "kind": self.kind, "wall_time": self.wall_time, "pid": self.pid}
        )

    def render(self) -> str:
        """Compact single-line rendering for terminal streams."""
        parts = []
        for key, value in self.payload.items():
            if isinstance(value, float):
                parts.append(f"{key}={value:.4g}")
            elif isinstance(value, (list, dict)):
                parts.append(f"{key}={json.dumps(sanitize_nonfinite(value))}")
            else:
                parts.append(f"{key}={value}")
        return f"[{self.kind}] " + " ".join(parts)


class ProgressSink:
    """Base sink; subclasses implement :meth:`emit`."""

    def publish(self, event: ProgressEvent) -> None:
        """Deliver one event; failures are contained (logged, not raised)."""
        try:
            self.emit(event)
        except Exception as exc:  # noqa: BLE001 — observability must not kill campaigns
            _LOGGER.warning("progress sink %s failed: %s", type(self).__name__, exc)

    def emit(self, event: ProgressEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; further publishes are undefined."""


class MemorySink(ProgressSink):
    """Collect events in memory (tests, notebooks)."""

    def __init__(self) -> None:
        self.events: list[ProgressEvent] = []

    def emit(self, event: ProgressEvent) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[ProgressEvent]:
        return [event for event in self.events if event.kind == kind]


class JsonlSink(ProgressSink):
    """Append events as JSON lines to a file (machine-tailable).

    A fresh file opens with one ``progress.header`` line carrying the
    artifact schema stamp (:mod:`repro.obs.schema`); consumers treat the
    header as just another event, and stamp-less streams written by
    older versions still load as v0.
    """

    def __init__(self, path: str) -> None:
        from repro.obs.schema import artifact_stamp

        self.path = os.path.abspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        if self._handle.tell() == 0:  # new stream: stamp it before any event
            self._handle.write(
                json.dumps({**artifact_stamp(), "kind": "progress.header"}, allow_nan=False) + "\n"
            )
            self._handle.flush()

    def emit(self, event: ProgressEvent) -> None:
        self._handle.write(json.dumps(event.to_dict(), allow_nan=False) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class StderrSink(ProgressSink):
    """Render events as one-line progress messages on a stream."""

    def __init__(self, stream=None) -> None:
        self._stream = stream

    def emit(self, event: ProgressEvent) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        stream.write(event.render() + "\n")
        stream.flush()


class TeeSink(ProgressSink):
    """Fan one event stream out to several sinks."""

    def __init__(self, *sinks: ProgressSink) -> None:
        self.sinks = list(sinks)

    def emit(self, event: ProgressEvent) -> None:
        for sink in self.sinks:
            sink.publish(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
