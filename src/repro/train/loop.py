"""The training loop.

:class:`Trainer` runs mini-batch gradient descent over a
:class:`~repro.data.loader.DataLoader`, tracking loss and accuracy per
epoch, with optional validation and LR scheduling. Deliberately simple —
enough to produce the golden networks the paper's campaigns start from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad
from repro.train.losses import CrossEntropyLoss
from repro.train.metrics import accuracy
from repro.train.optim import Optimizer
from repro.train.schedules import _Schedule
from repro.utils.logging import get_logger

__all__ = ["Trainer", "TrainResult"]

_LOGGER = get_logger("train")


@dataclass
class TrainResult:
    """Per-epoch history of a training run."""

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def final_train_accuracy(self) -> float:
        return self.train_accuracy[-1] if self.train_accuracy else float("nan")

    @property
    def final_val_accuracy(self) -> float:
        return self.val_accuracy[-1] if self.val_accuracy else float("nan")


class Trainer:
    """Mini-batch trainer for classification models.

    Parameters
    ----------
    model:
        Module mapping a batch tensor to logits.
    optimizer:
        Any :class:`~repro.train.optim.Optimizer` over the model parameters.
    loss_fn:
        Callable ``(logits, labels) -> Tensor``; defaults to cross-entropy.
    schedule:
        Optional learning-rate schedule stepped once per epoch.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Callable | None = None,
        schedule: _Schedule | None = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn or CrossEntropyLoss()
        self.schedule = schedule

    def fit(self, train_loader, epochs: int, val_loader=None) -> TrainResult:
        """Train for ``epochs`` passes over ``train_loader``.

        ``train_loader``/``val_loader`` yield ``(inputs, labels)`` with
        numpy arrays; see :class:`repro.data.DataLoader`.
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        result = TrainResult()
        for epoch in range(epochs):
            if self.schedule is not None:
                self.schedule.step(epoch)
            loss, acc = self._run_epoch(train_loader)
            result.train_loss.append(loss)
            result.train_accuracy.append(acc)
            message = f"epoch {epoch}: loss={loss:.4f} acc={acc:.4f}"
            if val_loader is not None:
                val_acc = self.evaluate(val_loader)
                result.val_accuracy.append(val_acc)
                message += f" val_acc={val_acc:.4f}"
            _LOGGER.info(message)
        return result

    def _run_epoch(self, loader) -> tuple[float, float]:
        self.model.train()
        total_loss = 0.0
        total_correct = 0.0
        total_count = 0
        for inputs, labels in loader:
            x = Tensor(inputs)
            logits = self.model(x)
            loss = self.loss_fn(logits, labels)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            batch = len(labels)
            total_loss += loss.item() * batch
            total_correct += accuracy(logits, labels) * batch
            total_count += batch
        if total_count == 0:
            raise ValueError("loader produced no batches")
        return total_loss / total_count, total_correct / total_count

    def evaluate(self, loader) -> float:
        """Accuracy of the model (eval mode, no grad) over ``loader``."""
        self.model.eval()
        correct = 0.0
        count = 0
        with no_grad():
            for inputs, labels in loader:
                logits = self.model(Tensor(inputs))
                correct += accuracy(logits, labels) * len(labels)
                count += len(labels)
        self.model.train()
        if count == 0:
            raise ValueError("loader produced no batches")
        return correct / count
