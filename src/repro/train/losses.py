"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss:
    """Softmax cross-entropy on integer class labels.

    Expects raw logits of shape ``(batch, classes)`` and labels of shape
    ``(batch,)``. Combines log-softmax and NLL in one numerically stable op.
    """

    def __call__(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (batch, classes), got shape {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ValueError(f"labels shape {labels.shape} does not match batch {logits.shape[0]}")
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise ValueError("labels out of range for the given number of classes")
        log_probs = F.log_softmax(logits, axis=1)
        picked = log_probs[np.arange(len(labels)), labels]
        return -picked.mean()


class MSELoss:
    """Mean squared error between two tensors of identical shape."""

    def __call__(self, prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
        if not isinstance(target, Tensor):
            target = Tensor(np.asarray(target, dtype=np.float32))
        if prediction.shape != target.shape:
            raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
        diff = prediction - target
        return (diff * diff).mean()
