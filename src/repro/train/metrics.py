"""Classification metrics.

``classification_error`` is the paper's headline metric: the y-axis of
Figs. 2–4 is "Classification Error (%)".
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["accuracy", "classification_error", "confusion_matrix", "top_k_accuracy"]


def _logits_array(logits: Tensor | np.ndarray) -> np.ndarray:
    return logits.data if isinstance(logits, Tensor) else np.asarray(logits)


def accuracy(logits: Tensor | np.ndarray, labels: np.ndarray) -> float:
    """Fraction of samples whose argmax prediction matches the label."""
    arr = _logits_array(logits)
    labels = np.asarray(labels)
    if arr.shape[0] != labels.shape[0]:
        raise ValueError(f"batch mismatch: {arr.shape[0]} logits vs {labels.shape[0]} labels")
    return float((arr.argmax(axis=1) == labels).mean())


def classification_error(logits: Tensor | np.ndarray, labels: np.ndarray) -> float:
    """Misclassification rate in [0, 1] (multiply by 100 for the paper's %)."""
    return 1.0 - accuracy(logits, labels)


def top_k_accuracy(logits: Tensor | np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose label is among the top-k logits."""
    arr = _logits_array(logits)
    labels = np.asarray(labels)
    if k < 1 or k > arr.shape[1]:
        raise ValueError(f"k must be in [1, {arr.shape[1]}], got {k}")
    top = np.argpartition(-arr, k - 1, axis=1)[:, :k]
    return float((top == labels[:, None]).any(axis=1).mean())


def confusion_matrix(logits: Tensor | np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Counts[i, j] = samples of true class i predicted as class j."""
    arr = _logits_array(logits)
    preds = arr.argmax(axis=1)
    labels = np.asarray(labels)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, preds), 1)
    return matrix
