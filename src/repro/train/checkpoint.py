"""Checkpointing golden-network weights.

Checkpoints are plain ``.npz`` archives of the flat ``state_dict`` plus a
``__meta__/…`` namespace for scalars (accuracy, seed, epoch). Campaigns
load the golden weights with :func:`load_checkpoint` before constructing
the Bayesian fault model.
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]

_META_PREFIX = "__meta__/"


def save_checkpoint(model: Module, path: str, **metadata: float | int | str) -> None:
    """Write the model ``state_dict`` and scalar metadata to ``path`` (npz)."""
    payload: dict[str, np.ndarray] = dict(model.state_dict())
    for key, value in metadata.items():
        if "/" in key:
            raise ValueError(f"metadata key may not contain '/': {key!r}")
        payload[_META_PREFIX + key] = np.asarray(value)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **payload)


def load_checkpoint(model: Module, path: str) -> dict[str, object]:
    """Load weights saved by :func:`save_checkpoint` into ``model``.

    Returns the metadata dict (scalars converted back to Python types).
    """
    with np.load(path, allow_pickle=False) as archive:
        state: dict[str, np.ndarray] = {}
        metadata: dict[str, object] = {}
        for key in archive.files:
            if key.startswith(_META_PREFIX):
                value = archive[key]
                metadata[key[len(_META_PREFIX):]] = value.item() if value.ndim == 0 else value
            else:
                state[key] = archive[key]
    model.load_state_dict(state)
    return metadata
