"""Checkpointing golden-network weights.

Checkpoints are plain ``.npz`` archives of the flat ``state_dict`` plus a
``__meta__/…`` namespace for scalars (accuracy, seed, epoch). Campaigns
load the golden weights with :func:`load_checkpoint` before constructing
the Bayesian fault model.

Writes are atomic — the archive is assembled in a temporary file in the
target directory, fsync'd, and moved into place with ``os.replace`` — and
carry a SHA-256 content checksum over every array's name, dtype, shape,
and raw bytes. :func:`load_checkpoint` re-verifies the checksum, so a
golden checkpoint can neither be torn by a crash mid-save nor silently
bit-rot under a campaign.
"""

from __future__ import annotations

import hashlib
import io
import os
import tempfile

import numpy as np

from repro.nn.module import Module
from repro.utils.persist import ChecksumError, _fsync_directory

__all__ = ["save_checkpoint", "load_checkpoint"]

_META_PREFIX = "__meta__/"
_CHECKSUM_KEY = _META_PREFIX + "__checksum__"


def _payload_checksum(payload: dict[str, np.ndarray]) -> str:
    """SHA-256 over (name, dtype, shape, bytes) of every entry, sorted by name."""
    digest = hashlib.sha256()
    for key in sorted(payload):
        array = np.ascontiguousarray(payload[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def save_checkpoint(model: Module, path: str, **metadata: float | int | str) -> None:
    """Atomically write the model ``state_dict`` and scalar metadata (npz)."""
    payload: dict[str, np.ndarray] = dict(model.state_dict())
    for key, value in metadata.items():
        if "/" in key:
            raise ValueError(f"metadata key may not contain '/': {key!r}")
        payload[_META_PREFIX + key] = np.asarray(value)
    payload[_CHECKSUM_KEY] = np.asarray(_payload_checksum(payload))
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # np.savez appends ".npz" to bare paths, so write via an in-memory
    # buffer and land the bytes through tmp-file + os.replace ourselves.
    buffer = io.BytesIO()
    np.savez(buffer, **payload)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(buffer.getvalue())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    _fsync_directory(directory)


def load_checkpoint(model: Module, path: str) -> dict[str, object]:
    """Load weights saved by :func:`save_checkpoint` into ``model``.

    Verifies the embedded content checksum when present (checkpoints from
    before checksumming load unverified) and returns the metadata dict
    (scalars converted back to Python types, checksum excluded).
    """
    with np.load(path, allow_pickle=False) as archive:
        state: dict[str, np.ndarray] = {}
        metadata: dict[str, object] = {}
        recorded: str | None = None
        payload: dict[str, np.ndarray] = {}
        for key in archive.files:
            if key == _CHECKSUM_KEY:
                recorded = str(archive[key])
                continue
            payload[key] = archive[key]
            if key.startswith(_META_PREFIX):
                value = archive[key]
                metadata[key[len(_META_PREFIX):]] = value.item() if value.ndim == 0 else value
            else:
                state[key] = archive[key]
    if recorded is not None:
        actual = _payload_checksum(payload)
        if actual != recorded:
            raise ChecksumError(
                f"{path}: checkpoint checksum mismatch "
                f"(recorded {recorded[:12]}…, actual {actual[:12]}…); file is corrupt"
            )
    model.load_state_dict(state)
    return metadata
