"""Training infrastructure: losses, optimizers, schedules, and the Trainer.

Step 1 of the BDLFI procedure is "train the network to obtain the weights of
the golden network". This package provides that substrate: SGD/Adam,
cross-entropy, learning-rate schedules, a training loop with metric
tracking, and npz checkpointing so golden weights can be stored and reloaded
by injection campaigns.
"""

from repro.train.losses import CrossEntropyLoss, MSELoss
from repro.train.optim import SGD, Adam, Optimizer
from repro.train.schedules import ConstantLR, StepLR, CosineAnnealingLR
from repro.train.metrics import accuracy, classification_error, confusion_matrix
from repro.train.loop import Trainer, TrainResult
from repro.train.checkpoint import save_checkpoint, load_checkpoint

__all__ = [
    "CrossEntropyLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "ConstantLR",
    "StepLR",
    "CosineAnnealingLR",
    "accuracy",
    "classification_error",
    "confusion_matrix",
    "Trainer",
    "TrainResult",
    "save_checkpoint",
    "load_checkpoint",
]
