"""First-order optimizers.

Optimizers hold references to a model's parameters and update ``.data`` in
place from ``.grad``. Per-parameter state (momentum buffers, Adam moments)
is keyed by parameter identity.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer: parameter bookkeeping and ``zero_grad``."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                buf = self._velocity.get(id(param))
                if buf is None:
                    buf = np.zeros_like(param.data)
                    self._velocity[id(param)] = buf
                buf *= self.momentum
                buf += grad
                grad = grad + self.momentum * buf if self.nesterov else buf
            param.data -= (self.lr * grad).astype(param.data.dtype)


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._t
        bias2 = 1.0 - beta2**self._t
        step_size = self.lr * math.sqrt(bias2) / bias1
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.setdefault(id(param), np.zeros_like(param.data))
            v = self._v.setdefault(id(param), np.zeros_like(param.data))
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad * grad
            param.data -= (step_size * m / (np.sqrt(v) + self.eps)).astype(param.data.dtype)
