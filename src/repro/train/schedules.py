"""Learning-rate schedules.

A schedule wraps an optimizer and rewrites ``optimizer.lr`` when
``step(epoch)`` is called.
"""

from __future__ import annotations

import math

from repro.train.optim import Optimizer

__all__ = ["ConstantLR", "StepLR", "CosineAnnealingLR"]


class _Schedule:
    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self, epoch: int) -> float:
        """Set (and return) the learning rate for ``epoch``."""
        lr = self.lr_at(epoch)
        self.optimizer.lr = lr
        return lr


class ConstantLR(_Schedule):
    """Keep the base learning rate forever."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(_Schedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(_Schedule):
    """Cosine decay from base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))
