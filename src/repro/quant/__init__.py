"""Quantised (int8) storage and its fault model.

The paper's networks store parameters as "32-bit floating point numbers"
and note "BDLFI can also be extended to other fault models." The most
important other model in practice is fixed-point: embedded accelerators
(the paper's stated deployment target) overwhelmingly store weights as
int8. This package provides that extension:

* :func:`~repro.quant.quantize.quantize_tensor` /
  :func:`~repro.quant.quantize.dequantize_tensor` — symmetric per-tensor
  int8 quantisation;
* :func:`~repro.quant.quantize.quantize_model` — swap a trained model's
  parameters for their int8-roundtripped values (post-training
  quantisation; returns per-tensor scales and the accuracy you kept);
* :class:`~repro.quant.fault_model.QuantizedBitFlipModel` — Bernoulli
  per-bit flips applied in the *int8 code space*: the corruption of stored
  codes is converted to the equivalent float32 XOR mask, so every
  campaign, proposal, and restore path works unchanged.

Ablation A6 (``benchmarks/bench_quantization.py``) reproduces the known
result (Li et al. SC'17, Reagen et al. DAC'18) that fixed-point storage is
far more fault-resilient per bit than float32 — int8 has no exponent
field, so no single flip can explode a value beyond the tensor's scale.
"""

from repro.quant.quantize import quantize_tensor, dequantize_tensor, quantize_model, QuantizationReport
from repro.quant.fault_model import QuantizedBitFlipModel

__all__ = [
    "quantize_tensor",
    "dequantize_tensor",
    "quantize_model",
    "QuantizationReport",
    "QuantizedBitFlipModel",
]
