"""Bernoulli bit flips in int8 code space.

Each stored weight occupies 8 bits (two's-complement code); every bit is
an independent Bernoulli(p) flip, mirroring the paper's float32 model one
to one. The corruption is *value-dependent* in float32 terms — flipping
code bit b changes the dequantised value by ±scale·2^b depending on the
current code — so the model overrides
:meth:`~repro.faults.FaultModel.sample_mask_for` and emits the equivalent
float32 XOR mask. Everything downstream (apply/restore, configuration
algebra, campaigns) is unchanged.

Works on models processed by :func:`repro.quant.quantize_model`: stored
float values must be exact multiples of the per-target scale.
"""

from __future__ import annotations

import numpy as np

from repro.bits.float32 import float_to_bits
from repro.faults.model import FaultModel
from repro.quant.quantize import dequantize_tensor, quantize_tensor

__all__ = ["QuantizedBitFlipModel"]

_BITS_PER_CODE = 8


class QuantizedBitFlipModel(FaultModel):
    """Per-bit Bernoulli flips over the int8 codes of stored weights.

    Parameters
    ----------
    p:
        Per-bit flip probability (same AVF semantics as the float model).
    scales:
        Per-target quantisation scales from
        :func:`repro.quant.quantize_model`. The special key ``"*"`` is a
        fallback scale for unlisted targets.
    """

    def __init__(self, p: float, scales: dict[str, float], target: str = "*") -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"flip probability must be in [0, 1], got {p}")
        if not scales:
            raise ValueError("scales must be non-empty (use quantize_model's report)")
        for name, scale in scales.items():
            if scale <= 0:
                raise ValueError(f"scale for {name!r} must be positive, got {scale}")
        self.p = float(p)
        self.scales = dict(scales)
        self.target = target

    def for_target(self, target: str) -> "QuantizedBitFlipModel":
        return QuantizedBitFlipModel(self.p, self.scales, target)

    def _scale_for_current_target(self) -> float:
        if self.target in self.scales:
            return self.scales[self.target]
        if "*" in self.scales:
            return self.scales["*"]
        raise KeyError(f"no quantisation scale for target {self.target!r}")

    def sample_mask(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError(
            "QuantizedBitFlipModel is value-dependent; campaigns use sample_mask_for"
        )

    def sample_mask_for(self, values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        values = np.asarray(values, dtype=np.float32)
        scale = self._scale_for_current_target()
        codes = np.clip(np.round(values.astype(np.float64) / scale), -127, 127).astype(np.int8)

        # Bernoulli flips over the 8-bit code space, sampled sparsely.
        n_codes = codes.size
        total_bits = n_codes * _BITS_PER_CODE
        count = int(rng.binomial(total_bits, self.p)) if total_bits else 0
        if count == 0:
            return np.zeros(values.shape, dtype=np.uint32)
        positions = rng.choice(total_bits, size=count, replace=False)
        flat_codes = codes.reshape(-1).view(np.uint8).copy()
        elements = positions // _BITS_PER_CODE
        lanes = (positions % _BITS_PER_CODE).astype(np.uint8)
        np.bitwise_xor.at(flat_codes, elements, np.uint8(1) << lanes)

        corrupted = dequantize_tensor(flat_codes.view(np.int8), scale).reshape(values.shape)
        return float_to_bits(values) ^ float_to_bits(corrupted)

    def expected_flips(self, n_elements: int) -> float:
        return n_elements * _BITS_PER_CODE * self.p

    def __repr__(self) -> str:
        return f"QuantizedBitFlipModel(p={self.p}, target={self.target!r})"
