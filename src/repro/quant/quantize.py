"""Symmetric per-tensor int8 quantisation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.module import Module

__all__ = ["quantize_tensor", "dequantize_tensor", "quantize_model", "QuantizationReport"]

_INT8_MAX = 127


def quantize_tensor(values: np.ndarray) -> tuple[np.ndarray, float]:
    """Symmetric int8 quantisation: returns (codes, scale).

    ``codes = round(values / scale)`` clipped to [−127, 127], with
    ``scale = max|values| / 127``. An all-zero tensor gets scale 1.0.
    """
    values = np.asarray(values, dtype=np.float32)
    peak = float(np.abs(values).max()) if values.size else 0.0
    scale = peak / _INT8_MAX if peak > 0 else 1.0
    codes = np.clip(np.round(values / scale), -_INT8_MAX, _INT8_MAX).astype(np.int8)
    return codes, scale


def dequantize_tensor(codes: np.ndarray, scale: float) -> np.ndarray:
    """Inverse of :func:`quantize_tensor` (modulo rounding)."""
    codes = np.asarray(codes)
    if codes.dtype != np.int8:
        raise TypeError(f"expected int8 codes, got {codes.dtype}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return (codes.astype(np.float32)) * np.float32(scale)


@dataclass(frozen=True)
class QuantizationReport:
    """What post-training quantisation did to a model."""

    scales: dict[str, float]
    #: max |w − dequant(quant(w))| per parameter
    max_roundtrip_error: dict[str, float]

    @property
    def worst_roundtrip_error(self) -> float:
        return max(self.max_roundtrip_error.values()) if self.max_roundtrip_error else 0.0


def quantize_model(model: Module) -> QuantizationReport:
    """Replace every parameter in-place with its int8-roundtripped value.

    After this call the model *is* the deployed int8 network (executed in
    float arithmetic with exactly representable values, the standard
    simulation of integer accelerators). The returned report carries the
    per-tensor scales that :class:`repro.quant.QuantizedBitFlipModel`
    needs.
    """
    scales: dict[str, float] = {}
    errors: dict[str, float] = {}
    for name, param in model.named_parameters():
        codes, scale = quantize_tensor(param.data)
        restored = dequantize_tensor(codes, scale).reshape(param.data.shape)
        errors[name] = float(np.abs(param.data - restored).max())
        param.data[...] = restored
        scales[name] = scale
    return QuantizationReport(scales=scales, max_roundtrip_error=errors)
