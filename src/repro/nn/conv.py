"""2-D convolution layer."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["Conv2d"]


class Conv2d(Module):
    """Convolution over NCHW inputs.

    ``weight`` shape is ``(out_channels, in_channels, kernel, kernel)``.
    Square kernels only — sufficient for ResNet-18 and LeNet.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ValueError("channels, kernel_size, and stride must be positive")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        gen = as_generator(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kernel_size, kernel_size), gen)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}->{self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding}, bias={self.bias is not None}"
        )
