"""Weight initialisers.

All initialisers take an explicit ``numpy.random.Generator`` so that model
construction is reproducible — the golden run (step 1 of the BDLFI
procedure) must be re-derivable from a seed.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "kaiming_uniform",
    "kaiming_normal",
    "xavier_uniform",
    "xavier_normal",
    "zeros",
    "ones",
    "fan_in_and_out",
]


def fan_in_and_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense ``(in, out)`` or conv ``(out, in, kh, kw)`` shapes."""
    if len(shape) == 2:
        fan_in, fan_out = shape[0], shape[1]
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"cannot infer fans for shape {shape}")
    return fan_in, fan_out


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-uniform initialisation — the standard choice before ReLU."""
    fan_in, _ = fan_in_and_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)) -> np.ndarray:
    """He-normal initialisation."""
    fan_in, _ = fan_in_and_out(shape)
    std = gain / math.sqrt(fan_in)
    return (rng.normal(0.0, std, size=shape)).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform initialisation — used before tanh/sigmoid layers."""
    fan_in, fan_out = fan_in_and_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-normal initialisation."""
    fan_in, fan_out = fan_in_and_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
