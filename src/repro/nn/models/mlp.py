"""Multi-layer perceptron.

The paper's Fig. 1 network is an MLP whose hidden fully connected layer has
32 units (the Bayesian failure model shows Bernoulli variables b1..b32),
followed by a softmax output. :func:`paper_mlp` builds exactly that
topology; :class:`MLP` generalises to arbitrary depth for the extension
experiments.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.containers import Sequential
from repro.nn.layers import Dense
from repro.nn.module import Module
from repro.tensor.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["MLP", "paper_mlp"]


class MLP(Module):
    """Fully connected classifier with ReLU hidden layers.

    Outputs raw logits; pair with
    :class:`~repro.train.losses.CrossEntropyLoss` (which applies
    log-softmax) for training, or :func:`repro.tensor.softmax` to obtain the
    class distribution the paper's Fig. 1 depicts.

    Parameters
    ----------
    in_features:
        Input dimensionality (e.g. 2 for the decision-boundary study,
        3*32*32 for flattened images).
    hidden:
        Sizes of the hidden layers, e.g. ``(32,)`` for the paper MLP.
    num_classes:
        Output logits count.
    rng:
        Seed or generator for weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        hidden: tuple[int, ...],
        num_classes: int,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if not hidden:
            raise ValueError("MLP requires at least one hidden layer; use Dense directly otherwise")
        gen = as_generator(rng)
        self.in_features = in_features
        self.num_classes = num_classes

        layers: list[Module] = []
        previous = in_features
        for width in hidden:
            layers.append(Dense(previous, width, rng=gen))
            layers.append(ReLU())
            previous = width
        layers.append(Dense(previous, num_classes, rng=gen))
        self.layers = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.layers(x)

    def extra_repr(self) -> str:
        return f"in={self.in_features}, classes={self.num_classes}"


def paper_mlp(
    in_features: int = 2,
    num_classes: int = 2,
    hidden_units: int = 32,
    rng: int | np.random.Generator | None = None,
) -> MLP:
    """The MLP of the paper's Fig. 1: one 32-unit ReLU hidden layer + softmax head.

    Defaults to a 2-D input / binary output configuration matching the
    decision-boundary visualisation in Fig. 1 ③.
    """
    return MLP(in_features, (hidden_units,), num_classes, rng=rng)
