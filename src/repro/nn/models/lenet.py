"""LeNet-style CNN.

Not in the paper's evaluation; included as a third architecture for the
extension experiments (the paper's Section III closes with "We are
currently investigating this behavior on other NNs" — LeNet is the natural
next subject, being the canonical small CNN in the fault-injection
literature, e.g. Ares and TensorFI both evaluate it).
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.containers import Sequential
from repro.nn.conv import Conv2d
from repro.nn.layers import Dense, Flatten
from repro.nn.module import Module
from repro.nn.pooling import AvgPool2d, MaxPool2d
from repro.tensor.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["LeNet"]


class LeNet(Module):
    """Conv-pool ×2 then three dense layers, sized for 1×28×28 or 3×32×32 inputs.

    ``pool`` selects max (classic) or average pooling; the average variant
    is fully linear between ReLUs, which makes it analysable by
    :class:`repro.moments.MomentPropagator`.
    """

    def __init__(
        self,
        in_channels: int = 1,
        num_classes: int = 10,
        image_size: int = 28,
        pool: str = "max",
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if pool not in ("max", "avg"):
            raise ValueError(f"pool must be 'max' or 'avg', got {pool!r}")
        gen = as_generator(rng)
        self.num_classes = num_classes
        pool_layer = MaxPool2d if pool == "max" else AvgPool2d
        # Two (conv k5 p2, pool /2) stages preserve then halve resolution twice.
        feature_size = image_size // 4
        if feature_size < 1:
            raise ValueError(f"image_size {image_size} too small for LeNet")
        self.features = Sequential(
            Conv2d(in_channels, 6, 5, padding=2, rng=gen),
            ReLU(),
            pool_layer(2),
            Conv2d(6, 16, 5, padding=2, rng=gen),
            ReLU(),
            pool_layer(2),
        )
        self.classifier = Sequential(
            Flatten(),
            Dense(16 * feature_size * feature_size, 120, rng=gen),
            ReLU(),
            Dense(120, 84, rng=gen),
            ReLU(),
            Dense(84, num_classes, rng=gen),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))

    def extra_repr(self) -> str:
        return f"classes={self.num_classes}"
