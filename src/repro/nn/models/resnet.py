"""ResNet for CIFAR-style inputs.

The paper's Fig. 3 evaluates ResNet-18 — four stages of two BasicBlocks
each ("Conv / Batch Norm. + ReLU / Pooling / Dense" in the figure's legend,
with stage indices 0–5 marking the stem, the four stages, and the dense
head). This module implements that topology exactly:

* 3×3 stem convolution (CIFAR variant: no 7×7/stride-2 stem, no max-pool),
* stages of :class:`BasicBlock` (conv-bn-relu-conv-bn + identity/projection
  shortcut, then relu),
* global average pooling and a dense classifier.

:func:`resnet18` gives the standard widths (64-128-256-512);
:func:`resnet18_cifar_small` scales the widths down so CPU-only fault
injection campaigns finish in seconds — layer *structure*, which drives the
paper's finding F3 (no depth/error relationship), is unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.containers import Sequential
from repro.nn.conv import Conv2d
from repro.nn.layers import Dense, Identity
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.nn.pooling import GlobalAvgPool2d
from repro.tensor.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["BasicBlock", "ResNet", "resnet18", "resnet18_cifar_small"]


class BasicBlock(Module):
    """Two 3×3 conv-bn pairs with a residual shortcut.

    When the block changes resolution or width, the shortcut is a strided
    1×1 projection convolution followed by batch norm (option B of the
    ResNet paper), otherwise the identity.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        gen = as_generator(rng)
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=gen)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=gen)
        self.bn2 = BatchNorm2d(out_channels)
        self.relu2 = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=gen),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = out + self.shortcut(x)
        return self.relu2(out)


class ResNet(Module):
    """CIFAR-style residual network.

    Parameters
    ----------
    block_counts:
        Blocks per stage; ``(2, 2, 2, 2)`` gives ResNet-18.
    widths:
        Channel width per stage.
    num_classes:
        Output logits.
    in_channels:
        Image channels (3 for CIFAR-like inputs).
    """

    def __init__(
        self,
        block_counts: tuple[int, ...] = (2, 2, 2, 2),
        widths: tuple[int, ...] = (64, 128, 256, 512),
        num_classes: int = 10,
        in_channels: int = 3,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if len(block_counts) != len(widths):
            raise ValueError(
                f"block_counts and widths must align, got {len(block_counts)} vs {len(widths)}"
            )
        gen = as_generator(rng)
        self.num_classes = num_classes

        self.stem = Sequential(
            Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=gen),
            BatchNorm2d(widths[0]),
            ReLU(),
        )

        stages: list[Module] = []
        current = widths[0]
        for stage_idx, (count, width) in enumerate(zip(block_counts, widths)):
            blocks: list[Module] = []
            for block_idx in range(count):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                blocks.append(BasicBlock(current, width, stride=stride, rng=gen))
                current = width
            stages.append(Sequential(*blocks))
        self.stages = Sequential(*stages)

        self.pool = GlobalAvgPool2d()
        self.fc = Dense(current, num_classes, rng=gen)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.stages(out)
        out = self.pool(out)
        return self.fc(out)

    def extra_repr(self) -> str:
        return f"classes={self.num_classes}"

    def layer_names(self) -> list[str]:
        """Dotted names of all parameterised leaf modules, in forward order.

        Used by the layerwise injection campaign (paper Fig. 3) to address
        individual conv/bn/dense layers.
        """
        names = []
        for name, module in self.named_modules():
            if name and next(iter(module._parameters.values()), None) is not None:
                names.append(name)
        return names


def resnet18(num_classes: int = 10, in_channels: int = 3, rng=None) -> ResNet:
    """Full-width ResNet-18 (11M+ parameters) — the paper's exact network."""
    return ResNet((2, 2, 2, 2), (64, 128, 256, 512), num_classes, in_channels, rng=rng)


def resnet18_cifar_small(num_classes: int = 10, in_channels: int = 3, rng=None) -> ResNet:
    """ResNet-18 topology at reduced width (8-16-32-64) for CPU-budget campaigns.

    Same depth, same residual structure, same layer count (and therefore the
    same layerwise-injection x-axis as Fig. 3); only channel widths shrink.
    """
    return ResNet((2, 2, 2, 2), (8, 16, 32, 64), num_classes, in_channels, rng=rng)
