"""Model zoo: the networks evaluated in the paper plus extensions."""

from repro.nn.models.mlp import MLP, paper_mlp
from repro.nn.models.resnet import ResNet, BasicBlock, resnet18, resnet18_cifar_small
from repro.nn.models.lenet import LeNet

__all__ = [
    "MLP",
    "paper_mlp",
    "ResNet",
    "BasicBlock",
    "resnet18",
    "resnet18_cifar_small",
    "LeNet",
]
