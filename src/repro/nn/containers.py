"""Module containers."""

from __future__ import annotations

from typing import Iterator

from repro.nn.module import Module
from repro.tensor.tensor import Tensor

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Chain modules; children are addressable by integer index name ("0", "1", ...)."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for idx, module in enumerate(modules):
            setattr(self, str(idx), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]


class ModuleList(Module):
    """A list of modules registered for parameter traversal; no forward."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        for idx, module in enumerate(modules or []):
            setattr(self, str(idx), module)

    def append(self, module: Module) -> None:
        setattr(self, str(len(self._modules)), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]
