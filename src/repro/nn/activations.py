"""Activation layers."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

__all__ = ["ReLU", "LeakyReLU", "Tanh", "Sigmoid", "Softmax", "LogSoftmax"]


class ReLU(Module):
    """Rectified linear unit, ``max(0, x)`` — the paper MLP's nonlinearity."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)

    def extra_repr(self) -> str:
        return f"slope={self.negative_slope}"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Softmax(Module):
    """Softmax over the class axis — the output layer in the paper's Fig. 1."""

    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=self.axis)


class LogSoftmax(Module):
    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return F.log_softmax(x, axis=self.axis)
