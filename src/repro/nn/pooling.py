"""Pooling layers over NCHW feature maps."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d"]


class MaxPool2d(Module):
    """Max pooling with square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"k={self.kernel_size}, s={self.stride}"


class AvgPool2d(Module):
    """Average pooling with square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"k={self.kernel_size}, s={self.stride}"


class GlobalAvgPool2d(Module):
    """Collapse each channel's spatial map to its mean: NCHW → NC.

    ResNet-18 uses this immediately before the final dense classifier.
    """

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)
