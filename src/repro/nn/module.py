"""Module and Parameter: the building blocks of the network library.

A :class:`Module` owns parameters (trainable tensors), buffers
(non-trainable state such as batch-norm running statistics), and child
modules. Both are discoverable by dotted name, which is how the fault
injector addresses targets ("``features.3.weight``").

Hook support
------------
Fault injection into *activations* and *inputs* (two of the four fault
surfaces in the paper's fault model) requires intercepting values mid
forward pass without editing layer code. Modules therefore support:

* ``register_forward_pre_hook(fn)`` — ``fn(module, inputs) -> inputs'``
  called before ``forward``; may replace the inputs.
* ``register_forward_hook(fn)`` — ``fn(module, inputs, output) -> output'``
  called after ``forward``; may replace the output.

Hooks return a handle whose ``remove()`` detaches them, so injection
campaigns can instrument and cleanly de-instrument a network.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["Module", "Parameter", "HookHandle"]


class Parameter(Tensor):
    """A trainable tensor attached to a module.

    Identical to :class:`Tensor` except it is registered automatically when
    assigned as a module attribute and always starts with
    ``requires_grad=True``.
    """

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad=True)


class HookHandle:
    """Removable registration of a forward hook."""

    _counter = itertools.count()

    def __init__(self, registry: dict[int, Callable]) -> None:
        self._registry = registry
        self.id = next(HookHandle._counter)
        self._removed = False

    def remove(self) -> None:
        if not self._removed:
            self._registry.pop(self.id, None)
            self._removed = True

    def __enter__(self) -> "HookHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.remove()


class Module:
    """Base class for all network components.

    Subclasses implement ``forward(*inputs) -> Tensor``; calling the module
    runs pre-hooks, ``forward``, then post-hooks.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_forward_hooks", {})
        object.__setattr__(self, "_forward_pre_hooks", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # attribute plumbing
    # ------------------------------------------------------------------ #

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Attach non-trainable state (saved in ``state_dict``, no gradient)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer, preserving its registered dtype."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(value, dtype=self._buffers[name].dtype)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` for this module and children."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)``, including self under ``prefix``."""
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def get_submodule(self, dotted: str) -> "Module":
        """Resolve a dotted module path (``""`` returns self)."""
        module: Module = self
        if dotted:
            for part in dotted.split("."):
                if part not in module._modules:
                    raise KeyError(f"no submodule {part!r} in path {dotted!r}")
                module = module._modules[part]
        return module

    def get_parameter(self, dotted: str) -> Parameter:
        """Resolve a dotted parameter path like ``"blocks.0.conv1.weight"``."""
        path, _, leaf = dotted.rpartition(".")
        module = self.get_submodule(path)
        if leaf not in module._parameters:
            raise KeyError(f"no parameter {leaf!r} in module {path!r}")
        return module._parameters[leaf]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # train / eval, grad management
    # ------------------------------------------------------------------ #

    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # state dict
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name → array mapping of all parameters and buffers (copies)."""
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        state.update({name: buf.copy() for name, buf in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters and buffers by name; raises on missing/mismatched keys."""
        own_params = dict(self.named_parameters())
        own_buffer_names = {name for name, _ in self.named_buffers()}
        expected = set(own_params) | own_buffer_names
        given = set(state)
        if expected != given:
            missing = expected - given
            unexpected = given - expected
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own_params.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data[...] = value
        for name in own_buffer_names:
            path, _, leaf = name.rpartition(".")
            module = self.get_submodule(path)
            value = np.asarray(state[name], dtype=module._buffers[leaf].dtype)
            if value.shape != module._buffers[leaf].shape:
                raise ValueError(f"shape mismatch for buffer {name}")
            module._set_buffer(leaf, value.copy())

    # ------------------------------------------------------------------ #
    # hooks and call protocol
    # ------------------------------------------------------------------ #

    def register_forward_pre_hook(self, fn: Callable) -> HookHandle:
        """``fn(module, inputs_tuple)`` may return replacement inputs (tuple)."""
        handle = HookHandle(self._forward_pre_hooks)
        self._forward_pre_hooks[handle.id] = fn
        return handle

    def register_forward_hook(self, fn: Callable) -> HookHandle:
        """``fn(module, inputs_tuple, output)`` may return a replacement output."""
        handle = HookHandle(self._forward_hooks)
        self._forward_hooks[handle.id] = fn
        return handle

    def forward(self, *inputs: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, *inputs: Tensor) -> Tensor:
        for fn in list(self._forward_pre_hooks.values()):
            result = fn(self, inputs)
            if result is not None:
                inputs = result if isinstance(result, tuple) else (result,)
        output = self.forward(*inputs)
        for fn in list(self._forward_hooks.values()):
            result = fn(self, inputs, output)
            if result is not None:
                output = result
        return output

    # ------------------------------------------------------------------ #
    # repr
    # ------------------------------------------------------------------ #

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        if len(lines) == 1:
            return lines[0] + ")"
        lines.append(")")
        return "\n".join(lines)
