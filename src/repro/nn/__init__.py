"""Neural-network library built on :mod:`repro.tensor`.

Mirrors the subset of a torch-like API that the paper's evaluation needs:
dense and convolutional layers, batch normalisation, pooling, residual
blocks, and a module system with

* named parameters/buffers and ``state_dict`` checkpointing, and
* **forward pre/post hooks** — the mechanism :mod:`repro.faults` uses to
  corrupt inputs and activations at run time, mirroring how TensorFI
  instruments TensorFlow ops.

The model zoo (:mod:`repro.nn.models`) provides the two networks evaluated
in the paper — the 32-hidden-unit MLP of Fig. 1 and ResNet-18 of Fig. 3 —
plus a LeNet-style CNN used in extension experiments.
"""

from repro.nn.module import Module, Parameter
from repro.nn.containers import Sequential, ModuleList
from repro.nn.layers import Dense, Flatten, Identity, Dropout
from repro.nn.conv import Conv2d
from repro.nn.norm import BatchNorm1d, BatchNorm2d
from repro.nn.pooling import MaxPool2d, AvgPool2d, GlobalAvgPool2d
from repro.nn.activations import ReLU, LeakyReLU, Tanh, Sigmoid, Softmax, LogSoftmax
from repro.nn import init
from repro.nn.models import MLP, ResNet, LeNet, resnet18, paper_mlp

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Dense",
    "Flatten",
    "Identity",
    "Dropout",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "LogSoftmax",
    "init",
    "MLP",
    "ResNet",
    "LeNet",
    "resnet18",
    "paper_mlp",
]
