"""Dense layer and structural utility layers."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor
from repro.utils.rng import as_generator

__all__ = ["Dense", "Flatten", "Identity", "Dropout"]


class Dense(Module):
    """Fully connected layer: ``y = x @ W + b``.

    ``W`` has shape ``(in_features, out_features)``; this is the FC layer of
    the paper's Fig. 1 MLP (``y' = max(0, W'^T x + b')`` once the fault
    transform is applied and a ReLU follows).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(f"feature counts must be positive, got {in_features}, {out_features}")
        gen = as_generator(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((in_features, out_features), gen))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return f"in={self.in_features}, out={self.out_features}, bias={self.bias is not None}"


class Flatten(Module):
    """Flatten all dimensions after the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Identity(Module):
    """Pass-through module (used as a no-op residual shortcut)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode.

    The mask RNG is drawn from a per-layer generator seeded at construction
    so training runs are reproducible.
    """

    def __init__(self, p: float = 0.5, rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = as_generator(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)

    def extra_repr(self) -> str:
        return f"p={self.p}"
