"""Batch normalisation.

ResNet-18 (paper Fig. 3: "Conv / Batch Norm. + ReLU / Pooling / Dense")
interleaves batch norm after every convolution. Training mode normalises
with batch statistics and maintains exponential running estimates; eval
mode — the mode every fault-injection campaign runs in — uses the frozen
running statistics, so a faulted forward pass is deterministic given the
fault configuration.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor

__all__ = ["BatchNorm1d", "BatchNorm2d"]


class _BatchNorm(Module):
    """Shared machinery for 1-D (NC) and 2-D (NCHW) batch norm."""

    #: axes to reduce over when computing batch statistics
    _reduce_axes: tuple[int, ...]
    #: broadcast shape for per-channel parameters, filled by subclass
    _param_shape: tuple[int, ...]

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if not 0.0 < momentum <= 1.0:
            raise ValueError(f"momentum must be in (0, 1], got {momentum}")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.asarray(0, dtype=np.int64))

    def _check_input(self, x: Tensor) -> None:
        if x.ndim != len(self._param_shape) + 1:
            raise ValueError(
                f"{type(self).__name__} expects {len(self._param_shape) + 1}-D input, got {x.ndim}-D"
            )
        if x.shape[1] != self.num_features:
            raise ValueError(f"expected {self.num_features} channels, got {x.shape[1]}")

    def forward(self, x: Tensor) -> Tensor:
        self._check_input(x)
        shape = (1, self.num_features) + (1,) * (len(self._param_shape) - 1)
        if self.training:
            mean = x.mean(axis=self._reduce_axes, keepdims=True)
            var = x.var(axis=self._reduce_axes, keepdims=True)
            # Update running stats with the *unbiased* variance, as torch does.
            n = float(np.prod([x.shape[a] for a in self._reduce_axes]))
            unbiased = var.data.reshape(-1) * (n / max(n - 1.0, 1.0))
            m = self.momentum
            self._set_buffer("running_mean", (1 - m) * self.running_mean + m * mean.data.reshape(-1))
            self._set_buffer("running_var", (1 - m) * self.running_var + m * unbiased)
            self._set_buffer("num_batches_tracked", self.num_batches_tracked + 1)
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
        normalised = (x - mean) / (var + self.eps).sqrt()
        gamma = self.weight.reshape(*shape)
        beta = self.bias.reshape(*shape)
        return normalised * gamma + beta

    def extra_repr(self) -> str:
        return f"features={self.num_features}, eps={self.eps}, momentum={self.momentum}"


class BatchNorm1d(_BatchNorm):
    """Batch norm over (batch,) for NC inputs."""

    _reduce_axes = (0,)
    _param_shape = (1,)


class BatchNorm2d(_BatchNorm):
    """Batch norm over (batch, height, width) for NCHW inputs."""

    _reduce_axes = (0, 2, 3)
    _param_shape = (1, 1, 1)
