"""Target densities over fault-configuration space.

The quantity BDLFI reports is an expectation under the fault model's prior
(the distribution of classification error when faults are drawn from the
AVF model). Two targets make that tractable:

* :class:`PriorTarget` — the prior itself. Forward sampling draws from it
  i.i.d.; MH with local proposals walks it, and *its mixing speed is the
  paper's completeness signal*.
* :class:`TemperedErrorTarget` — ∝ prior(e)·exp(β·statistic(e)). Biasing
  the walk toward configurations that cause misclassification makes
  rare-event regimes (small p) explorable; estimates are reweighted back
  to the prior with importance weights exp(−β·statistic). This implements
  the paper's "algorithmic acceleration" advantage.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.faults.configuration import FaultConfiguration
from repro.faults.model import FaultModel

__all__ = ["PriorTarget", "TemperedErrorTarget"]


class PriorTarget:
    """log-density = log prior(configuration) under the fault model."""

    def __init__(self, fault_model: FaultModel) -> None:
        self.fault_model = fault_model

    def log_density(self, configuration: FaultConfiguration) -> float:
        return configuration.log_prob(self.fault_model)

    def importance_log_weight(self, configuration: FaultConfiguration, statistic: float) -> float:
        """Weight back to the prior — identically zero for the prior itself."""
        return 0.0


class TemperedErrorTarget:
    """Failure-biased target ∝ prior(e) · exp(β · statistic(e)).

    Pass the sampler's own ``statistic`` callable where possible — the
    sampler detects the identity and computes the density from its cached
    value, spending zero extra forward passes. When the target is built
    over a *different* (but equivalent) callable, statistic evaluations
    are memoised per configuration fingerprint (bounded LRU), so repeated
    density queries of the same configuration — the state/candidate
    pattern every MH step produces — cost one forward total instead of
    one per query. β=0 recovers the prior; larger β concentrates the walk
    on error-causing configurations.

    Memoisation assumes the statistic is a deterministic function of the
    configuration. That holds for parameter-only campaign statistics;
    transient (activation/input) statistics redraw faults inside every
    evaluation and must pass ``memoize=False``.
    """

    #: bounded memo size — large enough for any realistic chain window
    _MEMO_LIMIT = 1024

    def __init__(
        self,
        fault_model: FaultModel,
        statistic: Callable[[FaultConfiguration], float],
        beta: float,
        memoize: bool = True,
    ) -> None:
        if beta < 0:
            raise ValueError(f"beta must be non-negative, got {beta}")
        self.fault_model = fault_model
        self.statistic = statistic
        self.beta = float(beta)
        self._memo: OrderedDict[str, float] | None = OrderedDict() if memoize else None

    def prime(self, configuration: FaultConfiguration, value: float) -> None:
        """Record an externally computed statistic value for ``configuration``.

        Samplers that already evaluated their statistic on a proposal call
        this so :meth:`log_density` never re-runs the forward pass. Only
        valid when the caller's statistic computes the same quantity as
        ``self.statistic``; a no-op when memoisation is off.
        """
        if self._memo is not None:
            self._store(configuration.fingerprint(), float(value))

    def _store(self, key: str, value: float) -> None:
        memo = self._memo
        memo[key] = value
        memo.move_to_end(key)
        while len(memo) > self._MEMO_LIMIT:
            memo.popitem(last=False)

    def _statistic_value(self, configuration: FaultConfiguration) -> float:
        if self._memo is None:
            return self.statistic(configuration)
        key = configuration.fingerprint()
        if key in self._memo:
            self._memo.move_to_end(key)
            return self._memo[key]
        value = float(self.statistic(configuration))
        self._store(key, value)
        return value

    def log_density(self, configuration: FaultConfiguration) -> float:
        return configuration.log_prob(self.fault_model) + self.beta * self._statistic_value(
            configuration
        )

    def importance_log_weight(self, configuration: FaultConfiguration, statistic: float) -> float:
        """log w = −β·statistic, reweighting expectations back to the prior."""
        return -self.beta * statistic
