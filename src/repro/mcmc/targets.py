"""Target densities over fault-configuration space.

The quantity BDLFI reports is an expectation under the fault model's prior
(the distribution of classification error when faults are drawn from the
AVF model). Two targets make that tractable:

* :class:`PriorTarget` — the prior itself. Forward sampling draws from it
  i.i.d.; MH with local proposals walks it, and *its mixing speed is the
  paper's completeness signal*.
* :class:`TemperedErrorTarget` — ∝ prior(e)·exp(β·statistic(e)). Biasing
  the walk toward configurations that cause misclassification makes
  rare-event regimes (small p) explorable; estimates are reweighted back
  to the prior with importance weights exp(−β·statistic). This implements
  the paper's "algorithmic acceleration" advantage.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.configuration import FaultConfiguration
from repro.faults.model import FaultModel

__all__ = ["PriorTarget", "TemperedErrorTarget"]


class PriorTarget:
    """log-density = log prior(configuration) under the fault model."""

    def __init__(self, fault_model: FaultModel) -> None:
        self.fault_model = fault_model

    def log_density(self, configuration: FaultConfiguration) -> float:
        return configuration.log_prob(self.fault_model)

    def importance_log_weight(self, configuration: FaultConfiguration, statistic: float) -> float:
        """Weight back to the prior — identically zero for the prior itself."""
        return 0.0


class TemperedErrorTarget:
    """Failure-biased target ∝ prior(e) · exp(β · statistic(e)).

    ``statistic`` must be the same function the sampler evaluates (the
    chain caches its value per state, so no extra forward passes are
    spent). β=0 recovers the prior; larger β concentrates the walk on
    error-causing configurations.
    """

    def __init__(self, fault_model: FaultModel, statistic: Callable[[FaultConfiguration], float], beta: float) -> None:
        if beta < 0:
            raise ValueError(f"beta must be non-negative, got {beta}")
        self.fault_model = fault_model
        self.statistic = statistic
        self.beta = float(beta)

    def log_density(self, configuration: FaultConfiguration) -> float:
        return configuration.log_prob(self.fault_model) + self.beta * self.statistic(configuration)

    def importance_log_weight(self, configuration: FaultConfiguration, statistic: float) -> float:
        """log w = −β·statistic, reweighting expectations back to the prior."""
        return -self.beta * statistic
