"""MCMC inference over fault-configuration space.

The paper "perform[s] inference multiple times on the DBN using MCMC to
obtain the classification uncertainty of the network for different flip
probabilities", and uses **MCMC mixing** to decide when an injection
campaign is complete (advantage #1 over traditional FI).

Components:

* :class:`~repro.mcmc.targets.PriorTarget` — the fault model's prior over
  :class:`~repro.faults.FaultConfiguration` (the push-forward of which is
  the fault-induced output distribution);
  :class:`~repro.mcmc.targets.TemperedErrorTarget` — a failure-biased
  target ∝ prior·exp(β·error) for rare-event exploration, with importance
  reweighting back to the prior.
* Proposals — single-bit toggles (local moves), block resampling from the
  prior (global moves), and mixtures.
* :class:`~repro.mcmc.metropolis.MetropolisHastingsSampler` and
  :class:`~repro.mcmc.forward.ForwardSampler` (i.i.d. ancestral draws).
* :mod:`~repro.mcmc.diagnostics` — split-R̂ (Gelman–Rubin), effective
  sample size, Geweke z, autocorrelation.
* :class:`~repro.mcmc.mixing.CompletenessCriterion` — converts diagnostics
  into the paper's stop-when-mixed campaign-completeness decision.
"""

from repro.mcmc.chain import Chain, ChainSet
from repro.mcmc.targets import PriorTarget, TemperedErrorTarget
from repro.mcmc.proposals import SingleBitToggle, BlockResample, MixtureProposal
from repro.mcmc.forward import ForwardSampler
from repro.mcmc.metropolis import MetropolisHastingsSampler
from repro.mcmc.tempering import ParallelTemperingSampler, TemperingResult
from repro.mcmc.diagnostics import (
    split_r_hat,
    effective_sample_size,
    geweke_z,
    autocorrelation,
    monte_carlo_standard_error,
)
from repro.mcmc.mixing import CompletenessCriterion, CompletenessReport

__all__ = [
    "Chain",
    "ChainSet",
    "PriorTarget",
    "TemperedErrorTarget",
    "SingleBitToggle",
    "BlockResample",
    "MixtureProposal",
    "ForwardSampler",
    "MetropolisHastingsSampler",
    "ParallelTemperingSampler",
    "TemperingResult",
    "split_r_hat",
    "effective_sample_size",
    "geweke_z",
    "autocorrelation",
    "monte_carlo_standard_error",
    "CompletenessCriterion",
    "CompletenessReport",
]
