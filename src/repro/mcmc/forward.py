"""Forward (ancestral) sampling: i.i.d. draws from the fault prior.

Because the paper's Bayesian network has no observed downstream evidence —
we want the *push-forward* of the fault prior through the network — exact
i.i.d. sampling from the posterior-of-interest is available by ancestral
sampling. The forward sampler is therefore both the reference estimator
(ground truth for the MH kernels in tests) and the workhorse of plain
campaigns.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

import repro.obs as obs
from repro.faults.configuration import FaultConfiguration
from repro.faults.model import FaultModel
from repro.mcmc.chain import Chain, ChainSet
from repro.nn.module import Parameter
from repro.utils.rng import spawn_generators

__all__ = ["ForwardSampler"]

#: steps between chain.progress events when a progress sink is attached
PROGRESS_EVERY = 50


class ForwardSampler:
    """Draw fault configurations i.i.d. from the fault model and score them.

    Parameters
    ----------
    targets:
        ``(name, parameter)`` pairs defining the mask space.
    fault_model:
        Prior over masks.
    statistic:
        ``FaultConfiguration → float``; for BDLFI, the classification error
        of the faulted network on an evaluation batch.
    """

    def __init__(
        self,
        targets: list[tuple[str, Parameter]],
        fault_model: FaultModel,
        statistic: Callable[[FaultConfiguration], float],
    ) -> None:
        if not targets:
            raise ValueError("ForwardSampler requires at least one target")
        self.targets = list(targets)
        self.fault_model = fault_model
        self.statistic = statistic

    def run_chain(self, steps: int, rng: np.random.Generator, chain_id: int = 0) -> Chain:
        """One chain of ``steps`` i.i.d. draws."""
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        chain = Chain(chain_id)
        with obs.span("chain.forward", chain_id=chain_id, steps=steps):
            for step in range(steps):
                configuration = FaultConfiguration.sample(self.targets, self.fault_model, rng)
                value = self.statistic(configuration)
                chain.record(value, configuration.total_flips(), accepted=True)
                if obs.progress() is not None and (step + 1) % PROGRESS_EVERY == 0:
                    window = chain.recent(PROGRESS_EVERY)
                    obs.publish(
                        "chain.progress",
                        sampler="forward",
                        chain_id=chain_id,
                        step=step + 1,
                        steps=steps,
                        window_mean=float(window.mean()),
                    )
        return chain

    def run(self, chains: int, steps: int, rng) -> ChainSet:
        """Run ``chains`` independent chains with split random streams."""
        if chains <= 0:
            raise ValueError(f"chains must be positive, got {chains}")
        generators = spawn_generators(rng, chains)
        return ChainSet([self.run_chain(steps, g, chain_id=i) for i, g in enumerate(generators)])
