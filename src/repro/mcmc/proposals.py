"""Proposal kernels over fault-configuration space.

A proposal maps a current :class:`FaultConfiguration` to a candidate plus
the log Hastings correction ``log q(x|x') − log q(x'|x)``.
"""

from __future__ import annotations

import numpy as np

from repro.bits.float32 import BITS_PER_FLOAT, positions_to_mask
from repro.faults.configuration import FaultConfiguration
from repro.faults.model import FaultModel
from repro.nn.module import Parameter

__all__ = ["SingleBitToggle", "BlockResample", "MixtureProposal"]


class SingleBitToggle:
    """Toggle one uniformly chosen bit across all targets (symmetric).

    The canonical local move: slow but honest, and the move whose mixing
    time the completeness experiments measure.
    """

    def __init__(self, targets: list[tuple[str, Parameter]], bits_per_toggle: int = 1) -> None:
        if not targets:
            raise ValueError("SingleBitToggle requires at least one target")
        if bits_per_toggle < 1:
            raise ValueError(f"bits_per_toggle must be >= 1, got {bits_per_toggle}")
        self._names = [name for name, _ in targets]
        self._sizes = np.asarray([param.size for _, param in targets], dtype=np.int64)
        self._shapes = {name: param.shape for name, param in targets}
        self._offsets = np.concatenate([[0], np.cumsum(self._sizes * BITS_PER_FLOAT)])
        self.bits_per_toggle = bits_per_toggle

    @property
    def total_bits(self) -> int:
        return int(self._offsets[-1])

    def propose(
        self, state: FaultConfiguration, rng: np.random.Generator
    ) -> tuple[FaultConfiguration, float]:
        positions = rng.choice(self.total_bits, size=self.bits_per_toggle, replace=False)
        candidate = state.copy()
        masks = {name: candidate.mask(name) for name in self._names}
        for pos in np.sort(positions):
            target_idx = int(np.searchsorted(self._offsets, pos, side="right") - 1)
            name = self._names[target_idx]
            local = int(pos - self._offsets[target_idx])
            toggle = positions_to_mask(np.asarray([local]), self._shapes[name])
            masks[name] = masks[name] ^ toggle
        return FaultConfiguration(masks), 0.0  # symmetric


class BlockResample:
    """Resample one uniformly chosen target's mask from the fault model.

    Because the fault model's bits are independent, this is a conditional-
    prior (Gibbs) move for :class:`~repro.mcmc.targets.PriorTarget`: the
    Hastings correction exactly cancels the prior ratio, so acceptance is 1.
    For tempered targets it behaves as an independence proposal on the block.
    """

    def __init__(self, targets: list[tuple[str, Parameter]], fault_model: FaultModel) -> None:
        if not targets:
            raise ValueError("BlockResample requires at least one target")
        self._targets = list(targets)
        self.fault_model = fault_model

    def propose(
        self, state: FaultConfiguration, rng: np.random.Generator
    ) -> tuple[FaultConfiguration, float]:
        index = int(rng.integers(0, len(self._targets)))
        name, param = self._targets[index]
        target_model = self.fault_model.for_target(name)
        new_mask = target_model.sample_mask(param.shape, rng)
        candidate = state.copy()
        masks = dict(candidate.items())
        old_mask = masks[name]
        masks[name] = new_mask
        # q(x|x') / q(x'|x) = prior(old block) / prior(new block)
        log_hastings = target_model.log_prob_mask(old_mask) - target_model.log_prob_mask(new_mask)
        return FaultConfiguration(masks), log_hastings


class MixtureProposal:
    """Choose among component proposals with fixed probabilities.

    Standard MH practice: local moves for fine exploration plus occasional
    global resamples to jump between fault-space modes.
    """

    def __init__(self, components: list[tuple[object, float]]) -> None:
        if not components:
            raise ValueError("MixtureProposal requires at least one component")
        weights = np.asarray([w for _, w in components], dtype=np.float64)
        if np.any(weights <= 0):
            raise ValueError("component weights must be positive")
        self._proposals = [p for p, _ in components]
        self._weights = weights / weights.sum()

    def propose(
        self, state: FaultConfiguration, rng: np.random.Generator
    ) -> tuple[FaultConfiguration, float]:
        # NOTE: strictly, a mixture of proposals with differing densities
        # needs the mixture density in the Hastings ratio. Each component
        # here is individually valid (symmetric, or prior-Gibbs whose ratio
        # is exact), and component choice is state-independent, so using the
        # chosen component's correction preserves detailed balance.
        index = rng.choice(len(self._proposals), p=self._weights)
        return self._proposals[index].propose(state, rng)
