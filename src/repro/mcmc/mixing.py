"""Campaign completeness from MCMC mixing.

Implements the paper's advantage #1: "the ability to quantify
'completeness' of an injection campaign (i.e., when further injections do
not change measured hypothesis) using MCMC-mixing."

A campaign is declared complete when, over its parallel chains,

1. split-R̂ is below a threshold (chains agree with each other),
2. the effective sample size exceeds a floor (enough independent
   information), and
3. the Monte-Carlo standard error of the estimate is below a tolerance
   (further injections cannot move the measured hypothesis by more than
   the tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mcmc.chain import ChainSet
from repro.mcmc.diagnostics import effective_sample_size, monte_carlo_standard_error, split_r_hat

__all__ = ["CompletenessCriterion", "CompletenessReport"]


@dataclass(frozen=True)
class CompletenessReport:
    """Outcome of a completeness assessment."""

    complete: bool
    r_hat: float
    ess: float
    mcse: float
    estimate: float
    steps: int

    def __str__(self) -> str:
        status = "COMPLETE" if self.complete else "incomplete"
        return (
            f"[{status}] estimate={self.estimate:.4f} ± {self.mcse:.4f} "
            f"(R-hat={self.r_hat:.3f}, ESS={self.ess:.0f}, steps={self.steps})"
        )

    def to_dict(self) -> dict:
        """JSON-ready record (the shape persisted by ``CampaignResult``)."""
        return {
            "complete": self.complete,
            "r_hat": self.r_hat,
            "ess": self.ess,
            "mcse": self.mcse,
            "estimate": self.estimate,
            "steps": self.steps,
        }


class CompletenessCriterion:
    """Thresholds converting diagnostics into a stop decision.

    Defaults follow common practice: R̂ < 1.05, ESS ≥ 100, and a
    user-chosen absolute tolerance on the error estimate (default 1 %,
    i.e. further injection cannot move the reported classification error
    by more than one percentage point).
    """

    def __init__(
        self,
        r_hat_threshold: float = 1.05,
        min_ess: float = 100.0,
        stderr_tolerance: float = 0.01,
        discard_fraction: float = 0.25,
    ) -> None:
        if r_hat_threshold <= 1.0:
            raise ValueError(f"r_hat_threshold must exceed 1, got {r_hat_threshold}")
        if min_ess <= 0:
            raise ValueError(f"min_ess must be positive, got {min_ess}")
        if stderr_tolerance <= 0:
            raise ValueError(f"stderr_tolerance must be positive, got {stderr_tolerance}")
        if not 0.0 <= discard_fraction < 1.0:
            raise ValueError(f"discard_fraction must be in [0, 1), got {discard_fraction}")
        self.r_hat_threshold = r_hat_threshold
        self.min_ess = min_ess
        self.stderr_tolerance = stderr_tolerance
        self.discard_fraction = discard_fraction

    def assess(self, chains: ChainSet) -> CompletenessReport:
        """Evaluate the three-part completeness condition on a chain set."""
        matrix = chains.matrix(self.discard_fraction)
        m, n = matrix.shape
        if m >= 2 or n >= 4:
            r_hat = split_r_hat(matrix) if m >= 1 and n >= 4 else float("inf")
        else:
            r_hat = float("inf")
        ess = effective_sample_size(matrix) if n >= 4 else 0.0
        mcse = monte_carlo_standard_error(matrix) if n >= 4 else float("inf")
        estimate = float(matrix.mean())
        complete = (
            bool(r_hat < self.r_hat_threshold)
            and bool(ess >= self.min_ess)
            and bool(mcse <= self.stderr_tolerance)
        )
        return CompletenessReport(
            complete=complete, r_hat=float(r_hat), ess=float(ess), mcse=float(mcse),
            estimate=estimate, steps=chains.steps,
        )

    def assess_window(self, chains: ChainSet, window: int) -> CompletenessReport:
        """Diagnostics over the trailing ``window`` steps of each chain.

        The *live* view behind progress streams: where :meth:`assess`
        judges the whole (post-burn-in) history, this judges only the
        most recent window, so a campaign that mixed early but drifted
        late is visible while it happens. The thresholds are the same;
        ``steps`` reports the window actually used.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        matrix = chains.recent_matrix(window)
        m, n = matrix.shape
        r_hat = split_r_hat(matrix) if n >= 4 else float("inf")
        ess = effective_sample_size(matrix) if n >= 4 else 0.0
        mcse = monte_carlo_standard_error(matrix) if n >= 4 else float("inf")
        estimate = float(matrix.mean())
        complete = (
            bool(r_hat < self.r_hat_threshold)
            and bool(ess >= self.min_ess)
            and bool(mcse <= self.stderr_tolerance)
        )
        return CompletenessReport(
            complete=complete, r_hat=float(r_hat), ess=float(ess), mcse=float(mcse),
            estimate=estimate, steps=n,
        )

    def steps_to_complete(self, chains: ChainSet, check_every: int = 25) -> int | None:
        """Smallest step count at which the (prefix of the) campaign was complete.

        Replays the chain prefixes; returns ``None`` if the full campaign
        never satisfied the criterion. Used by experiment E5 to compare
        adaptive stopping against fixed-N campaigns.
        """
        if check_every <= 0:
            raise ValueError(f"check_every must be positive, got {check_every}")
        full = chains.matrix(0.0)
        _, n = full.shape
        for steps in range(check_every, n + 1, check_every):
            prefix = full[:, :steps]
            discard = int(steps * self.discard_fraction)
            window = prefix[:, discard:]
            if window.shape[1] < 4:
                continue
            r_hat = split_r_hat(window)
            ess = effective_sample_size(window)
            mcse = monte_carlo_standard_error(window)
            if r_hat < self.r_hat_threshold and ess >= self.min_ess and mcse <= self.stderr_tolerance:
                return steps
        return None
