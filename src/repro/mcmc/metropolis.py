"""Metropolis–Hastings over fault-configuration space.

State: a :class:`~repro.faults.FaultConfiguration`. Target: any object with
``log_density(configuration)`` (see :mod:`repro.mcmc.targets`). Proposal:
any object with ``propose(state, rng) → (candidate, log_hastings)``.

The statistic of the *current* state is cached so a rejected step costs no
forward pass; for :class:`~repro.mcmc.targets.TemperedErrorTarget` the
statistic is likewise memoised per configuration evaluation, because the
target's density itself depends on it.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

import repro.obs as obs
from repro.faults.configuration import FaultConfiguration
from repro.mcmc.chain import Chain, ChainSet
from repro.mcmc.forward import PROGRESS_EVERY
from repro.utils.rng import spawn_generators

__all__ = ["MetropolisHastingsSampler"]


class MetropolisHastingsSampler:
    """Generic MH kernel with per-chain acceptance bookkeeping.

    Parameters
    ----------
    target:
        Density over configurations (``log_density`` + ``importance_log_weight``).
    proposal:
        Proposal kernel.
    statistic:
        Scalar summary recorded per step. When the target is tempered on
        the same statistic, pass the identical callable — evaluations are
        shared within a step.
    initial:
        Callable ``rng → FaultConfiguration`` drawing the chain's start
        state (typically the fault prior, giving an overdispersed start for
        R̂ to be meaningful).
    engine:
        Optional :class:`~repro.core.delta.DeltaChainEvaluator`. When set,
        :meth:`run` steps every chain in lockstep and scores each round of
        proposals through one grouped delta forward instead of calling
        ``statistic`` per candidate — bit-identical to the sequential path
        (property-tested), order-of-magnitude faster on deep models.
    """

    def __init__(
        self,
        target,
        proposal,
        statistic: Callable[[FaultConfiguration], float],
        initial: Callable[[np.random.Generator], FaultConfiguration],
        engine=None,
    ) -> None:
        self.target = target
        self.proposal = proposal
        self.statistic = statistic
        self.initial = initial
        self.engine = engine

    def run_chain(self, steps: int, rng: np.random.Generator, chain_id: int = 0) -> Chain:
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        state = self.initial(rng)
        state_stat = self.statistic(state)
        state_logd = self._log_density(state, state_stat)

        chain = Chain(chain_id)
        with obs.span("chain.mcmc", chain_id=chain_id, steps=steps):
            for step in range(steps):
                candidate, log_hastings = self.proposal.propose(state, rng)
                candidate_stat = self.statistic(candidate)
                candidate_logd = self._log_density(candidate, candidate_stat)
                log_alpha = candidate_logd - state_logd + log_hastings
                accepted = math.log(rng.random()) < log_alpha if log_alpha < 0 else True
                if accepted:
                    state, state_stat, state_logd = candidate, candidate_stat, candidate_logd
                chain.record(state_stat, state.total_flips(), accepted=accepted)
                if obs.progress() is not None and (step + 1) % PROGRESS_EVERY == 0:
                    obs.publish(
                        "chain.progress",
                        sampler="mcmc",
                        chain_id=chain_id,
                        step=step + 1,
                        steps=steps,
                        window_mean=float(chain.recent(PROGRESS_EVERY).mean()),
                        window_acceptance=chain.recent_acceptance(PROGRESS_EVERY),
                    )
        return chain

    def _log_density(self, configuration: FaultConfiguration, statistic_value: float) -> float:
        """Evaluate the target density, reusing the known statistic if tempered.

        A target tempered on the sampler's *own* statistic gets the density
        computed directly from ``statistic_value`` — zero extra forwards. A
        tempered target built over a *different* callable used to be routed
        through the same shortcut, silently substituting the sampler's
        statistic for the target's; now the target is primed with the known
        value (see :meth:`TemperedErrorTarget.prime` — the two callables
        must compute the same quantity, which the shortcut always assumed)
        and then asked for its own density, so one proposal still never
        costs a second forward pass.
        """
        beta = getattr(self.target, "beta", None)
        if beta is not None:
            if getattr(self.target, "statistic", None) is self.statistic:
                prior_logp = configuration.log_prob(self.target.fault_model)
                return prior_logp + beta * statistic_value
            prime = getattr(self.target, "prime", None)
            if prime is not None:
                prime(configuration, statistic_value)
        return self.target.log_density(configuration)

    def run(self, chains: int, steps: int, rng) -> ChainSet:
        """Run ``chains`` independent chains from overdispersed starts.

        With a delta engine attached the chains advance in lockstep (one
        grouped forward per proposal round); results are bit-identical to
        the sequential path either way.
        """
        if chains <= 0:
            raise ValueError(f"chains must be positive, got {chains}")
        if self.engine is not None:
            return self._run_lockstep(chains, steps, rng)
        generators = spawn_generators(rng, chains)
        return ChainSet([self.run_chain(steps, g, chain_id=i) for i, g in enumerate(generators)])

    def _run_lockstep(self, chains: int, steps: int, rng) -> ChainSet:
        """All chains in lockstep; one grouped delta forward per round.

        Bit-identity with the sequential path holds because every chain
        draws from its own spawned generator in the same per-chain order
        (initial draw, then propose / conditional accept draw per step —
        the parameter-only statistic consumes no randomness), the engine's
        scored statistics are bit-identical to the standard statistic, and
        the acceptance arithmetic is expression-for-expression the same.
        """
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        engine = self.engine
        generators = spawn_generators(rng, chains)
        sessions = [engine.session() for _ in range(chains)]
        states = [self.initial(g) for g in generators]
        stats = engine.evaluate_round(sessions, states)
        for session in sessions:
            session.commit()
        logds = [self._log_density(s, v) for s, v in zip(states, stats)]
        chain_objs = [Chain(i) for i in range(chains)]
        with obs.span("chain.mcmc", chains=chains, steps=steps, lockstep=True):
            for step in range(steps):
                proposals = [self.proposal.propose(states[i], generators[i]) for i in range(chains)]
                candidates = [candidate for candidate, _ in proposals]
                cand_stats = engine.evaluate_round(sessions, candidates)
                for i in range(chains):
                    candidate, log_hastings = proposals[i]
                    candidate_logd = self._log_density(candidate, cand_stats[i])
                    log_alpha = candidate_logd - logds[i] + log_hastings
                    accepted = math.log(generators[i].random()) < log_alpha if log_alpha < 0 else True
                    if accepted:
                        states[i], stats[i], logds[i] = candidate, cand_stats[i], candidate_logd
                        sessions[i].commit()
                    chain_objs[i].record(stats[i], states[i].total_flips(), accepted=accepted)
                if obs.progress() is not None and (step + 1) % PROGRESS_EVERY == 0:
                    for chain in chain_objs:
                        obs.publish(
                            "chain.progress",
                            sampler="mcmc",
                            chain_id=chain.chain_id,
                            step=step + 1,
                            steps=steps,
                            window_mean=float(chain.recent(PROGRESS_EVERY).mean()),
                            window_acceptance=chain.recent_acceptance(PROGRESS_EVERY),
                        )
        return ChainSet(chain_objs)
