"""Metropolis–Hastings over fault-configuration space.

State: a :class:`~repro.faults.FaultConfiguration`. Target: any object with
``log_density(configuration)`` (see :mod:`repro.mcmc.targets`). Proposal:
any object with ``propose(state, rng) → (candidate, log_hastings)``.

The statistic of the *current* state is cached so a rejected step costs no
forward pass; for :class:`~repro.mcmc.targets.TemperedErrorTarget` the
statistic is likewise memoised per configuration evaluation, because the
target's density itself depends on it.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

import repro.obs as obs
from repro.faults.configuration import FaultConfiguration
from repro.mcmc.chain import Chain, ChainSet
from repro.mcmc.forward import PROGRESS_EVERY
from repro.utils.rng import spawn_generators

__all__ = ["MetropolisHastingsSampler"]


class MetropolisHastingsSampler:
    """Generic MH kernel with per-chain acceptance bookkeeping.

    Parameters
    ----------
    target:
        Density over configurations (``log_density`` + ``importance_log_weight``).
    proposal:
        Proposal kernel.
    statistic:
        Scalar summary recorded per step. When the target is tempered on
        the same statistic, pass the identical callable — evaluations are
        shared within a step.
    initial:
        Callable ``rng → FaultConfiguration`` drawing the chain's start
        state (typically the fault prior, giving an overdispersed start for
        R̂ to be meaningful).
    """

    def __init__(
        self,
        target,
        proposal,
        statistic: Callable[[FaultConfiguration], float],
        initial: Callable[[np.random.Generator], FaultConfiguration],
    ) -> None:
        self.target = target
        self.proposal = proposal
        self.statistic = statistic
        self.initial = initial

    def run_chain(self, steps: int, rng: np.random.Generator, chain_id: int = 0) -> Chain:
        if steps <= 0:
            raise ValueError(f"steps must be positive, got {steps}")
        state = self.initial(rng)
        state_stat = self.statistic(state)
        state_logd = self._log_density(state, state_stat)

        chain = Chain(chain_id)
        with obs.span("chain.mcmc", chain_id=chain_id, steps=steps):
            for step in range(steps):
                candidate, log_hastings = self.proposal.propose(state, rng)
                candidate_stat = self.statistic(candidate)
                candidate_logd = self._log_density(candidate, candidate_stat)
                log_alpha = candidate_logd - state_logd + log_hastings
                accepted = math.log(rng.random()) < log_alpha if log_alpha < 0 else True
                if accepted:
                    state, state_stat, state_logd = candidate, candidate_stat, candidate_logd
                chain.record(state_stat, state.total_flips(), accepted=accepted)
                if obs.progress() is not None and (step + 1) % PROGRESS_EVERY == 0:
                    obs.publish(
                        "chain.progress",
                        sampler="mcmc",
                        chain_id=chain_id,
                        step=step + 1,
                        steps=steps,
                        window_mean=float(chain.recent(PROGRESS_EVERY).mean()),
                        window_acceptance=chain.recent_acceptance(PROGRESS_EVERY),
                    )
        return chain

    def _log_density(self, configuration: FaultConfiguration, statistic_value: float) -> float:
        """Evaluate the target density, reusing the known statistic if tempered."""
        beta = getattr(self.target, "beta", None)
        if beta is not None:
            prior_logp = configuration.log_prob(self.target.fault_model)
            return prior_logp + beta * statistic_value
        return self.target.log_density(configuration)

    def run(self, chains: int, steps: int, rng) -> ChainSet:
        """Run ``chains`` independent chains from overdispersed starts."""
        if chains <= 0:
            raise ValueError(f"chains must be positive, got {chains}")
        generators = spawn_generators(rng, chains)
        return ChainSet([self.run_chain(steps, g, chain_id=i) for i, g in enumerate(generators)])
