"""Chain storage for scalar statistics of sampled fault configurations."""

from __future__ import annotations

import numpy as np

__all__ = ["Chain", "ChainSet"]


class Chain:
    """One MCMC (or i.i.d.) chain's history.

    Stores the scalar statistic per step (for BDLFI: the classification
    error of the faulted network), the flip count per step, and acceptance
    bookkeeping for MH kernels.
    """

    def __init__(self, chain_id: int = 0) -> None:
        self.chain_id = chain_id
        self._values: list[float] = []
        self._flips: list[int] = []
        self._accepts: list[bool] = []

    def record(self, value: float, flips: int, accepted: bool = True) -> None:
        self._values.append(float(value))
        self._flips.append(int(flips))
        self._accepts.append(bool(accepted))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.float64)

    @property
    def flips(self) -> np.ndarray:
        return np.asarray(self._flips, dtype=np.int64)

    @property
    def accepts(self) -> np.ndarray:
        return np.asarray(self._accepts, dtype=bool)

    @property
    def accepted_count(self) -> int:
        """Number of accepted MH steps (i.i.d. chains accept every step)."""
        return int(sum(self._accepts))

    @property
    def acceptance_rate(self) -> float:
        if not self._accepts:
            return float("nan")
        return float(np.mean(self._accepts))

    def recent(self, window: int) -> np.ndarray:
        """The trailing ``window`` statistic values (all, if shorter).

        The unit of the *live* mixing diagnostics: progress streams look
        at a sliding window rather than the whole history, so a chain
        that has drifted shows up while it drifts, not at the post-mortem.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        return np.asarray(self._values[-window:], dtype=np.float64)

    def recent_acceptance(self, window: int) -> float:
        """Acceptance rate over the trailing ``window`` steps."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if not self._accepts:
            return float("nan")
        return float(np.mean(self._accepts[-window:]))

    def tail(self, discard_fraction: float = 0.0) -> np.ndarray:
        """Values after discarding a burn-in prefix."""
        if not 0.0 <= discard_fraction < 1.0:
            raise ValueError(f"discard_fraction must be in [0, 1), got {discard_fraction}")
        start = int(len(self._values) * discard_fraction)
        return self.values[start:]

    def __repr__(self) -> str:
        return f"Chain(id={self.chain_id}, steps={len(self)}, accept={self.acceptance_rate:.2f})"


class ChainSet:
    """A group of same-length chains, as required by multi-chain diagnostics."""

    def __init__(self, chains: list[Chain]) -> None:
        if not chains:
            raise ValueError("ChainSet requires at least one chain")
        lengths = {len(c) for c in chains}
        if len(lengths) > 1:
            raise ValueError(f"chains have unequal lengths: {sorted(lengths)}")
        self.chains = list(chains)

    def __len__(self) -> int:
        return len(self.chains)

    @property
    def steps(self) -> int:
        return len(self.chains[0])

    def matrix(self, discard_fraction: float = 0.0) -> np.ndarray:
        """(num_chains, steps) matrix of statistic values after burn-in."""
        return np.stack([c.tail(discard_fraction) for c in self.chains])

    def pooled(self, discard_fraction: float = 0.0) -> np.ndarray:
        return self.matrix(discard_fraction).reshape(-1)

    def mean(self, discard_fraction: float = 0.0) -> float:
        return float(self.pooled(discard_fraction).mean())

    def recent_matrix(self, window: int) -> np.ndarray:
        """(num_chains, ≤window) matrix of trailing values (live diagnostics)."""
        return np.stack([c.recent(window) for c in self.chains])

    def accepted_total(self) -> int:
        """Accepted steps summed over all chains (telemetry bookkeeping)."""
        return sum(c.accepted_count for c in self.chains)

    def total_flips(self) -> int:
        """Flipped-bit count summed over every recorded step of every chain."""
        return int(sum(int(c.flips.sum()) for c in self.chains))
