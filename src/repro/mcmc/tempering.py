"""Parallel tempering over fault-configuration space.

The failure-biased tempered target of :mod:`repro.mcmc.targets` explores
error-causing configurations but pays an importance-weighting variance
cost. Parallel tempering gets the best of both: a ladder of chains at
inverse temperatures β₀ = 0 < β₁ < … < β_K runs side by side, adjacent
rungs periodically *swap* states, and the cold rung (β = 0) — whose
stationary distribution is exactly the fault prior — inherits the hot
rungs' ability to cross between fault-space modes. Its trace is therefore
an unbiased prior-expectation estimator with improved mixing; no
reweighting needed.

Swap rule: for rungs i, j with states x_i, x_j and shared prior,
``log α = (β_i − β_j) · (stat(x_j) − stat(x_i))`` — the standard replica
exchange acceptance, costing zero forward passes because statistics are
cached per state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.faults.configuration import FaultConfiguration
from repro.faults.model import FaultModel
from repro.mcmc.chain import Chain, ChainSet
from repro.utils.rng import spawn_generators

__all__ = ["TemperingResult", "ParallelTemperingSampler"]


@dataclass(frozen=True)
class TemperingResult:
    """Outcome of a parallel-tempering run."""

    #: cold-rung (β=0) chains — samples from the fault prior
    cold_chains: ChainSet
    #: per-rung mean statistic (after burn-in), index-aligned with betas
    rung_means: tuple[float, ...]
    betas: tuple[float, ...]
    swap_acceptance: float

    def to_dict(self) -> dict:
        """JSON-clean summary: the ``nan`` swap-acceptance sentinel (no swap
        attempts) serialises as ``null`` rather than invalid-JSON ``NaN``."""
        from repro.utils.persist import sanitize_nonfinite

        return sanitize_nonfinite(
            {
                "rung_means": list(self.rung_means),
                "betas": list(self.betas),
                "swap_acceptance": self.swap_acceptance,
                "chains": len(self.cold_chains),
                "steps": self.cold_chains.steps,
            }
        )


class ParallelTemperingSampler:
    """Replica-exchange MH over fault configurations.

    Parameters
    ----------
    targets / fault_model:
        The mask space and its prior.
    statistic:
        ``FaultConfiguration → float`` (classification error for BDLFI).
    proposal:
        Local proposal shared by every rung (e.g.
        :class:`~repro.mcmc.proposals.SingleBitToggle`).
    betas:
        Inverse-temperature ladder; must start at 0 (the prior rung) and be
        strictly increasing.
    """

    def __init__(
        self,
        targets: list,
        fault_model: FaultModel,
        statistic: Callable[[FaultConfiguration], float],
        proposal,
        betas: tuple[float, ...] = (0.0, 5.0, 20.0, 80.0),
    ) -> None:
        if not targets:
            raise ValueError("ParallelTemperingSampler requires targets")
        betas = tuple(float(b) for b in betas)
        if len(betas) < 2:
            raise ValueError("need at least two rungs (a cold and a hot chain)")
        if betas[0] != 0.0:
            raise ValueError(f"the ladder must start at beta=0 (the prior rung), got {betas[0]}")
        if any(a >= b for a, b in zip(betas, betas[1:])):
            raise ValueError(f"betas must be strictly increasing, got {betas}")
        self.targets = list(targets)
        self.fault_model = fault_model
        self.statistic = statistic
        self.proposal = proposal
        self.betas = betas

    # ------------------------------------------------------------------ #
    # core steps
    # ------------------------------------------------------------------ #

    def _mh_step(
        self,
        state: FaultConfiguration,
        stat: float,
        log_prior: float,
        beta: float,
        rng: np.random.Generator,
    ) -> tuple[FaultConfiguration, float, float, bool]:
        candidate, log_hastings = self.proposal.propose(state, rng)
        candidate_stat = self.statistic(candidate)
        candidate_log_prior = candidate.log_prob(self.fault_model)
        log_alpha = (
            (candidate_log_prior + beta * candidate_stat)
            - (log_prior + beta * stat)
            + log_hastings
        )
        if log_alpha >= 0 or np.log(rng.random()) < log_alpha:
            return candidate, candidate_stat, candidate_log_prior, True
        return state, stat, log_prior, False

    def run_chain(self, sweeps: int, rng: np.random.Generator, chain_id: int = 0) -> tuple[Chain, np.ndarray, int, int]:
        """One replica system: ``sweeps`` × (MH step per rung + one swap try).

        Returns (cold chain, per-rung statistic sums, swap attempts, swap accepts).
        """
        if sweeps <= 0:
            raise ValueError(f"sweeps must be positive, got {sweeps}")
        n_rungs = len(self.betas)
        states = [FaultConfiguration.sample(self.targets, self.fault_model, rng) for _ in range(n_rungs)]
        stats = [self.statistic(s) for s in states]
        log_priors = [s.log_prob(self.fault_model) for s in states]

        cold = Chain(chain_id)
        rung_sums = np.zeros(n_rungs)
        swap_attempts = 0
        swap_accepts = 0
        for _ in range(sweeps):
            for rung, beta in enumerate(self.betas):
                states[rung], stats[rung], log_priors[rung], _ = self._mh_step(
                    states[rung], stats[rung], log_priors[rung], beta, rng
                )
            # One adjacent-pair swap attempt per sweep.
            low = int(rng.integers(0, n_rungs - 1))
            high = low + 1
            log_alpha = (self.betas[low] - self.betas[high]) * (stats[high] - stats[low])
            swap_attempts += 1
            if log_alpha >= 0 or np.log(rng.random()) < log_alpha:
                states[low], states[high] = states[high], states[low]
                stats[low], stats[high] = stats[high], stats[low]
                log_priors[low], log_priors[high] = log_priors[high], log_priors[low]
                swap_accepts += 1
            cold.record(stats[0], states[0].total_flips())
            rung_sums += stats
        return cold, rung_sums / sweeps, swap_attempts, swap_accepts

    def run(self, chains: int, sweeps: int, rng) -> TemperingResult:
        """``chains`` independent replica systems with split streams."""
        if chains <= 0:
            raise ValueError(f"chains must be positive, got {chains}")
        generators = spawn_generators(rng, chains)
        cold_chains = []
        rung_totals = np.zeros(len(self.betas))
        attempts = 0
        accepts = 0
        for index, gen in enumerate(generators):
            cold, rung_means, att, acc = self.run_chain(sweeps, gen, chain_id=index)
            cold_chains.append(cold)
            rung_totals += rung_means
            attempts += att
            accepts += acc
        return TemperingResult(
            cold_chains=ChainSet(cold_chains),
            rung_means=tuple(float(v) for v in rung_totals / chains),
            betas=self.betas,
            swap_acceptance=accepts / attempts if attempts else float("nan"),
        )
