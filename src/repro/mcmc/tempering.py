"""Parallel tempering over fault-configuration space.

The failure-biased tempered target of :mod:`repro.mcmc.targets` explores
error-causing configurations but pays an importance-weighting variance
cost. Parallel tempering gets the best of both: a ladder of chains at
inverse temperatures β₀ = 0 < β₁ < … < β_K runs side by side, adjacent
rungs periodically *swap* states, and the cold rung (β = 0) — whose
stationary distribution is exactly the fault prior — inherits the hot
rungs' ability to cross between fault-space modes. Its trace is therefore
an unbiased prior-expectation estimator with improved mixing; no
reweighting needed.

Swap rule: for rungs i, j with states x_i, x_j and shared prior,
``log α = (β_i − β_j) · (stat(x_j) − stat(x_i))`` — the standard replica
exchange acceptance, costing zero forward passes because statistics are
cached per state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.faults.configuration import FaultConfiguration
from repro.faults.model import FaultModel
from repro.mcmc.chain import Chain, ChainSet
from repro.utils.rng import spawn_generators

__all__ = ["TemperingResult", "ParallelTemperingSampler"]


@dataclass(frozen=True)
class TemperingResult:
    """Outcome of a parallel-tempering run."""

    #: cold-rung (β=0) chains — samples from the fault prior
    cold_chains: ChainSet
    #: per-rung mean statistic (after burn-in), index-aligned with betas
    rung_means: tuple[float, ...]
    betas: tuple[float, ...]
    swap_acceptance: float

    def to_dict(self) -> dict:
        """JSON-clean summary: the ``nan`` swap-acceptance sentinel (no swap
        attempts) serialises as ``null`` rather than invalid-JSON ``NaN``."""
        from repro.utils.persist import sanitize_nonfinite

        return sanitize_nonfinite(
            {
                "rung_means": list(self.rung_means),
                "betas": list(self.betas),
                "swap_acceptance": self.swap_acceptance,
                "chains": len(self.cold_chains),
                "steps": self.cold_chains.steps,
            }
        )


class ParallelTemperingSampler:
    """Replica-exchange MH over fault configurations.

    Parameters
    ----------
    targets / fault_model:
        The mask space and its prior.
    statistic:
        ``FaultConfiguration → float`` (classification error for BDLFI).
    proposal:
        Local proposal shared by every rung (e.g.
        :class:`~repro.mcmc.proposals.SingleBitToggle`).
    betas:
        Inverse-temperature ladder; must start at 0 (the prior rung) and be
        strictly increasing.
    engine:
        Optional :class:`~repro.core.delta.DeltaChainEvaluator`. When set,
        :meth:`run` advances all replicas in lockstep and scores each
        rung's proposals across replicas through one grouped delta forward
        — bit-identical to the sequential path. (Rungs *within* a replica
        stay sequential: each rung's acceptance draw conditions the
        stream the next rung proposes from.)
    """

    def __init__(
        self,
        targets: list,
        fault_model: FaultModel,
        statistic: Callable[[FaultConfiguration], float],
        proposal,
        betas: tuple[float, ...] = (0.0, 5.0, 20.0, 80.0),
        engine=None,
    ) -> None:
        if not targets:
            raise ValueError("ParallelTemperingSampler requires targets")
        betas = tuple(float(b) for b in betas)
        if len(betas) < 2:
            raise ValueError("need at least two rungs (a cold and a hot chain)")
        if betas[0] != 0.0:
            raise ValueError(f"the ladder must start at beta=0 (the prior rung), got {betas[0]}")
        if any(a >= b for a, b in zip(betas, betas[1:])):
            raise ValueError(f"betas must be strictly increasing, got {betas}")
        self.targets = list(targets)
        self.fault_model = fault_model
        self.statistic = statistic
        self.proposal = proposal
        self.betas = betas
        self.engine = engine

    # ------------------------------------------------------------------ #
    # core steps
    # ------------------------------------------------------------------ #

    def _mh_step(
        self,
        state: FaultConfiguration,
        stat: float,
        log_prior: float,
        beta: float,
        rng: np.random.Generator,
    ) -> tuple[FaultConfiguration, float, float, bool]:
        candidate, log_hastings = self.proposal.propose(state, rng)
        candidate_stat = self.statistic(candidate)
        candidate_log_prior = candidate.log_prob(self.fault_model)
        log_alpha = (
            (candidate_log_prior + beta * candidate_stat)
            - (log_prior + beta * stat)
            + log_hastings
        )
        if log_alpha >= 0 or np.log(rng.random()) < log_alpha:
            return candidate, candidate_stat, candidate_log_prior, True
        return state, stat, log_prior, False

    def run_chain(self, sweeps: int, rng: np.random.Generator, chain_id: int = 0) -> tuple[Chain, np.ndarray, int, int]:
        """One replica system: ``sweeps`` × (MH step per rung + one swap try).

        Returns (cold chain, per-rung statistic sums, swap attempts, swap accepts).
        """
        if sweeps <= 0:
            raise ValueError(f"sweeps must be positive, got {sweeps}")
        n_rungs = len(self.betas)
        states = [FaultConfiguration.sample(self.targets, self.fault_model, rng) for _ in range(n_rungs)]
        stats = [self.statistic(s) for s in states]
        log_priors = [s.log_prob(self.fault_model) for s in states]

        cold = Chain(chain_id)
        rung_sums = np.zeros(n_rungs)
        swap_attempts = 0
        swap_accepts = 0
        for _ in range(sweeps):
            for rung, beta in enumerate(self.betas):
                states[rung], stats[rung], log_priors[rung], _ = self._mh_step(
                    states[rung], stats[rung], log_priors[rung], beta, rng
                )
            # One adjacent-pair swap attempt per sweep.
            low = int(rng.integers(0, n_rungs - 1))
            high = low + 1
            log_alpha = (self.betas[low] - self.betas[high]) * (stats[high] - stats[low])
            swap_attempts += 1
            if log_alpha >= 0 or np.log(rng.random()) < log_alpha:
                states[low], states[high] = states[high], states[low]
                stats[low], stats[high] = stats[high], stats[low]
                log_priors[low], log_priors[high] = log_priors[high], log_priors[low]
                swap_accepts += 1
            cold.record(stats[0], states[0].total_flips())
            rung_sums += stats
        return cold, rung_sums / sweeps, swap_attempts, swap_accepts

    def run(self, chains: int, sweeps: int, rng) -> TemperingResult:
        """``chains`` independent replica systems with split streams.

        With a delta engine attached the replicas advance in lockstep (one
        grouped forward per rung per sweep, batched across replicas);
        results are bit-identical to the sequential path either way.
        """
        if chains <= 0:
            raise ValueError(f"chains must be positive, got {chains}")
        if self.engine is not None:
            return self._run_lockstep(chains, sweeps, rng)
        generators = spawn_generators(rng, chains)
        cold_chains = []
        rung_totals = np.zeros(len(self.betas))
        attempts = 0
        accepts = 0
        for index, gen in enumerate(generators):
            cold, rung_means, att, acc = self.run_chain(sweeps, gen, chain_id=index)
            cold_chains.append(cold)
            rung_totals += rung_means
            attempts += att
            accepts += acc
        return TemperingResult(
            cold_chains=ChainSet(cold_chains),
            rung_means=tuple(float(v) for v in rung_totals / chains),
            betas=self.betas,
            swap_acceptance=accepts / attempts if attempts else float("nan"),
        )

    def _run_lockstep(self, chains: int, sweeps: int, rng) -> TemperingResult:
        """All replica systems in lockstep; rung proposals batched across them.

        Bit-identity with :meth:`run_chain` per replica holds because each
        replica keeps its own spawned generator and consumes it in exactly
        the sequential order (initial rung draws; then per sweep, per rung:
        propose + conditional accept draw; then the swap draws), the
        engine's scored statistics are bit-identical to ``statistic``, and
        every acceptance/aggregation expression is unchanged. Rungs within
        a replica cannot be batched — the rung's conditional accept draw
        shifts the stream the next rung proposes from — but the same rung
        across replicas can, and the initial states all score in one round.
        """
        if sweeps <= 0:
            raise ValueError(f"sweeps must be positive, got {sweeps}")
        engine = self.engine
        generators = spawn_generators(rng, chains)
        n_rungs = len(self.betas)
        states = [
            [FaultConfiguration.sample(self.targets, self.fault_model, g) for _ in range(n_rungs)]
            for g in generators
        ]
        sessions = [[engine.session() for _ in range(n_rungs)] for _ in range(chains)]
        flat_sessions = [session for replica in sessions for session in replica]
        flat_states = [state for replica in states for state in replica]
        flat_stats = engine.evaluate_round(flat_sessions, flat_states)
        for session in flat_sessions:
            session.commit()
        stats = [flat_stats[i * n_rungs : (i + 1) * n_rungs] for i in range(chains)]
        log_priors = [[s.log_prob(self.fault_model) for s in replica] for replica in states]

        colds = [Chain(i) for i in range(chains)]
        rung_sums = [np.zeros(n_rungs) for _ in range(chains)]
        attempts = 0
        accepts = 0
        for _ in range(sweeps):
            for rung, beta in enumerate(self.betas):
                proposals = [
                    self.proposal.propose(states[i][rung], generators[i]) for i in range(chains)
                ]
                cand_stats = engine.evaluate_round(
                    [sessions[i][rung] for i in range(chains)],
                    [candidate for candidate, _ in proposals],
                )
                for i in range(chains):
                    candidate, log_hastings = proposals[i]
                    candidate_stat = cand_stats[i]
                    candidate_log_prior = candidate.log_prob(self.fault_model)
                    log_alpha = (
                        (candidate_log_prior + beta * candidate_stat)
                        - (log_priors[i][rung] + beta * stats[i][rung])
                        + log_hastings
                    )
                    if log_alpha >= 0 or np.log(generators[i].random()) < log_alpha:
                        states[i][rung] = candidate
                        stats[i][rung] = candidate_stat
                        log_priors[i][rung] = candidate_log_prior
                        sessions[i][rung].commit()
            for i in range(chains):
                low = int(generators[i].integers(0, n_rungs - 1))
                high = low + 1
                log_alpha = (self.betas[low] - self.betas[high]) * (stats[i][high] - stats[i][low])
                attempts += 1
                if log_alpha >= 0 or np.log(generators[i].random()) < log_alpha:
                    states[i][low], states[i][high] = states[i][high], states[i][low]
                    stats[i][low], stats[i][high] = stats[i][high], stats[i][low]
                    log_priors[i][low], log_priors[i][high] = (
                        log_priors[i][high],
                        log_priors[i][low],
                    )
                    # Sessions carry the cached activations of their state —
                    # they swap with it.
                    sessions[i][low], sessions[i][high] = sessions[i][high], sessions[i][low]
                    accepts += 1
                colds[i].record(stats[i][0], states[i][0].total_flips())
                rung_sums[i] += stats[i]
        rung_totals = np.zeros(n_rungs)
        for i in range(chains):
            rung_totals += rung_sums[i] / sweeps
        return TemperingResult(
            cold_chains=ChainSet(colds),
            rung_means=tuple(float(v) for v in rung_totals / chains),
            betas=self.betas,
            swap_acceptance=accepts / attempts if attempts else float("nan"),
        )
