"""Convergence diagnostics.

These quantify the paper's completeness notion: "the ability to quantify
'completeness' of an injection campaign (i.e., when further injections do
not change measured hypothesis) using MCMC-mixing".

* :func:`split_r_hat` — Gelman–Rubin potential scale reduction with chain
  splitting (Gelman et al., BDA3): within- vs between-chain variance;
  values near 1 mean the chains agree.
* :func:`effective_sample_size` — Geyer initial-positive-sequence ESS.
* :func:`geweke_z` — z-score comparing early vs late chain segments.
* :func:`monte_carlo_standard_error` — ESS-adjusted standard error of the
  pooled mean.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "autocorrelation",
    "split_r_hat",
    "effective_sample_size",
    "geweke_z",
    "monte_carlo_standard_error",
]


def autocorrelation(x: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Sample autocorrelation function of a 1-D series (lag 0 .. max_lag).

    FFT-based; lag 0 is defined as 1. A constant series returns all zeros
    past lag 0 (its autocovariance is identically zero).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {x.shape}")
    n = len(x)
    if n < 2:
        raise ValueError("series must have at least 2 points")
    if max_lag is None:
        max_lag = n - 1
    max_lag = min(max_lag, n - 1)
    centered = x - x.mean()
    variance = float(centered @ centered) / n
    if variance == 0.0:
        acf = np.zeros(max_lag + 1)
        acf[0] = 1.0
        return acf
    size = 1 << (2 * n - 1).bit_length()
    fft = np.fft.rfft(centered, size)
    acov = np.fft.irfft(fft * np.conjugate(fft), size)[: max_lag + 1] / n
    return acov / acov[0]


def split_r_hat(chains: np.ndarray) -> float:
    """Split-chain Gelman–Rubin statistic for (m, n) chain matrix.

    Each chain is split in half (so intra-chain drift also inflates R̂),
    giving 2m sequences of length n//2. R̂ → 1 as chains mix.
    """
    chains = np.asarray(chains, dtype=np.float64)
    if chains.ndim != 2:
        raise ValueError(f"expected (chains, steps) matrix, got shape {chains.shape}")
    m, n = chains.shape
    if n < 4:
        raise ValueError(f"chains too short for split R-hat: {n} < 4")
    half = n // 2
    split = np.concatenate([chains[:, :half], chains[:, half : 2 * half]], axis=0)
    s, length = split.shape

    chain_means = split.mean(axis=1)
    chain_vars = split.var(axis=1, ddof=1)
    within = chain_vars.mean()
    between = length * chain_means.var(ddof=1)
    if within == 0.0:
        # All chains constant: identical constants are perfectly converged.
        return 1.0 if between == 0.0 else float("inf")
    var_estimate = (length - 1) / length * within + between / length
    return float(np.sqrt(var_estimate / within))


def effective_sample_size(chains: np.ndarray) -> float:
    """Multi-chain ESS via Geyer's initial positive sequence.

    Accepts a 1-D series or an (m, n) matrix. Combines within-chain
    autocorrelations with the multi-chain variance as in BDA3 §11.5.
    """
    chains = np.atleast_2d(np.asarray(chains, dtype=np.float64))
    m, n = chains.shape
    if n < 4:
        raise ValueError(f"chains too short for ESS: {n} < 4")

    chain_means = chains.mean(axis=1)
    chain_vars = chains.var(axis=1, ddof=1)
    within = chain_vars.mean()
    if within == 0.0 and (m == 1 or chain_means.var() == 0.0):
        return float(m * n)  # constant chains: no autocorrelation structure
    between = n * chain_means.var(ddof=1) if m > 1 else 0.0
    var_plus = (n - 1) / n * within + (between / n if m > 1 else within / n)

    # Mean autocovariance across chains at each lag.
    max_lag = n - 1
    acov = np.zeros(max_lag + 1)
    for row in chains:
        centered = row - row.mean()
        size = 1 << (2 * n - 1).bit_length()
        fft = np.fft.rfft(centered, size)
        acov += np.fft.irfft(fft * np.conjugate(fft), size)[: max_lag + 1] / n
    acov /= m

    rho = 1.0 - (within - acov) / var_plus
    # Geyer: sum consecutive lag pairs while positive and decreasing.
    t = 1
    total = 0.0
    previous_pair = float("inf")
    while t + 1 <= max_lag:
        pair = rho[t] + rho[t + 1]
        if pair < 0:
            break
        pair = min(pair, previous_pair)  # enforce monotonicity
        total += pair
        previous_pair = pair
        t += 2
    tau = 1.0 + 2.0 * total
    return float(m * n / max(tau, 1e-12))


def geweke_z(chain: np.ndarray, first: float = 0.1, last: float = 0.5) -> float:
    """Geweke convergence z-score comparing early and late chain windows.

    |z| ≲ 2 is consistent with stationarity. Uses simple segment variances
    (adequate for the weakly correlated chains BDLFI produces; spectral
    density estimation would be overkill here).
    """
    chain = np.asarray(chain, dtype=np.float64)
    if chain.ndim != 1:
        raise ValueError("geweke_z expects a single 1-D chain")
    n = len(chain)
    if not (0 < first < 1 and 0 < last < 1 and first + last <= 1):
        raise ValueError(f"invalid window fractions first={first}, last={last}")
    if n < 10:
        raise ValueError(f"chain too short for Geweke diagnostic: {n} < 10")
    head = chain[: int(first * n)]
    tail = chain[int((1 - last) * n) :]
    var = head.var(ddof=1) / len(head) + tail.var(ddof=1) / len(tail)
    if var == 0.0:
        return 0.0
    return float((head.mean() - tail.mean()) / np.sqrt(var))


def monte_carlo_standard_error(chains: np.ndarray) -> float:
    """Standard error of the pooled mean, deflated by the effective sample size."""
    chains = np.atleast_2d(np.asarray(chains, dtype=np.float64))
    ess = effective_sample_size(chains)
    pooled_var = chains.reshape(-1).var(ddof=1)
    return float(np.sqrt(pooled_var / max(ess, 1e-12)))
