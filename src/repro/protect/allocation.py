"""Protection-budget allocation and scheme evaluation.

Allocation units are (target, IEEE-754 field) pairs — the granularity real
memory-protection hardware works at (e.g. ECC covering the exponent byte of
a weight SRAM). Units are ranked by *predicted damage averted per overhead
bit*, using the gradient-based sensitivity profile, and greedily added
until the overhead budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bits.fields import EXPONENT_BITS, MANTISSA_BITS, SIGN_BIT, bit_field
from repro.protect.scheme import ProtectedFaultModel, ProtectionScheme
from repro.sensitivity.taylor import TaylorSensitivity

__all__ = ["allocate_protection", "evaluate_scheme", "ProtectionComparison"]

_FIELD_LANES = {
    "sign": frozenset({SIGN_BIT}),
    "exponent": frozenset(EXPONENT_BITS),
    "mantissa": frozenset(MANTISSA_BITS),
}


def allocate_protection(
    sensitivity: TaylorSensitivity,
    budget_fraction: float,
) -> ProtectionScheme:
    """Greedy protection allocation under a storage-overhead budget.

    Parameters
    ----------
    sensitivity:
        Taylor sensitivity over the campaign's targets; supplies the
        per-(target, field) predicted damage.
    budget_fraction:
        Maximum fraction of all stored bits that may be protected
        (e.g. 0.25 ≈ "ECC on one byte of every word").

    Returns the scheme maximising predicted damage averted per overhead bit
    under the greedy heuristic.
    """
    if not 0.0 < budget_fraction <= 1.0:
        raise ValueError(f"budget_fraction must be in (0, 1], got {budget_fraction}")

    targets = sensitivity.targets
    total_bits = sum(param.size for _, param in targets) * 32
    budget_bits = int(budget_fraction * total_bits)

    # Score each (target, field) unit: predicted damage in that field.
    units: list[tuple[float, str, str, int]] = []  # (score/bit, target, field, cost)
    for name, param in targets:
        impact = sensitivity.impacts[name]
        for field_name, lanes in _FIELD_LANES.items():
            lane_list = sorted(lanes)
            block = impact[:, lane_list]
            finite = block[np.isfinite(block)]
            catastrophic = int((~np.isfinite(block)).sum())
            damage = float(finite.sum()) + catastrophic  # inf sites ≈ unit mass
            cost = param.size * len(lanes)
            if cost == 0:
                continue
            units.append((damage / cost, name, field_name, cost))

    units.sort(key=lambda unit: -unit[0])
    lanes_by_target: dict[str, frozenset[int]] = {}
    spent = 0
    for _, name, field_name, cost in units:
        if spent + cost > budget_bits:
            continue
        lanes_by_target[name] = lanes_by_target.get(name, frozenset()) | _FIELD_LANES[field_name]
        spent += cost
    return ProtectionScheme(lanes_by_target)


@dataclass(frozen=True)
class ProtectionComparison:
    """Measured effect of a protection scheme at one flip probability."""

    p: float
    unprotected_error: float
    protected_error: float
    golden_error: float
    overhead_fraction: float

    @property
    def error_averted(self) -> float:
        """Absolute error reduction achieved by the scheme."""
        return self.unprotected_error - self.protected_error

    @property
    def recovery_fraction(self) -> float:
        """Fraction of the fault-induced *excess* error removed (0..1)."""
        excess = self.unprotected_error - self.golden_error
        if excess <= 0:
            return 0.0
        return max(0.0, min(1.0, self.error_averted / excess))

    def summary_row(self) -> dict[str, float]:
        return {
            "p": self.p,
            "golden_pct": 100 * self.golden_error,
            "unprotected_pct": 100 * self.unprotected_error,
            "protected_pct": 100 * self.protected_error,
            "recovered_frac": self.recovery_fraction,
            "overhead_frac": self.overhead_fraction,
        }


def evaluate_scheme(
    injector,
    scheme: ProtectionScheme,
    p: float,
    samples: int = 200,
) -> ProtectionComparison:
    """Campaigns with and without the scheme at flip probability ``p``.

    Uses the injector's Bernoulli model as the base fault process; the
    protected campaign wraps it in :class:`ProtectedFaultModel`.
    """
    from repro.faults.bernoulli import BernoulliBitFlipModel

    base = BernoulliBitFlipModel(p)
    unprotected = injector.forward_campaign(p, samples=samples, fault_model=base, stream="protect:base")
    protected = injector.forward_campaign(
        p,
        samples=samples,
        fault_model=ProtectedFaultModel(base, scheme),
        stream="protect:scheme",
    )
    return ProtectionComparison(
        p=p,
        unprotected_error=unprotected.mean_error,
        protected_error=protected.mean_error,
        golden_error=injector.golden_error,
        overhead_fraction=scheme.overhead_fraction(injector.parameter_targets),
    )
