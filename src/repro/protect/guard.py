"""Margin-based runtime guarding — finding F1 turned into a mechanism.

The paper: "the points that are close to the decision boundary (i.e.,
harder to classify) are more egregiously affected by errors. By analyzing
the probability of errors near the boundaries, we can set a threshold on
the regions of the feature space that need more protection and
verification of correctness."

In input dimensions beyond 2 the boundary-distance proxy is the network's
own confidence *margin*: the gap between the top two logits. The
:class:`MarginGuard` flags low-margin inputs for extra verification
(re-execution, ECC-protected inference, human review). Its quality metric
is the coverage curve: what fraction of fault-induced misclassifications
land on flagged inputs, versus what fraction of traffic gets flagged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.configuration import FaultConfiguration
from repro.faults.injection import apply_configuration
from repro.faults.model import FaultModel
from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad

__all__ = ["MarginGuard", "GuardEvaluation"]


@dataclass(frozen=True)
class GuardEvaluation:
    """Coverage/cost of a margin threshold under a fault campaign."""

    threshold: float
    #: fraction of all inputs the guard flags (the verification cost)
    flagged_fraction: float
    #: fraction of fault-induced prediction flips that occurred on flagged inputs
    capture_fraction: float
    #: flips per unflagged input per fault draw (the residual silent risk)
    residual_flip_rate: float

    def summary_row(self) -> dict[str, float]:
        return {
            "threshold": self.threshold,
            "flagged_%": 100 * self.flagged_fraction,
            "captured_%": 100 * self.capture_fraction,
            "residual_flip_rate": self.residual_flip_rate,
        }

    def to_dict(self) -> dict[str, float | None]:
        """JSON-clean record: the ``nan`` sentinel (no flips observed)
        serialises as ``null`` rather than invalid-JSON ``NaN``."""
        from repro.utils.persist import sanitize_nonfinite

        return sanitize_nonfinite(
            {
                "threshold": self.threshold,
                "flagged_fraction": self.flagged_fraction,
                "capture_fraction": self.capture_fraction,
                "residual_flip_rate": self.residual_flip_rate,
            }
        )

    @classmethod
    def from_dict(cls, payload: dict) -> "GuardEvaluation":
        """Inverse of :meth:`to_dict`; ``null`` restores to ``nan``."""
        from repro.utils.persist import float_from_json

        return cls(
            threshold=float_from_json(payload.get("threshold")),
            flagged_fraction=float_from_json(payload.get("flagged_fraction")),
            capture_fraction=float_from_json(payload.get("capture_fraction")),
            residual_flip_rate=float_from_json(payload.get("residual_flip_rate")),
        )


class MarginGuard:
    """Flag inputs whose top-2 logit margin falls below a threshold."""

    def __init__(self, model: Module) -> None:
        self.model = model.eval()

    def margins(self, inputs: np.ndarray) -> np.ndarray:
        """Top-1 minus top-2 logit per input (the fault-vulnerability proxy)."""
        inputs = np.asarray(inputs, dtype=np.float32)
        with no_grad():
            logits = self.model(Tensor(inputs)).data
        if logits.shape[1] < 2:
            raise ValueError("margin guarding needs at least 2 classes")
        part = np.partition(logits, -2, axis=1)
        return (part[:, -1] - part[:, -2]).astype(np.float64)

    def flags(self, inputs: np.ndarray, threshold: float) -> np.ndarray:
        """Boolean mask of inputs needing extra verification."""
        return self.margins(inputs) < threshold

    def calibrate(self, inputs: np.ndarray, flag_fraction: float) -> float:
        """Threshold flagging (approximately) the requested traffic fraction."""
        if not 0.0 < flag_fraction < 1.0:
            raise ValueError(f"flag_fraction must be in (0, 1), got {flag_fraction}")
        margins = self.margins(inputs)
        return float(np.quantile(margins, flag_fraction))

    # ------------------------------------------------------------------ #
    # evaluation under faults
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        inputs: np.ndarray,
        threshold: float,
        fault_model: FaultModel,
        targets: list,
        samples: int,
        rng: np.random.Generator,
    ) -> GuardEvaluation:
        """Measure the coverage curve point at ``threshold``.

        Runs ``samples`` fault draws; for each, records which inputs'
        predictions flipped, then splits flips into flagged/unflagged.
        """
        if samples <= 0:
            raise ValueError(f"samples must be positive, got {samples}")
        inputs = np.asarray(inputs, dtype=np.float32)
        flagged = self.flags(inputs, threshold)
        x = Tensor(inputs)
        with no_grad():
            golden = self.model(x).data.argmax(axis=1)

        flips_flagged = 0
        flips_unflagged = 0
        for _ in range(samples):
            configuration = FaultConfiguration.sample(targets, fault_model, rng)
            with apply_configuration(self.model, configuration):
                with no_grad(), np.errstate(all="ignore"):
                    predictions = self.model(x).data.argmax(axis=1)
            changed = predictions != golden
            flips_flagged += int(changed[flagged].sum())
            flips_unflagged += int(changed[~flagged].sum())

        total_flips = flips_flagged + flips_unflagged
        unflagged_count = int((~flagged).sum())
        return GuardEvaluation(
            threshold=float(threshold),
            flagged_fraction=float(flagged.mean()),
            capture_fraction=flips_flagged / total_flips if total_flips else float("nan"),
            residual_flip_rate=(
                flips_unflagged / (unflagged_count * samples) if unflagged_count else 0.0
            ),
        )

    def coverage_curve(
        self,
        inputs: np.ndarray,
        fault_model: FaultModel,
        targets: list,
        flag_fractions: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4),
        samples: int = 100,
        rng: np.random.Generator | int | None = 0,
    ) -> list[GuardEvaluation]:
        """Coverage/cost evaluations over a grid of flagged-traffic budgets."""
        from repro.utils.rng import as_generator

        generator = as_generator(rng)
        evaluations = []
        for fraction in flag_fractions:
            threshold = self.calibrate(inputs, fraction)
            evaluations.append(
                self.evaluate(inputs, threshold, fault_model, targets, samples, generator)
            )
        return evaluations
