"""Protection schemes as bit-lane masks over fault targets."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bits.fields import field_mask
from repro.bits.float32 import BITS_PER_FLOAT
from repro.faults.model import FaultModel

__all__ = ["ProtectionScheme", "ProtectedFaultModel"]


@dataclass(frozen=True)
class ProtectionScheme:
    """Which bits of which targets are protected (cannot flip).

    ``lanes_by_target`` maps a dotted parameter name to a frozenset of
    protected bit lanes; the special key ``"*"`` applies to every target
    not listed explicitly. Construct via the classmethods for the common
    cases.
    """

    lanes_by_target: dict[str, frozenset[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for target, lanes in self.lanes_by_target.items():
            for lane in lanes:
                if not 0 <= lane < BITS_PER_FLOAT:
                    raise ValueError(f"bit lane {lane} out of range for target {target!r}")
        object.__setattr__(
            self,
            "lanes_by_target",
            {name: frozenset(v) for name, v in self.lanes_by_target.items()},
        )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def none(cls) -> "ProtectionScheme":
        return cls({})

    @classmethod
    def field_everywhere(cls, field_name: str) -> "ProtectionScheme":
        """Protect one IEEE-754 field (sign/exponent/mantissa) in every target."""
        mask = int(field_mask(field_name))
        lanes = frozenset(b for b in range(BITS_PER_FLOAT) if mask >> b & 1)
        return cls({"*": lanes})

    @classmethod
    def full(cls) -> "ProtectionScheme":
        """Protect every bit everywhere (ideal, 100 % overhead)."""
        return cls({"*": frozenset(range(BITS_PER_FLOAT))})

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def protected_lanes(self, target: str) -> frozenset[int]:
        if target in self.lanes_by_target:
            return self.lanes_by_target[target]
        return self.lanes_by_target.get("*", frozenset())

    def protection_mask(self, target: str) -> np.uint32:
        """uint32 with protected bits set (to be cleared from fault masks)."""
        mask = np.uint32(0)
        for lane in self.protected_lanes(target):
            mask |= np.uint32(1) << np.uint32(lane)
        return mask

    def overhead_bits(self, targets: list) -> int:
        """Total protected bits over the given ``(name, parameter)`` targets.

        A proxy for storage/area overhead: one redundant bit per protected
        bit (parity-per-bit upper bound; real ECC amortises better, so this
        is conservative).
        """
        return sum(param.size * len(self.protected_lanes(name)) for name, param in targets)

    def overhead_fraction(self, targets: list) -> float:
        """Protected bits as a fraction of all stored bits."""
        total = sum(param.size for _, param in targets) * BITS_PER_FLOAT
        if total == 0:
            raise ValueError("no targets")
        return self.overhead_bits(targets) / total

    def merged_with(self, other: "ProtectionScheme") -> "ProtectionScheme":
        """Union of two schemes."""
        combined = dict(self.lanes_by_target)
        for target, lanes in other.lanes_by_target.items():
            combined[target] = combined.get(target, frozenset()) | lanes
        return ProtectionScheme(combined)


class ProtectedFaultModel(FaultModel):
    """A fault model filtered through a protection scheme.

    Sampling delegates to the base model, then clears every flip landing on
    a protected lane of the *current target* — set per target with
    :meth:`for_target` (campaign plumbing calls the model once per target
    tensor, so the injector binds the name before each draw).

    The resulting mask distribution is exactly "base model conditioned on
    protected bits not flipping" for per-bit-independent models like the
    Bernoulli AVF model, since clearing independent lanes is equivalent to
    setting their flip probability to zero.
    """

    def __init__(self, base: FaultModel, scheme: ProtectionScheme, target: str = "*") -> None:
        self.base = base
        self.scheme = scheme
        self.target = target

    def for_target(self, target: str) -> "ProtectedFaultModel":
        """A view of this model bound to one target's protected lanes."""
        return ProtectedFaultModel(self.base, self.scheme, target)

    def sample_mask(self, shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        mask = self.base.sample_mask(shape, rng)
        protected = self.scheme.protection_mask(self.target)
        return mask & ~protected

    def log_prob_mask(self, mask: np.ndarray) -> float:
        protected = self.scheme.protection_mask(self.target)
        if np.any(np.asarray(mask, dtype=np.uint32) & protected):
            return -np.inf  # impossible under protection
        return self.base.log_prob_mask(mask)

    def expected_flips(self, n_elements: int) -> float:
        unprotected = BITS_PER_FLOAT - len(self.scheme.protected_lanes(self.target))
        base_per_element = self.base.expected_flips(n_elements) / max(n_elements, 1)
        return n_elements * base_per_element * unprotected / BITS_PER_FLOAT

    def __repr__(self) -> str:
        return f"ProtectedFaultModel(base={self.base!r}, target={self.target!r})"
