"""Selective fault protection and protection-budget allocation.

The paper motivates protection directly: "By analyzing the probability of
errors near the boundaries, we can set a threshold on the regions of the
feature space that need more protection and verification of correctness",
and finding F2's knee is pitched as "the optimal performance-reliability
trade-off". This package turns those observations into a mechanism:

* :class:`~repro.protect.scheme.ProtectionScheme` — a declaration of which
  bit lanes of which targets are protected (modelling ECC/parity/TMR on a
  subset of stored bits);
* :class:`~repro.protect.scheme.ProtectedFaultModel` — wraps any mask-based
  fault model and clears flips that land on protected bits, so protected
  campaigns reuse the whole BDLFI machinery unchanged;
* :func:`~repro.protect.allocation.allocate_protection` — greedy allocation
  of a bit-overhead budget across (layer, field) units, ranked by the
  gradient-based sensitivity profile of :mod:`repro.sensitivity`;
* :func:`~repro.protect.allocation.evaluate_scheme` — measured error of a
  protected vs unprotected campaign at fixed p.

Experiment A5 (``benchmarks/bench_protection.py``) shows exponent-only
protection (a 28 % storage overhead) recovering most of the unprotected
error at the paper's knee.
"""

from repro.protect.scheme import ProtectionScheme, ProtectedFaultModel
from repro.protect.allocation import allocate_protection, evaluate_scheme, ProtectionComparison
from repro.protect.guard import MarginGuard, GuardEvaluation

__all__ = [
    "ProtectionScheme",
    "ProtectedFaultModel",
    "allocate_protection",
    "evaluate_scheme",
    "ProtectionComparison",
    "MarginGuard",
    "GuardEvaluation",
]
