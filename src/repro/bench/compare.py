"""Regression gate: current bench records vs committed baselines.

The comparison is per-case median ratio against a configurable tolerance.
Medians below ``noise_floor_s`` on *both* sides are skipped — at tens of
microseconds the ratio measures scheduler jitter, not the code. A case
present in the baseline but missing from the current run is itself a
failure (a silently dropped benchmark would otherwise pass forever).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import validate_bench_record

__all__ = ["CaseComparison", "ComparisonReport", "compare_records"]


@dataclass(frozen=True)
class CaseComparison:
    """One case's verdict against its baseline."""

    name: str
    baseline_s: float | None
    current_s: float | None
    ratio: float | None
    status: str  # "ok" | "regressed" | "improved" | "missing" | "new" | "noise"

    def describe(self) -> str:
        if self.status == "missing":
            return f"{self.name}: MISSING (baseline {self.baseline_s:.6f}s, no current run)"
        if self.status == "new":
            return f"{self.name}: new case ({self.current_s:.6f}s, no baseline)"
        if self.status == "noise":
            return f"{self.name}: below noise floor, skipped"
        return (
            f"{self.name}: {self.status} — baseline {self.baseline_s:.6f}s, "
            f"current {self.current_s:.6f}s ({self.ratio:.2f}x)"
        )


@dataclass
class ComparisonReport:
    """Gate verdict for one group."""

    group: str
    tolerance: float
    comparisons: list[CaseComparison] = field(default_factory=list)

    @property
    def regressions(self) -> list[CaseComparison]:
        return [c for c in self.comparisons if c.status in ("regressed", "missing")]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def summary(self) -> str:
        lines = [
            f"bench gate [{self.group}]: "
            f"{'PASS' if self.passed else 'FAIL'} "
            f"({len(self.comparisons)} case(s), tolerance {self.tolerance:g}x)"
        ]
        for comparison in self.comparisons:
            marker = "!" if comparison.status in ("regressed", "missing") else " "
            lines.append(f"  {marker} {comparison.describe()}")
        return "\n".join(lines)


def compare_records(
    current: dict,
    baseline: dict,
    *,
    tolerance: float = 2.0,
    noise_floor_s: float = 1e-4,
) -> ComparisonReport:
    """Gate ``current`` against ``baseline``; both are validated first.

    ``tolerance`` is the maximum allowed ``current_median / baseline_median``
    ratio. The default is deliberately loose (2x) because bench hosts vary;
    CI can pass a tighter or looser value explicitly.
    """
    current = validate_bench_record(current)
    baseline = validate_bench_record(baseline)
    if current["group"] != baseline["group"]:
        raise ValueError(
            f"group mismatch: current {current['group']!r} vs baseline {baseline['group']!r}"
        )
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    report = ComparisonReport(group=current["group"], tolerance=tolerance)
    current_cases = current["cases"]
    for name, base_case in sorted(baseline["cases"].items()):
        base_median = float(base_case["median_s"])
        cur_case = current_cases.get(name)
        if cur_case is None:
            report.comparisons.append(
                CaseComparison(name, base_median, None, None, "missing")
            )
            continue
        cur_median = float(cur_case["median_s"])
        if base_median < noise_floor_s and cur_median < noise_floor_s:
            report.comparisons.append(
                CaseComparison(name, base_median, cur_median, None, "noise")
            )
            continue
        ratio = cur_median / base_median if base_median > 0 else float("inf")
        if ratio > tolerance:
            status = "regressed"
        elif ratio < 1.0 / tolerance:
            status = "improved"
        else:
            status = "ok"
        report.comparisons.append(CaseComparison(name, base_median, cur_median, ratio, status))
    for name, cur_case in sorted(current_cases.items()):
        if name not in baseline["cases"]:
            report.comparisons.append(
                CaseComparison(name, None, float(cur_case["median_s"]), None, "new")
            )
    return report
