"""Run bench suites, emit ``BENCH_<group>.json``, gate against baselines.

The runner is what ``python -m repro bench`` calls: it instantiates the
requested suites (training or loading their golden workloads), times each
case under the harness protocol, writes one atomic record per group, and —
in ``--check`` mode — compares the fresh records against the committed
baselines, returning a non-zero verdict on any regression.
"""

from __future__ import annotations

import fnmatch
import json
import os

from repro.bench.compare import ComparisonReport, compare_records
from repro.bench.harness import make_record, measure, validate_bench_record
from repro.bench.suites import DEFAULT_SEED, build_suite, suite_names
from repro.utils.logging import get_logger
from repro.utils.persist import atomic_write_json

__all__ = ["bench_path", "write_record", "load_record", "run_groups"]

_LOGGER = get_logger("bench")


def bench_path(group: str, directory: str = ".") -> str:
    """The conventional record path for a group: ``<dir>/BENCH_<group>.json``."""
    return os.path.join(directory, f"BENCH_{group}.json")


def write_record(record: dict, directory: str = ".") -> str:
    """Atomically write a validated record to its conventional path."""
    record = validate_bench_record(record)
    path = bench_path(record["group"], directory)
    atomic_write_json(path, record)
    return path


def load_record(path: str) -> dict:
    """Read and schema-check a bench record file."""
    with open(path, encoding="utf-8") as handle:
        return validate_bench_record(json.load(handle))


def run_groups(
    groups: list[str] | None = None,
    *,
    quick: bool = False,
    seed: int = DEFAULT_SEED,
    cache_dir: str | None = None,
    out_dir: str = ".",
    case_filter: str | None = None,
    check: bool = False,
    baseline_dir: str | None = None,
    tolerance: float = 2.0,
    progress=print,
) -> tuple[dict[str, dict], list[ComparisonReport]]:
    """Run ``groups`` (default: all) and optionally gate against baselines.

    Returns ``(records_by_group, reports)``; ``reports`` is empty unless
    ``check`` is set. ``case_filter`` is an fnmatch pattern over case names
    (filtered records are not written or gated — a partial run must never
    overwrite a full baseline or trip the missing-case check).
    """
    groups = list(groups) if groups else suite_names()
    baseline_dir = baseline_dir if baseline_dir is not None else out_dir
    records: dict[str, dict] = {}
    reports: list[ComparisonReport] = []
    partial = case_filter is not None
    for group in groups:
        progress(f"bench: building workloads for {group} ({'quick' if quick else 'full'} tier)")
        suite = build_suite(group, quick=quick, seed=seed, cache_dir=cache_dir)
        if partial:
            suite = {
                name: spec
                for name, spec in suite.items()
                if fnmatch.fnmatch(name, case_filter)
            }
            if not suite:
                progress(f"bench: {group}: no case matches {case_filter!r}, skipped")
                continue
        cases = {}
        for name, spec in suite.items():
            stats = measure(spec.fn, warmup=spec.warmup, repeats=spec.repeats)
            cases[name] = stats
            progress(
                f"bench: {group}.{name}: median {stats.median_s:.6f}s "
                f"(iqr {stats.iqr_s:.6f}s, n={stats.repeats})"
            )
        record = make_record(group, cases, quick=quick, seed=seed)
        records[group] = record
        if partial:
            progress(f"bench: {group}: filtered run, record not written")
            continue
        path = write_record(record, out_dir)
        progress(f"bench: wrote {path}")
        if check:
            baseline_path = bench_path(group, baseline_dir)
            if not os.path.exists(baseline_path):
                raise FileNotFoundError(
                    f"no committed baseline at {baseline_path}; "
                    f"run `python -m repro bench{' --quick' if quick else ''}` "
                    f"and commit the BENCH_*.json files"
                )
            baseline = load_record(baseline_path)
            report = compare_records(record, baseline, tolerance=tolerance)
            reports.append(report)
            progress(report.summary())
    return records, reports
