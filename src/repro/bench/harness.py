"""Measurement protocol and the versioned ``repro.bench/1`` record schema.

One benchmark *case* is a zero-argument callable; :func:`measure` times it
under the warmup/repeat protocol on the canonical clock and reduces the
samples to robust statistics (median + IQR — a stray scheduler hiccup
shifts the mean but barely moves the median). A *group* of cases freezes
into a record via :func:`make_record`; records are what ``BENCH_*.json``
baselines contain and what the regression gate compares.
"""

from __future__ import annotations

import os
import platform
import statistics
import sys
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.obs.profile import clock_s, wall_display
from repro.obs.schema import SCHEMA_VERSION, artifact_version, artifact_stamp

__all__ = [
    "BENCH_SCHEMA",
    "CaseStats",
    "measure",
    "make_record",
    "validate_bench_record",
]

#: schema identifier stamped on (and required of) every bench record
BENCH_SCHEMA = "repro.bench/1"

#: per-case statistic fields, all in seconds except the integer protocol ones
_CASE_FLOAT_FIELDS = ("median_s", "iqr_s", "mean_s", "min_s", "max_s")
_CASE_INT_FIELDS = ("repeats", "warmup")


@dataclass(frozen=True)
class CaseStats:
    """Robust timing summary of one benchmark case."""

    median_s: float
    iqr_s: float
    mean_s: float
    min_s: float
    max_s: float
    repeats: int
    warmup: int

    @classmethod
    def from_samples(cls, samples: list[float], warmup: int) -> "CaseStats":
        if not samples:
            raise ValueError("no timing samples")
        if len(samples) >= 2:
            quartiles = statistics.quantiles(samples, n=4, method="inclusive")
            iqr = quartiles[2] - quartiles[0]
        else:
            iqr = 0.0
        return cls(
            median_s=statistics.median(samples),
            iqr_s=iqr,
            mean_s=statistics.fmean(samples),
            min_s=min(samples),
            max_s=max(samples),
            repeats=len(samples),
            warmup=warmup,
        )

    def as_dict(self) -> dict:
        return {
            "median_s": self.median_s,
            "iqr_s": self.iqr_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "repeats": self.repeats,
            "warmup": self.warmup,
        }


def measure(fn: Callable[[], object], *, warmup: int = 1, repeats: int = 5) -> CaseStats:
    """Time ``fn`` under the warmup/repeat protocol.

    ``warmup`` untimed calls absorb one-time costs (imports, numpy
    allocator warm-up, checkpoint mmap), then ``repeats`` timed calls on
    :func:`~repro.obs.profile.clock_s` feed the robust summary.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    samples: list[float] = []
    for _ in range(repeats):
        started = clock_s()
        fn()
        samples.append(clock_s() - started)
    return CaseStats.from_samples(samples, warmup=warmup)


def _environment() -> dict:
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
    }


def make_record(
    group: str,
    cases: Mapping[str, CaseStats],
    *,
    quick: bool,
    seed: int,
) -> dict:
    """Freeze one suite run into a ``repro.bench/1`` record.

    ``created`` is a display timestamp (wall clock, never subtracted);
    every duration inside ``cases`` came from the monotonic clock.
    """
    return {
        "schema": BENCH_SCHEMA,
        **artifact_stamp(),
        "group": group,
        "quick": quick,
        "seed": seed,
        "created": wall_display(),
        "environment": _environment(),
        "cases": {name: stats.as_dict() for name, stats in sorted(cases.items())},
    }


def validate_bench_record(record: object) -> dict:
    """Schema-check a bench record; returns it on success, raises ValueError.

    The gate and the tests both call this, so a malformed baseline (hand
    edit, truncated write, schema drift) fails loudly instead of silently
    comparing garbage.
    """
    if not isinstance(record, dict):
        raise ValueError(f"bench record must be a dict, got {type(record).__name__}")
    schema = record.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(f"unsupported bench schema {schema!r} (expected {BENCH_SCHEMA!r})")
    # artifact stamp: records written before the stamp existed load as v0
    if artifact_version(record) > SCHEMA_VERSION:
        raise ValueError(
            f"bench record schema_version {record.get('schema_version')!r} is newer than "
            f"supported version {SCHEMA_VERSION}"
        )
    for key, kind in (("group", str), ("quick", bool), ("seed", int), ("cases", dict)):
        if not isinstance(record.get(key), kind):
            raise ValueError(f"bench record field {key!r} must be {kind.__name__}")
    if not record["cases"]:
        raise ValueError("bench record has no cases")
    for name, case in record["cases"].items():
        if not isinstance(case, dict):
            raise ValueError(f"case {name!r} must be a dict")
        for field in _CASE_FLOAT_FIELDS:
            value = case.get(field)
            if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
                raise ValueError(f"case {name!r} field {field!r} must be a non-negative number")
        for field in _CASE_INT_FIELDS:
            value = case.get(field)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValueError(f"case {name!r} field {field!r} must be a non-negative int")
        if case["repeats"] < 1:
            raise ValueError(f"case {name!r} has repeats < 1")
    return record
