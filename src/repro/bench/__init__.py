"""repro.bench — reproducible benchmark harness with regression gating.

The continuous-benchmarking counterpart to :mod:`repro.obs`: where the
profiler answers *where time goes inside one run*, this package answers
*whether runs got slower between commits*. It standardises the measurement
protocol every benchmark in the repository uses:

* **pinned seeds** — workloads are built from fixed seeds (the same golden
  networks and eval batches each run), so timing variance comes from the
  machine, never the workload;
* **warmup/repeat protocol** — :func:`measure` discards warmup iterations
  and then times ``repeats`` runs on the canonical clock
  (:func:`repro.obs.profile.clock_s`);
* **robust statistics** — the summary statistic is the *median* with the
  interquartile range as the noise estimate; mean/min/max ride along;
* **versioned records** — :func:`repro.bench.harness.make_record` freezes a
  suite run into a ``repro.bench/1`` JSON document
  (``BENCH_<group>.json``, written at the repo root by convention), and
  :func:`repro.bench.harness.validate_bench_record` schema-checks one;
* **regression gate** — :func:`repro.bench.compare.compare_records` ratios
  current vs baseline medians against a configurable tolerance, failing on
  regressed *or missing* cases; CI runs the quick tier on every PR.

Run it as ``python -m repro bench --quick`` (see ``--help``), or call
:func:`repro.bench.runner.run_groups` programmatically.
"""

from repro.bench.compare import CaseComparison, ComparisonReport, compare_records
from repro.bench.harness import (
    BENCH_SCHEMA,
    CaseStats,
    make_record,
    measure,
    validate_bench_record,
)
from repro.bench.runner import bench_path, load_record, run_groups, write_record
from repro.bench.suites import SUITES, suite_names

__all__ = [
    "BENCH_SCHEMA",
    "CaseStats",
    "measure",
    "make_record",
    "validate_bench_record",
    "CaseComparison",
    "ComparisonReport",
    "compare_records",
    "SUITES",
    "suite_names",
    "run_groups",
    "write_record",
    "load_record",
    "bench_path",
]
