"""The standard benchmark groups behind ``repro bench``.

Each suite builder returns ``{case_name: CaseSpec}`` — zero-argument
callables over seed-pinned workloads (see :mod:`repro.bench.workloads`)
plus their warmup/repeat protocol. Group names match the historical
``benchmarks/bench_*.py`` files they mirror, and the emitted baselines are
``BENCH_<group>.json``:

* ``bench_micro`` — the primitives campaign cost is built from (mask
  sampling, XOR application, a faulted forward pass, one MCMC stretch,
  the conv2d kernel);
* ``bench_parallel_sweep`` — a probability sweep sequentially and fanned
  over a worker pool;
* ``bench_fig2_mlp_sweep`` — the paper's Fig. 2 error-vs-p sweep on the
  image MLP;
* ``bench_completeness`` — fixed-budget MCMC mixing and adaptive stopping.

Every suite has a *quick* tier (smaller grids/budgets, same case names) so
CI gates on the same baselines a developer regenerates locally with
``python -m repro bench --quick``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bench import workloads

__all__ = ["CaseSpec", "SUITES", "suite_names", "build_suite"]

#: seed shared by all campaign workloads (the paper's year, as elsewhere)
DEFAULT_SEED = 2019


@dataclass(frozen=True)
class CaseSpec:
    """One benchmark case: the callable plus its measurement protocol."""

    fn: Callable[[], object]
    warmup: int = 1
    repeats: int = 5


def _micro_suite(quick: bool, seed: int, cache_dir: str | None) -> dict[str, CaseSpec]:
    from repro.bits import apply_bit_mask, sample_bernoulli_mask
    from repro.core import BayesianFaultInjector
    from repro.faults import BernoulliBitFlipModel, FaultConfiguration, TargetSpec
    from repro.mcmc import MetropolisHastingsSampler, PriorTarget, SingleBitToggle
    from repro.tensor import Tensor, conv2d, no_grad

    repeats = 3 if quick else 7
    model = workloads.golden_mlp_moons(cache_dir)
    eval_x, eval_y = workloads.moons_eval_batch()
    injector = BayesianFaultInjector(
        model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=seed
    )
    fault_model = BernoulliBitFlipModel(1e-3)
    statistic = injector.make_statistic(fault_model, np.random.default_rng(3))
    configuration = FaultConfiguration.sample(
        injector.parameter_targets, fault_model, np.random.default_rng(4)
    )
    values = np.random.default_rng(1).normal(size=1_000_000).astype(np.float32)
    mask = sample_bernoulli_mask((1_000_000,), 1e-4, np.random.default_rng(2))
    conv_rng = np.random.default_rng(7)
    conv_x = Tensor(conv_rng.normal(size=(16, 16, 12, 12)).astype(np.float32))
    conv_w = Tensor(conv_rng.normal(size=(32, 16, 3, 3)).astype(np.float32))

    def mask_sampling():
        workloads_rng = np.random.default_rng(0)
        return sample_bernoulli_mask((1_000_000,), 1e-5, workloads_rng)

    def mcmc_stretch():
        sampler = MetropolisHastingsSampler(
            PriorTarget(fault_model),
            SingleBitToggle(injector.parameter_targets),
            statistic,
            initial=lambda r: FaultConfiguration.sample(
                injector.parameter_targets, fault_model, r
            ),
        )
        return sampler.run_chain(10, np.random.default_rng(6))

    def conv_forward():
        with no_grad():
            return conv2d(conv_x, conv_w, stride=1, padding=1)

    return {
        "mask_sampling_small_p": CaseSpec(mask_sampling, repeats=repeats),
        "mask_application": CaseSpec(lambda: apply_bit_mask(values, mask), repeats=repeats),
        "faulted_forward_mlp": CaseSpec(lambda: statistic(configuration), repeats=repeats),
        "mcmc_10_steps": CaseSpec(mcmc_stretch, repeats=repeats),
        "conv2d_forward": CaseSpec(conv_forward, repeats=repeats),
    }


def _parallel_sweep_suite(quick: bool, seed: int, cache_dir: str | None) -> dict[str, CaseSpec]:
    from repro.core import BayesianFaultInjector, ProbabilitySweep
    from repro.exec import InjectorRecipe, ParallelCampaignExecutor
    from repro.faults import TargetSpec
    from repro.nn import paper_mlp

    p_values = tuple(np.logspace(-5, -1, 5 if quick else 13))
    samples = 30 if quick else 120
    pool = 2 if quick else 4
    model = workloads.golden_mlp_moons(cache_dir)
    eval_x, eval_y = workloads.moons_eval_batch()
    recipe = InjectorRecipe.from_model(
        model, eval_x, eval_y,
        spec=TargetSpec.weights_and_biases(), seed=seed,
        model_builder=functools.partial(paper_mlp, rng=0),
    )

    def sweep(workers: int):
        injector = BayesianFaultInjector(
            model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=seed
        )
        executor = ParallelCampaignExecutor(recipe, workers=workers)
        return ProbabilitySweep(
            injector, p_values=p_values, samples=samples, chains=2, executor=executor
        ).run()

    repeats = 2 if quick else 3
    return {
        "sweep_sequential": CaseSpec(lambda: sweep(1), warmup=1, repeats=repeats),
        "sweep_parallel": CaseSpec(lambda: sweep(pool), warmup=1, repeats=repeats),
    }


def _fig2_suite(quick: bool, seed: int, cache_dir: str | None) -> dict[str, CaseSpec]:
    from repro.core import BayesianFaultInjector, ProbabilitySweep
    from repro.faults import TargetSpec

    p_values = tuple(np.logspace(-5, -1, 5 if quick else 13))
    samples = 30 if quick else 150
    data = workloads.mlp_image_data(quick)
    model = workloads.golden_mlp_images(quick, cache_dir, data=data)
    eval_x, eval_y = workloads.mlp_image_eval(quick, data=data)
    injector = BayesianFaultInjector(
        model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=seed
    )

    def sweep():
        return ProbabilitySweep(
            injector, p_values=p_values, samples=samples, chains=2
        ).run()

    return {"fig2_sweep": CaseSpec(sweep, warmup=1, repeats=2 if quick else 3)}


def _completeness_suite(quick: bool, seed: int, cache_dir: str | None) -> dict[str, CaseSpec]:
    from repro.core import BayesianFaultInjector
    from repro.faults import TargetSpec
    from repro.mcmc import CompletenessCriterion

    flip_p = 5e-3
    chains = 2 if quick else 4
    steps = 60 if quick else 500
    model = workloads.golden_mlp_moons(cache_dir)
    eval_x, eval_y = workloads.moons_eval_batch()
    injector = BayesianFaultInjector(
        model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=seed
    )
    criterion = CompletenessCriterion(
        stderr_tolerance=0.02 if quick else 0.01, min_ess=50 if quick else 100
    )

    def mcmc_fixed():
        return injector.mcmc_campaign(flip_p, chains=chains, steps=steps)

    def adaptive():
        return injector.run_until_complete(
            flip_p,
            criterion=criterion,
            chains=chains,
            batch_steps=25 if quick else 50,
            max_steps=200 if quick else 1000,
        )

    repeats = 2 if quick else 3
    return {
        "mcmc_fixed_budget": CaseSpec(mcmc_fixed, warmup=0, repeats=repeats),
        "adaptive_stopping": CaseSpec(adaptive, warmup=0, repeats=repeats),
    }


#: group name → suite builder ``(quick, seed, cache_dir) → {name: CaseSpec}``
SUITES: dict[str, Callable[[bool, int, str | None], dict[str, CaseSpec]]] = {
    "bench_micro": _micro_suite,
    "bench_parallel_sweep": _parallel_sweep_suite,
    "bench_fig2_mlp_sweep": _fig2_suite,
    "bench_completeness": _completeness_suite,
}


def suite_names() -> list[str]:
    return sorted(SUITES)


def build_suite(name: str, *, quick: bool, seed: int = DEFAULT_SEED, cache_dir: str | None = None):
    """Instantiate one suite's cases (trains/loads its workloads)."""
    if name not in SUITES:
        raise ValueError(f"unknown bench suite {name!r}; choose from {suite_names()}")
    return SUITES[name](quick, seed, cache_dir)
