"""The standard benchmark groups behind ``repro bench``.

Each suite builder returns ``{case_name: CaseSpec}`` — zero-argument
callables over seed-pinned workloads (see :mod:`repro.bench.workloads`)
plus their warmup/repeat protocol. Group names match the historical
``benchmarks/bench_*.py`` files they mirror, and the emitted baselines are
``BENCH_<group>.json``:

* ``bench_micro`` — the primitives campaign cost is built from (mask
  sampling, XOR application, a faulted forward pass, one MCMC stretch,
  the conv2d kernel);
* ``bench_parallel_sweep`` — a probability sweep sequentially and fanned
  over a worker pool;
* ``bench_fig2_mlp_sweep`` — the paper's Fig. 2 error-vs-p sweep on the
  image MLP;
* ``bench_completeness`` — fixed-budget MCMC mixing and adaptive stopping;
* ``bench_fastpath`` — the faulted-forward fast path (prefix caching +
  batched evaluation + sparse apply) against the standard path on a
  ResNet-18 layerwise campaign;
* ``bench_mcmc`` — delta-forward chain campaigns against the standard
  per-proposal forward, across the three proposal locality regimes
  (same-layer, cross-layer, full-surface);
* ``bench_estimator`` — the estimator tracker's fold throughput over 10k
  synthetic task outcomes and the query-side document/exposition builds.

Every suite has a *quick* tier (smaller grids/budgets, same case names) so
CI gates on the same baselines a developer regenerates locally with
``python -m repro bench --quick``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bench import workloads

__all__ = ["CaseSpec", "SUITES", "suite_names", "build_suite"]

#: seed shared by all campaign workloads (the paper's year, as elsewhere)
DEFAULT_SEED = 2019


@dataclass(frozen=True)
class CaseSpec:
    """One benchmark case: the callable plus its measurement protocol."""

    fn: Callable[[], object]
    warmup: int = 1
    repeats: int = 5


def _micro_suite(quick: bool, seed: int, cache_dir: str | None) -> dict[str, CaseSpec]:
    from repro.bits import apply_bit_mask, sample_bernoulli_mask
    from repro.core import BayesianFaultInjector
    from repro.faults import BernoulliBitFlipModel, FaultConfiguration, TargetSpec
    from repro.mcmc import MetropolisHastingsSampler, PriorTarget, SingleBitToggle
    from repro.tensor import Tensor, conv2d, no_grad

    repeats = 3 if quick else 7
    # Sub-millisecond cases are dominated by scheduler jitter at 3 repeats,
    # which made the CI gate flaky; their per-repeat cost is trivial, so
    # take enough samples for a stable median in both tiers.
    light_repeats = 15
    model = workloads.golden_mlp_moons(cache_dir)
    eval_x, eval_y = workloads.moons_eval_batch()
    injector = BayesianFaultInjector(
        model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=seed
    )
    fault_model = BernoulliBitFlipModel(1e-3)
    statistic = injector.make_statistic(fault_model, np.random.default_rng(3))
    configuration = FaultConfiguration.sample(
        injector.parameter_targets, fault_model, np.random.default_rng(4)
    )
    values = np.random.default_rng(1).normal(size=1_000_000).astype(np.float32)
    mask = sample_bernoulli_mask((1_000_000,), 1e-4, np.random.default_rng(2))
    conv_rng = np.random.default_rng(7)
    conv_x = Tensor(conv_rng.normal(size=(16, 16, 12, 12)).astype(np.float32))
    conv_w = Tensor(conv_rng.normal(size=(32, 16, 3, 3)).astype(np.float32))

    def mask_sampling():
        workloads_rng = np.random.default_rng(0)
        return sample_bernoulli_mask((1_000_000,), 1e-5, workloads_rng)

    def mcmc_stretch():
        sampler = MetropolisHastingsSampler(
            PriorTarget(fault_model),
            SingleBitToggle(injector.parameter_targets),
            statistic,
            initial=lambda r: FaultConfiguration.sample(
                injector.parameter_targets, fault_model, r
            ),
        )
        return sampler.run_chain(10, np.random.default_rng(6))

    def conv_forward():
        with no_grad():
            return conv2d(conv_x, conv_w, stride=1, padding=1)

    return {
        "mask_sampling_small_p": CaseSpec(mask_sampling, repeats=light_repeats),
        "mask_application": CaseSpec(
            lambda: apply_bit_mask(values, mask), repeats=light_repeats
        ),
        "faulted_forward_mlp": CaseSpec(
            lambda: statistic(configuration), repeats=light_repeats
        ),
        "mcmc_10_steps": CaseSpec(mcmc_stretch, repeats=repeats),
        "conv2d_forward": CaseSpec(conv_forward, repeats=repeats),
    }


def _parallel_sweep_suite(quick: bool, seed: int, cache_dir: str | None) -> dict[str, CaseSpec]:
    from repro.core import BayesianFaultInjector, ProbabilitySweep
    from repro.exec import InjectorRecipe, ParallelCampaignExecutor
    from repro.faults import TargetSpec
    from repro.nn import paper_mlp

    p_values = tuple(np.logspace(-5, -1, 5 if quick else 13))
    samples = 30 if quick else 120
    pool = 2 if quick else 4
    model = workloads.golden_mlp_moons(cache_dir)
    eval_x, eval_y = workloads.moons_eval_batch()
    recipe = InjectorRecipe.from_model(
        model, eval_x, eval_y,
        spec=TargetSpec.weights_and_biases(), seed=seed,
        model_builder=functools.partial(paper_mlp, rng=0),
    )

    def sweep(workers: int):
        injector = BayesianFaultInjector(
            model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=seed
        )
        executor = ParallelCampaignExecutor(recipe, workers=workers)
        return ProbabilitySweep(
            injector, p_values=p_values, samples=samples, chains=2, executor=executor
        ).run()

    repeats = 2 if quick else 3
    return {
        "sweep_sequential": CaseSpec(lambda: sweep(1), warmup=1, repeats=repeats),
        "sweep_parallel": CaseSpec(lambda: sweep(pool), warmup=1, repeats=repeats),
    }


def _fig2_suite(quick: bool, seed: int, cache_dir: str | None) -> dict[str, CaseSpec]:
    from repro.core import BayesianFaultInjector, ProbabilitySweep
    from repro.faults import TargetSpec

    p_values = tuple(np.logspace(-5, -1, 5 if quick else 13))
    samples = 30 if quick else 150
    data = workloads.mlp_image_data(quick)
    model = workloads.golden_mlp_images(quick, cache_dir, data=data)
    eval_x, eval_y = workloads.mlp_image_eval(quick, data=data)
    injector = BayesianFaultInjector(
        model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=seed
    )

    def sweep():
        return ProbabilitySweep(
            injector, p_values=p_values, samples=samples, chains=2
        ).run()

    return {"fig2_sweep": CaseSpec(sweep, warmup=1, repeats=2 if quick else 3)}


def _completeness_suite(quick: bool, seed: int, cache_dir: str | None) -> dict[str, CaseSpec]:
    from repro.core import BayesianFaultInjector
    from repro.faults import TargetSpec
    from repro.mcmc import CompletenessCriterion

    flip_p = 5e-3
    chains = 2 if quick else 4
    steps = 60 if quick else 500
    model = workloads.golden_mlp_moons(cache_dir)
    eval_x, eval_y = workloads.moons_eval_batch()
    injector = BayesianFaultInjector(
        model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=seed
    )
    criterion = CompletenessCriterion(
        stderr_tolerance=0.02 if quick else 0.01, min_ess=50 if quick else 100
    )

    def mcmc_fixed():
        return injector.mcmc_campaign(flip_p, chains=chains, steps=steps)

    def adaptive():
        return injector.run_until_complete(
            flip_p,
            criterion=criterion,
            chains=chains,
            batch_steps=25 if quick else 50,
            max_steps=200 if quick else 1000,
        )

    repeats = 2 if quick else 3
    return {
        "mcmc_fixed_budget": CaseSpec(mcmc_fixed, warmup=0, repeats=repeats),
        "adaptive_stopping": CaseSpec(adaptive, warmup=0, repeats=repeats),
    }


def _fastpath_suite(quick: bool, seed: int, cache_dir: str | None) -> dict[str, CaseSpec]:
    """The faulted-forward fast path against the standard path it replaces.

    The campaign pair is the paper's Fig. 3 regime — a layerwise campaign
    on a deep ResNet-18 layer, where the clean prefix dominates each
    forward — run with ``fast=True`` (prefix caching + batched evaluation)
    and ``fast=False`` (full forward per configuration). Both compute
    bit-identical results; the ratio of their medians is the speedup the
    fast path buys. The apply pair isolates the injection primitive:
    sparse copy-on-write at campaign-realistic flip density versus the
    dense full-array XOR it replaced.
    """
    from repro.bits import apply_bit_mask
    from repro.core import BayesianFaultInjector
    from repro.faults import (
        BernoulliBitFlipModel,
        FaultConfiguration,
        TargetSpec,
        apply_configuration,
    )
    from repro.faults.targets import resolve_parameter_targets

    data = workloads.resnet_image_data(quick)
    model = workloads.golden_resnet_images(quick, cache_dir, data=data)
    eval_x, eval_y = workloads.resnet_image_eval(quick, data=data)
    layer = "stages.3.1.conv2"
    samples = 8 if quick else 32
    flip_p = 1e-4

    fast_injector = BayesianFaultInjector(
        model, eval_x, eval_y, spec=TargetSpec.single_layer(layer), seed=seed, fast=True
    )
    standard_injector = BayesianFaultInjector(
        model, eval_x, eval_y, spec=TargetSpec.single_layer(layer), seed=seed, fast=False
    )

    def campaign(injector):
        return injector.forward_campaign(flip_p, samples=samples, chains=1)

    # The apply pair shares one sampled configuration over the full
    # parameter surface; the dense reference densifies outside the timed
    # region (``sparse()`` keeps the configuration's storage sparse).
    targets = resolve_parameter_targets(model, TargetSpec.weights_and_biases())
    configuration = FaultConfiguration.sample(
        targets, BernoulliBitFlipModel(1e-5), np.random.default_rng(seed)
    )
    dense_masks = {name: configuration.sparse(name).to_dense() for name, _ in targets}

    def apply_sparse():
        with apply_configuration(model, configuration):
            pass

    def apply_dense():
        return [apply_bit_mask(param.data, dense_masks[name]) for name, param in targets]

    repeats = 3 if quick else 5
    return {
        "resnet_layerwise_fast": CaseSpec(
            functools.partial(campaign, fast_injector), repeats=repeats
        ),
        "resnet_layerwise_standard": CaseSpec(
            functools.partial(campaign, standard_injector), repeats=repeats
        ),
        "apply_sparse_cow": CaseSpec(apply_sparse, repeats=15),
        "apply_dense_xor": CaseSpec(apply_dense, repeats=15),
    }


def _mcmc_suite(quick: bool, seed: int, cache_dir: str | None) -> dict[str, CaseSpec]:
    """Delta-forward chain campaigns against the standard per-proposal path.

    Three proposal locality regimes, each as a fast/standard pair whose
    median ratio is the speedup the delta engine buys (results are
    bit-identical, so only wall-clock differs):

    * *same-layer* — MCMC confined to a deep ResNet-18 layer; every
      proposal diff lands at the layer's chain segment, so the delta path
      reuses almost the whole network per round (the headline case);
    * *cross-layer* — targets at two depths; the reusable prefix per
      proposal alternates between the shallow and deep cut;
    * *full-surface* — a tempered campaign over every MLP parameter; the
      delta often spans most of the (short) chain, so the win comes mainly
      from round batching — the fallback regime.
    """
    from repro.core import BayesianFaultInjector
    from repro.faults import TargetSpec

    data = workloads.resnet_image_data(quick)
    resnet = workloads.golden_resnet_images(quick, cache_dir, data=data)
    resnet_x, resnet_y = workloads.resnet_image_eval(quick, data=data)
    mlp = workloads.golden_mlp_moons(cache_dir)
    mlp_x, mlp_y = workloads.moons_eval_batch()

    chains = 2
    steps = 10 if quick else 40
    flip_p = 1e-4

    def pair(model, x, y, spec):
        fast = BayesianFaultInjector(model, x, y, spec=spec, seed=seed, fast=True)
        standard = BayesianFaultInjector(model, x, y, spec=spec, seed=seed, fast=False)
        return fast, standard

    same_fast, same_standard = pair(
        resnet, resnet_x, resnet_y, TargetSpec.single_layer("stages.3.1.conv2")
    )
    cross_fast, cross_standard = pair(
        resnet, resnet_x, resnet_y,
        TargetSpec.weights_and_biases(
            include_layers=("stages.2.0.conv1", "stages.3.1.conv2")
        ),
    )
    full_fast, full_standard = pair(
        mlp, mlp_x, mlp_y, TargetSpec.weights_and_biases()
    )

    def mcmc(injector):
        return injector.mcmc_campaign(flip_p, chains=chains, steps=steps)

    def tempered(injector):
        return injector.tempered_campaign(flip_p, beta=8.0, chains=chains, steps=steps)

    repeats = 3 if quick else 5
    return {
        "resnet_chain_fast": CaseSpec(functools.partial(mcmc, same_fast), repeats=repeats),
        "resnet_chain_standard": CaseSpec(
            functools.partial(mcmc, same_standard), repeats=repeats
        ),
        "resnet_cross_layer_fast": CaseSpec(
            functools.partial(mcmc, cross_fast), repeats=repeats
        ),
        "resnet_cross_layer_standard": CaseSpec(
            functools.partial(mcmc, cross_standard), repeats=repeats
        ),
        "mlp_full_surface_fast": CaseSpec(
            functools.partial(tempered, full_fast), repeats=repeats
        ),
        "mlp_full_surface_standard": CaseSpec(
            functools.partial(tempered, full_standard), repeats=repeats
        ),
    }


def _estimator_suite(quick: bool, seed: int, cache_dir: str | None) -> dict[str, CaseSpec]:
    from repro.obs.estimator import EstimatorTracker, StoppingTarget
    from repro.obs.progress import ProgressEvent

    # synthetic outcome stream: 10k tasks over 20 strata (4 layer labels ×
    # 5 flip probabilities), 40 trials each — the fold must stay O(1) per
    # event for the live tracker to be free on the delivery path
    rng = np.random.default_rng(seed)
    layers = ("all", "fc1", "fc2", "conv1")
    events = []
    for task in range(10_000):
        degraded = np.flatnonzero(rng.random(40) < 0.3)
        events.append(
            ProgressEvent(
                kind="estimate",
                payload={
                    "task": task,
                    "layer": layers[task % len(layers)],
                    "bitfield": "all",
                    "p": 10.0 ** -(task % 5 + 1),
                    "trials": 40,
                    "degraded_trials": [int(i) for i in degraded],
                },
            )
        )

    def fold():
        tracker = EstimatorTracker(target=StoppingTarget(0.05))
        for event in events:
            tracker.emit(event)
        return tracker

    folded = fold()

    repeats = 3 if quick else 7
    return {
        "fold_10k_outcomes": CaseSpec(fold, repeats=repeats),
        "estimates_document": CaseSpec(folded.estimates, repeats=repeats),
        "metric_families": CaseSpec(folded.metric_families, repeats=repeats),
    }


#: group name → suite builder ``(quick, seed, cache_dir) → {name: CaseSpec}``
SUITES: dict[str, Callable[[bool, int, str | None], dict[str, CaseSpec]]] = {
    "bench_micro": _micro_suite,
    "bench_parallel_sweep": _parallel_sweep_suite,
    "bench_fig2_mlp_sweep": _fig2_suite,
    "bench_completeness": _completeness_suite,
    "bench_fastpath": _fastpath_suite,
    "bench_mcmc": _mcmc_suite,
    "bench_estimator": _estimator_suite,
}


def suite_names() -> list[str]:
    return sorted(SUITES)


def build_suite(name: str, *, quick: bool, seed: int = DEFAULT_SEED, cache_dir: str | None = None):
    """Instantiate one suite's cases (trains/loads its workloads)."""
    if name not in SUITES:
        raise ValueError(f"unknown bench suite {name!r}; choose from {suite_names()}")
    return SUITES[name](quick, seed, cache_dir)
