"""Seed-pinned golden networks and eval batches for the bench suites.

Training a golden network is step 1 of the BDLFI procedure and a fixed
cost, so trained weights are cached on disk (default:
``benchmarks/_artifacts`` at the repo root) — the first run trains, later
runs load checkpoints. Delete the cache to retrain. Every workload is
built from fixed seeds, so timing differences between runs come from the
machine, never from the workload.

``benchmarks/conftest.py`` wraps these builders as pytest fixtures; the
``repro bench`` runner calls them directly. The *quick* variants trade
training budget for wall-clock (smaller train sets, fewer epochs, their
own cache keys) so the CI smoke tier finishes in minutes.
"""

from __future__ import annotations

import os

import numpy as np

from repro.data import ArrayDataset, DataLoader, SyntheticImageConfig, make_synthetic_images, two_moons
from repro.nn import MLP, paper_mlp
from repro.nn.models import resnet18_cifar_small
from repro.train import Adam, Trainer, load_checkpoint, save_checkpoint

__all__ = [
    "MLP_IMAGE_CONFIG",
    "RESNET_IMAGE_CONFIG",
    "default_artifacts_dir",
    "train_or_load",
    "golden_mlp_moons",
    "moons_eval_batch",
    "mlp_image_data",
    "golden_mlp_images",
    "mlp_image_eval",
    "resnet_image_data",
    "golden_resnet_images",
    "resnet_image_eval",
]

#: MLP image task — low-dimensional (6×6) so the Fig. 2 MLP is small enough
#: that the flat fault regime is visible inside the swept p range.
MLP_IMAGE_CONFIG = SyntheticImageConfig(image_size=6, noise=1.2, seed=11)
#: ResNet image task — harder distribution so the golden error sits at the
#: elevated baseline of Fig. 4.
RESNET_IMAGE_CONFIG = SyntheticImageConfig(image_size=12, noise=4.5, seed=11)


def default_artifacts_dir() -> str:
    """``benchmarks/_artifacts`` relative to the repository root.

    Falls back to ``./benchmarks/_artifacts`` under the current directory
    when the package is installed outside a checkout — the cache is an
    optimisation, any writable directory works.
    """
    here = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    candidate = os.path.join(repo_root, "benchmarks", "_artifacts")
    if os.path.isdir(os.path.dirname(candidate)):
        return candidate
    return os.path.join(os.getcwd(), "benchmarks", "_artifacts")


def train_or_load(name: str, build, train_fn, cache_dir: str | None = None) -> tuple:
    """Train once and cache under ``cache_dir``; returns (model, metadata)."""
    cache_dir = cache_dir or default_artifacts_dir()
    os.makedirs(cache_dir, exist_ok=True)
    path = os.path.join(cache_dir, f"{name}.npz")
    model = build()
    if os.path.exists(path):
        try:
            metadata = load_checkpoint(model, path)
            return model.eval(), metadata
        except Exception:
            # A truncated or otherwise unreadable checkpoint is a cache
            # miss, not a fatal error — retrain and overwrite it.
            os.remove(path)
    accuracy = train_fn(model)
    save_checkpoint(model, path, accuracy=accuracy)
    return model.eval(), {"accuracy": accuracy}


def golden_mlp_moons(cache_dir: str | None = None):
    """Paper Fig. 1 MLP (32 hidden units) trained on two-moons."""

    def train(model):
        x, y = two_moons(800, noise=0.12, rng=0)
        loader = DataLoader(ArrayDataset(x, y), batch_size=32, shuffle=True, rng=1)
        result = Trainer(model, Adam(model.parameters(), lr=0.01)).fit(loader, epochs=50)
        return result.final_train_accuracy

    model, _ = train_or_load("mlp_moons", lambda: paper_mlp(rng=0), train, cache_dir)
    return model


def moons_eval_batch() -> tuple[np.ndarray, np.ndarray]:
    """Evaluation batch for two-moons campaigns (seed-pinned)."""
    return two_moons(300, noise=0.12, rng=5)


def mlp_image_data(quick: bool = False):
    """(train_set, test_set) for the Fig. 2 image-MLP task."""
    if quick:
        return make_synthetic_images(MLP_IMAGE_CONFIG, 600, 200)
    return make_synthetic_images(MLP_IMAGE_CONFIG, 1500, 400)


def golden_mlp_images(quick: bool = False, cache_dir: str | None = None, data=None):
    """MLP classifier on the synthetic CIFAR-10 stand-in (Fig. 2 subject).

    The quick variant trains on the smaller split for fewer epochs and
    caches under its own key, so quick and full tiers never poison each
    other's checkpoints.
    """
    train_set, test_set = data if data is not None else mlp_image_data(quick)
    dim = int(np.prod(train_set.features.shape[1:]))
    epochs = 6 if quick else 20

    def train(model):
        loader = DataLoader(train_set, batch_size=64, shuffle=True, rng=2)
        val = DataLoader(test_set, batch_size=200)
        trainer = Trainer(model, Adam(model.parameters(), lr=2e-3))
        result = trainer.fit(loader, epochs=epochs, val_loader=val)
        return result.final_val_accuracy

    name = "mlp_images_quick" if quick else "mlp_images"
    model, _ = train_or_load(name, lambda: MLP(dim, (8,), 10, rng=0), train, cache_dir)
    return model


def mlp_image_eval(quick: bool = False, data=None) -> tuple[np.ndarray, np.ndarray]:
    """Evaluation batch for MLP image campaigns."""
    _, test_set = data if data is not None else mlp_image_data(quick)
    size = 100 if quick else 200
    return test_set.features[:size], test_set.labels[:size]


def resnet_image_data(quick: bool = False):
    """(train_set, test_set) for the Figs. 3/4 ResNet image task."""
    if quick:
        return make_synthetic_images(RESNET_IMAGE_CONFIG, 600, 200)
    return make_synthetic_images(RESNET_IMAGE_CONFIG, 2000, 400)


def golden_resnet_images(quick: bool = False, cache_dir: str | None = None, data=None):
    """ResNet-18 (reduced width, identical topology) on the synthetic
    CIFAR-10 stand-in (Figs. 3 and 4 subject).

    The full variant shares its cache key (and training recipe) with the
    ``benchmarks/conftest.py`` fixture, so the pytest harness and the
    ``repro bench`` runner load the same checkpoint. The quick variant
    trains a short schedule under its own key.
    """
    train_set, test_set = data if data is not None else resnet_image_data(quick)
    epochs = 2 if quick else 8

    def train(model):
        loader = DataLoader(train_set, batch_size=64, shuffle=True, rng=3)
        val = DataLoader(test_set, batch_size=200)
        trainer = Trainer(model, Adam(model.parameters(), lr=2e-3))
        result = trainer.fit(loader, epochs=epochs, val_loader=val)
        return result.final_val_accuracy

    name = "resnet_images_quick" if quick else "resnet_images"
    model, _ = train_or_load(name, lambda: resnet18_cifar_small(rng=0), train, cache_dir)
    return model


def resnet_image_eval(quick: bool = False, data=None) -> tuple[np.ndarray, np.ndarray]:
    """Evaluation batch for ResNet campaigns (small: each campaign runs
    hundreds of forward passes)."""
    _, test_set = data if data is not None else resnet_image_data(quick)
    size = 32 if quick else 64
    return test_set.features[:size], test_set.labels[:size]
