"""Reverse-mode autodiff tensor.

The design follows the classic tape-based approach: every operation that
produces a :class:`Tensor` from other tensors records its parents and a
closure that maps the output gradient to parent gradients. ``backward()``
topologically sorts the recorded graph and accumulates gradients.

All numerical work is vectorised numpy; the tape only stores O(#ops) Python
objects per forward pass, which is cheap relative to the ndarray math. The
engine supports full numpy broadcasting — gradients are "unbroadcast"
(summed) back to each parent's shape.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.obs import profile as _profile

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the ``with`` block (inference mode)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An ndarray with an optional autodiff tape.

    Parameters
    ----------
    data:
        Anything convertible to ``np.ndarray``. Floating data defaults to
        float32 (the precision the paper's fault model operates on).
    requires_grad:
        Record operations involving this tensor so ``backward()`` can compute
        ``.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "_op")

    def __init__(
        self,
        data: np.ndarray | float | int | Sequence,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward_fn: Callable[[np.ndarray], None] | None = None,
        _op: str = "",
    ) -> None:
        arr = np.asarray(data)
        if arr.dtype == np.float64 and not isinstance(data, (np.ndarray, np.generic)):
            # Python floats/lists default to float32 (the precision the fault
            # model operates on); numpy inputs keep their dtype, so interior
            # op results and explicit float64 tensors are never downcast.
            arr = arr.astype(np.float32)
        self.data = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward_fn = _backward_fn
        self._op = _op

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype) -> "Tensor":
        out_data = self.data.astype(dtype)
        out = Tensor(out_data, requires_grad=self.requires_grad, _parents=(self,), _op="astype")
        if out.requires_grad:
            src_dtype = self.data.dtype

            def _backward(grad: np.ndarray) -> None:
                self._accumulate(grad.astype(src_dtype))

            out._backward_fn = _backward
        return out

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph machinery
    # ------------------------------------------------------------------ #

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first touch)."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], None],
        op: str,
        flops: float | None = None,
    ) -> "Tensor":
        """Create an interior node, honouring the global grad switch.

        Every tensor op funnels through here, making it the engine's
        profiling chokepoint: with a profiler attached the op's call
        count, FLOP estimate (``flops`` overrides the generic estimator
        for ops like conv2d whose cost the output shape alone cannot
        determine), and allocated bytes are recorded, and the backward
        closure is wrapped so tape replay bills per-layer backward time.
        With no profiler attached this costs one ``is None`` check.
        """
        profiler = _profile.ACTIVE
        if profiler is not None:
            profiler.record_tensor_op(op, data, parents, flops=flops)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            if profiler is not None:
                backward_fn = profiler.wrap_backward(op, backward_fn)
            out._parents = parents
            out._backward_fn = backward_fn
            out._op = op
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (for scalar losses simply ``1.0``).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        # Iterative topological sort (recursion would overflow on deep nets).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(np.asarray(other))

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), _backward, "add")

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), _backward, "sub")

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), _backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data * other.data), other.shape)
            )

        return Tensor._make(out_data, (self, other), _backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __neg__(self) -> "Tensor":
        def _backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), _backward, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        out_data = self.data**exponent

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), _backward, "pow")

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def _backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    g = np.outer(grad, other.data) if grad.ndim == 1 else np.einsum(
                        "...i,j->...ij", grad, other.data
                    )
                    self._accumulate(_unbroadcast(g.reshape(self.shape) if g.shape != self.shape else g, self.shape))
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    g = np.outer(self.data, grad) if grad.ndim == 1 else np.einsum(
                        "i,...j->...ij", self.data, grad
                    )
                    other._accumulate(_unbroadcast(g.reshape(other.shape) if g.shape != other.shape else g, other.shape))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), _backward, "matmul")

    # ------------------------------------------------------------------ #
    # elementwise nonlinearities
    # ------------------------------------------------------------------ #

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), _backward, "exp")

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), _backward, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), _backward, "sqrt")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data * out_data))

        return Tensor._make(out_data, (self,), _backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), _backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, 0.0).astype(self.data.dtype)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), _backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, negative_slope * self.data).astype(self.data.dtype)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.where(mask, 1.0, negative_slope).astype(grad.dtype))

        return Tensor._make(out_data, (self,), _backward, "leaky_relu")

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), _backward, "abs")

    def clip(self, lo: float, hi: float) -> "Tensor":
        out_data = np.clip(self.data, lo, hi)
        mask = (self.data >= lo) & (self.data <= hi)

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), _backward, "clip")

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def _backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                g = np.expand_dims(g, axes)
            self._accumulate(np.broadcast_to(g, self.shape).astype(self.data.dtype))

        return Tensor._make(out_data, (self,), _backward, "sum")

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))

        def _backward(grad: np.ndarray) -> None:
            g = grad / count
            if axis is not None and not keepdims:
                axes_ = (axis,) if isinstance(axis, int) else tuple(axis)
                g = np.expand_dims(g, axes_)
            self._accumulate(np.broadcast_to(g, self.shape).astype(self.data.dtype))

        return Tensor._make(out_data, (self,), _backward, "mean")

    def var(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable via composition."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        sq = centered * centered
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def _backward(grad: np.ndarray) -> None:
            g = grad
            out = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                out = np.expand_dims(out, axis)
            mask = self.data == out
            # Split gradient evenly among ties (matches subgradient convention).
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate((mask * g / counts).astype(self.data.dtype))

        return Tensor._make(out_data, (self,), _backward, "max")

    # ------------------------------------------------------------------ #
    # shape ops
    # ------------------------------------------------------------------ #

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        src_shape = self.shape

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(src_shape))

        return Tensor._make(out_data, (self,), _backward, "reshape")

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        out_data = self.data.transpose(axes)
        if axes is None:
            inverse = None
        else:
            inverse = tuple(np.argsort(axes))

        def _backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), _backward, "transpose")

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]

        def _backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, idx, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), _backward, "getitem")

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = tuple(tensors)
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def _backward(grad: np.ndarray) -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                sl = [slice(None)] * grad.ndim
                sl[axis] = slice(start, stop)
                t._accumulate(grad[tuple(sl)])

        return Tensor._make(out_data, tensors, _backward, "concat")

    # ------------------------------------------------------------------ #
    # comparisons (non-differentiable; return plain ndarrays)
    # ------------------------------------------------------------------ #

    def argmax(self, axis: int | None = None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __eq__(self, other) -> np.ndarray:  # type: ignore[override]
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data == other_data

    def __ne__(self, other) -> np.ndarray:  # type: ignore[override]
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data != other_data

    def __hash__(self) -> int:
        return id(self)
