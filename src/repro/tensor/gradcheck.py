"""Finite-difference gradient verification.

Used by the test suite to validate every op in the autodiff engine. Checks
are run in float64: float32 round-off would swamp the central-difference
error and produce false failures.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["grad_check", "numerical_gradient"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. ``inputs[index]``."""
    target = inputs[index]
    grad = np.zeros_like(target.data, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def grad_check(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    rtol: float = 1e-4,
    atol: float = 1e-6,
    eps: float = 1e-6,
) -> bool:
    """Verify analytic gradients of ``fn`` against central differences.

    ``fn`` must accept the tensors in ``inputs`` and return a single tensor;
    the implicit loss is the sum of that output. Inputs must be float64 with
    ``requires_grad=True``. Raises ``AssertionError`` with a diagnostic on
    mismatch; returns ``True`` otherwise.
    """
    for idx, t in enumerate(inputs):
        if t.data.dtype != np.float64:
            raise ValueError(f"grad_check requires float64 inputs; input {idx} is {t.data.dtype}")
        if not t.requires_grad:
            raise ValueError(f"input {idx} must have requires_grad=True")
        t.zero_grad()

    out = fn(*inputs)
    out.backward(np.ones_like(out.data))

    for idx, t in enumerate(inputs):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, idx, eps=eps)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {idx}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
