"""A small reverse-mode automatic-differentiation engine over numpy.

This is the substrate the paper's deep-learning stack runs on (the paper used
PyTorch; nothing in BDLFI depends on framework internals beyond a
differentiable forward pass, which this package provides).

Public surface:

* :class:`~repro.tensor.tensor.Tensor` — an ndarray wrapper that records the
  computation graph and supports ``backward()``.
* :mod:`~repro.tensor.functional` — convolution, pooling, padding, and the
  fused softmax/cross-entropy primitives used by :mod:`repro.nn`.
* :func:`~repro.tensor.gradcheck.grad_check` — finite-difference gradient
  verification used heavily by the test suite.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor.functional import (
    conv2d,
    max_pool2d,
    avg_pool2d,
    global_avg_pool2d,
    pad2d,
    log_softmax,
    softmax,
)
from repro.tensor.gradcheck import grad_check

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "pad2d",
    "log_softmax",
    "softmax",
    "grad_check",
]
