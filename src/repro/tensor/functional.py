"""Convolution, pooling, padding, and softmax primitives.

Convolution is implemented with the im2col transformation: each receptive
field is flattened into a row, so the convolution becomes one large matrix
multiply. That keeps both the forward pass and the gradient fully
vectorised, which matters because BDLFI campaigns run thousands of forward
passes per probability point.

Layout convention: images are NCHW (batch, channels, height, width) —
the layout the paper's ResNet-18 uses.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = [
    "pad2d",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "softmax",
    "log_softmax",
    "im2col_indices",
]


#: gather-index cache — the indices depend only on the geometry below, not
#: on the batch size or data, so every forward pass of a fixed architecture
#: hits after the first. Bounded FIFO; entries are marked read-only since
#: they are shared across callers.
_IM2COL_CACHE: dict[tuple[int, int, int, int, int, int, int], tuple] = {}
_IM2COL_CACHE_LIMIT = 128


def im2col_indices(
    x_shape: tuple[int, int, int, int], kh: int, kw: int, stride: int, padding: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Compute the gather indices that turn an NCHW image into patch rows.

    Returns ``(k, i, j, out_h, out_w)`` where ``k, i, j`` index channel, row
    and column respectively, each of shape ``(C*kh*kw, out_h*out_w)``.
    Results are cached on the geometry (batch size is irrelevant), so the
    returned index arrays are shared and read-only.
    """
    _, channels, height, width = x_shape
    out_h = (height + 2 * padding - kh) // stride + 1
    out_w = (width + 2 * padding - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel ({kh}x{kw}, stride={stride}, padding={padding}) larger than "
            f"padded input ({height}x{width})"
        )
    key = (channels, height, width, kh, kw, stride, padding)
    cached = _IM2COL_CACHE.get(key)
    if cached is not None:
        return cached

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kh * kw).reshape(-1, 1)
    for index in (k, i, j):
        index.flags.writeable = False
    if len(_IM2COL_CACHE) >= _IM2COL_CACHE_LIMIT:
        _IM2COL_CACHE.pop(next(iter(_IM2COL_CACHE)))
    _IM2COL_CACHE[key] = (k, i, j, out_h, out_w)
    return k, i, j, out_h, out_w


def pad2d(x: Tensor, padding: int) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    if padding == 0:
        return x
    pad_width = ((0, 0), (0, 0), (padding, padding), (padding, padding))
    out_data = np.pad(x.data, pad_width)

    def _backward(grad: np.ndarray) -> None:
        x._accumulate(grad[:, :, padding:-padding, padding:-padding])

    return Tensor._make(out_data, (x,), _backward, "pad2d")


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None, stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution (cross-correlation) over an NCHW input.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)`` and ``bias``
    (optional) shape ``(out_channels,)``.
    """
    batch, in_c, _, _ = x.shape
    out_c, w_in_c, kh, kw = weight.shape
    if in_c != w_in_c:
        raise ValueError(f"input has {in_c} channels but weight expects {w_in_c}")

    x_padded = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))) if padding else x.data
    k, i, j, out_h, out_w = im2col_indices(x.shape, kh, kw, stride, padding)

    # cols: (batch, C*kh*kw, out_h*out_w)
    cols = x_padded[:, k, i, j]
    w_mat = weight.data.reshape(out_c, -1)  # (out_c, C*kh*kw)
    out = np.einsum("of,bfp->bop", w_mat, cols, optimize=True)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1)
    out_data = out.reshape(batch, out_c, out_h, out_w)

    padded_shape = x_padded.shape
    parents = (x, weight) if bias is None else (x, weight, bias)

    def _backward(grad: np.ndarray) -> None:
        grad_mat = grad.reshape(batch, out_c, -1)  # (batch, out_c, P)
        if weight.requires_grad:
            gw = np.einsum("bop,bfp->of", grad_mat, cols, optimize=True)
            weight._accumulate(gw.reshape(weight.shape).astype(weight.dtype))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=(0, 2)).astype(bias.dtype))
        if x.requires_grad:
            gcols = np.einsum("of,bop->bfp", w_mat, grad_mat, optimize=True)
            gx_padded = np.zeros(padded_shape, dtype=x.dtype)
            # Scatter-add patch gradients back into the padded image.
            np.add.at(gx_padded, (slice(None), k, i, j), gcols)
            if padding:
                gx = gx_padded[:, :, padding:-padding, padding:-padding]
            else:
                gx = gx_padded
            x._accumulate(gx)

    # Exact multiply-add cost for the profiler: the output shape alone
    # cannot recover the receptive-field size, so pass it explicitly.
    conv_flops = 2.0 * out_data.size * (w_in_c * kh * kw)
    return Tensor._make(out_data, parents, _backward, "conv2d", flops=conv_flops)


def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows of an NCHW tensor."""
    stride = stride or kernel_size
    batch, channels, height, width = x.shape
    k, i, j, out_h, out_w = im2col_indices((batch, 1, height, width), kernel_size, kernel_size, stride, 0)

    # View each channel independently: (batch*channels, 1, H, W)
    flat = x.data.reshape(batch * channels, 1, height, width)
    cols = flat[:, k, i, j]  # (B*C, k*k, P)
    arg = cols.argmax(axis=1)  # (B*C, P)
    out = np.take_along_axis(cols, arg[:, None, :], axis=1)[:, 0, :]
    out_data = out.reshape(batch, channels, out_h, out_w)

    def _backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(batch * channels, -1)  # (B*C, P)
        gcols = np.zeros_like(cols)
        np.put_along_axis(gcols, arg[:, None, :], grad_flat[:, None, :], axis=1)
        gx = np.zeros((batch * channels, 1, height, width), dtype=x.dtype)
        np.add.at(gx, (slice(None), k, i, j), gcols)
        x._accumulate(gx.reshape(x.shape))

    return Tensor._make(
        out_data, (x,), _backward, "max_pool2d", flops=float(out_data.size) * kernel_size * kernel_size
    )


def avg_pool2d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Average pooling over windows of an NCHW tensor."""
    stride = stride or kernel_size
    batch, channels, height, width = x.shape
    k, i, j, out_h, out_w = im2col_indices((batch, 1, height, width), kernel_size, kernel_size, stride, 0)

    flat = x.data.reshape(batch * channels, 1, height, width)
    cols = flat[:, k, i, j]
    out = cols.mean(axis=1)
    out_data = out.reshape(batch, channels, out_h, out_w)
    window = kernel_size * kernel_size

    def _backward(grad: np.ndarray) -> None:
        grad_flat = grad.reshape(batch * channels, 1, -1) / window
        gcols = np.broadcast_to(grad_flat, cols.shape)
        gx = np.zeros((batch * channels, 1, height, width), dtype=x.dtype)
        np.add.at(gx, (slice(None), k, i, j), gcols)
        x._accumulate(gx.reshape(x.shape))

    return Tensor._make(
        out_data, (x,), _backward, "avg_pool2d", flops=float(out_data.size) * kernel_size * kernel_size
    )


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions: NCHW → NC.

    The input is made C-contiguous before reducing: numpy's pairwise
    summation visits elements in memory order, so the mean's low-order bits
    would otherwise depend on the (implementation-defined) stride layout
    the upstream einsum happened to produce — and the batched fast path
    must reproduce the standard path bit-for-bit.
    """
    if not x.data.flags["C_CONTIGUOUS"]:
        x = _as_contiguous(x)
    return x.mean(axis=(2, 3))


def _as_contiguous(x: Tensor) -> Tensor:
    """C-ordered copy of ``x`` as a tape-preserving identity op."""
    out_data = np.ascontiguousarray(x.data)

    def _backward(grad: np.ndarray) -> None:
        x._accumulate(grad)

    return Tensor._make(out_data, (x,), _backward, "contiguous")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def _backward(grad: np.ndarray) -> None:
        # dL/dx = s * (g - sum(g * s))
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate((out_data * (grad - dot)).astype(x.dtype))

    return Tensor._make(out_data, (x,), _backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def _backward(grad: np.ndarray) -> None:
        x._accumulate((grad - soft * grad.sum(axis=axis, keepdims=True)).astype(x.dtype))

    return Tensor._make(out_data, (x,), _backward, "log_softmax")
