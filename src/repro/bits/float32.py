"""float32 ↔ bit-pattern conversion and Bernoulli mask sampling.

Sampling note
-------------
The paper's model draws each of the 32 bits of every float i.i.d. from
Bernoulli(p). For an array of ``n`` floats there are ``N = 32 n`` bits; a
draw is therefore equivalent to

1. drawing the flip count ``K ~ Binomial(N, p)``, then
2. choosing ``K`` distinct bit positions uniformly at random.

:func:`sample_bernoulli_mask` uses this sparse construction, which is exact
(not an approximation) and turns an O(N) dense Bernoulli draw into an O(K)
draw — the difference between milliseconds and seconds per MCMC step at the
small p values (1e-5) the paper sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = [
    "BITS_PER_FLOAT",
    "float_to_bits",
    "bits_to_float",
    "apply_bit_mask",
    "flip_bit",
    "sample_flip_positions",
    "positions_to_mask",
    "mask_to_positions",
    "mask_to_sparse",
    "sparse_to_mask",
    "positions_to_sparse",
    "sample_bernoulli_mask",
    "count_set_bits",
]

BITS_PER_FLOAT = 32


def float_to_bits(values: np.ndarray) -> np.ndarray:
    """Reinterpret a float32 array as its uint32 bit patterns (no copy)."""
    values = np.asarray(values)
    if values.dtype != np.float32:
        raise TypeError(f"expected float32, got {values.dtype}")
    return values.view(np.uint32)


def bits_to_float(bits: np.ndarray) -> np.ndarray:
    """Reinterpret a uint32 array as float32 values (no copy)."""
    bits = np.asarray(bits)
    if bits.dtype != np.uint32:
        raise TypeError(f"expected uint32, got {bits.dtype}")
    return bits.view(np.float32)


def apply_bit_mask(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Return ``values`` with ``mask`` XOR-ed into their bit patterns.

    This is the paper's fault transform ``W' = e ⊕ W``. The input is not
    modified; a new float32 array is returned.
    """
    values = np.asarray(values, dtype=np.float32)
    mask = np.asarray(mask, dtype=np.uint32)
    if mask.shape != values.shape:
        raise ValueError(f"mask shape {mask.shape} does not match values shape {values.shape}")
    return bits_to_float(float_to_bits(values) ^ mask)


def flip_bit(value: float, bit: int) -> float:
    """Flip one bit (0 = LSB of mantissa, 31 = sign) of a scalar float32."""
    if not 0 <= bit < BITS_PER_FLOAT:
        raise ValueError(f"bit must be in [0, 32), got {bit}")
    arr = np.asarray([value], dtype=np.float32)
    flipped = apply_bit_mask(arr, np.asarray([np.uint32(1) << np.uint32(bit)], dtype=np.uint32))
    return float(flipped[0])


def sample_flip_positions(
    n_elements: int,
    p: float,
    rng: int | np.random.Generator | None,
    bits: np.ndarray | None = None,
) -> np.ndarray:
    """Sample the global bit positions flipped by one Bernoulli(p) draw.

    Positions index the flattened bit space: position ``q`` refers to bit
    ``q % 32`` of element ``q // 32``. ``bits`` optionally restricts which
    of the 32 bit lanes are vulnerable (used by the bit-position ablation);
    lanes outside it have flip probability 0.
    """
    if n_elements < 0:
        raise ValueError(f"n_elements must be non-negative, got {n_elements}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"flip probability must be in [0, 1], got {p}")
    gen = as_generator(rng)
    if bits is None:
        total_bits = n_elements * BITS_PER_FLOAT
        count = gen.binomial(total_bits, p) if total_bits else 0
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return gen.choice(total_bits, size=count, replace=False).astype(np.int64)
    lanes = np.asarray(bits, dtype=np.int64)
    if lanes.size == 0:
        return np.empty(0, dtype=np.int64)
    if lanes.min() < 0 or lanes.max() >= BITS_PER_FLOAT:
        raise ValueError("bit lanes must be in [0, 32)")
    total = n_elements * lanes.size
    count = gen.binomial(total, p) if total else 0
    if count == 0:
        return np.empty(0, dtype=np.int64)
    picks = gen.choice(total, size=count, replace=False)
    elements = picks // lanes.size
    lane_idx = picks % lanes.size
    return elements * BITS_PER_FLOAT + lanes[lane_idx]


def positions_to_mask(positions: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Build a uint32 XOR mask of ``shape`` from flattened bit positions."""
    n = int(np.prod(shape)) if shape else 1
    positions = np.asarray(positions, dtype=np.int64)
    if positions.size and (positions.min() < 0 or positions.max() >= n * BITS_PER_FLOAT):
        raise ValueError("bit position out of range for shape")
    mask = np.zeros(n, dtype=np.uint32)
    if positions.size:
        elements = positions // BITS_PER_FLOAT
        bit_lane = (positions % BITS_PER_FLOAT).astype(np.uint32)
        np.bitwise_or.at(mask, elements, np.uint32(1) << bit_lane)
    return mask.reshape(shape)


def mask_to_positions(mask: np.ndarray) -> np.ndarray:
    """Inverse of :func:`positions_to_mask`: sorted flat bit positions set in ``mask``."""
    elements, lane_masks = mask_to_sparse(mask)
    if elements.size == 0:
        return np.empty(0, dtype=np.int64)
    # Expand each touched element's lane mask into its set lanes, vectorised:
    # the (n_touched, 32) bit table costs O(32 K), not O(32 N).
    lanes = np.arange(BITS_PER_FLOAT, dtype=np.uint32)
    set_bits = (lane_masks[:, None] >> lanes[None, :]) & np.uint32(1)
    element_idx, lane_idx = np.nonzero(set_bits)  # row-major → sorted positions
    return elements[element_idx] * BITS_PER_FLOAT + lane_idx.astype(np.int64)


def mask_to_sparse(mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sparse form of a uint32 mask: (flat element indices, their lane masks).

    The inverse of :func:`sparse_to_mask`. Only elements with at least one
    set bit appear; indices are sorted ascending.
    """
    flat = np.asarray(mask, dtype=np.uint32).reshape(-1)
    elements = np.flatnonzero(flat).astype(np.int64)
    return elements, flat[elements]


def sparse_to_mask(
    elements: np.ndarray, lane_masks: np.ndarray, shape: tuple[int, ...]
) -> np.ndarray:
    """Densify a sparse (elements, lane masks) pair into a mask of ``shape``."""
    n = int(np.prod(shape)) if shape else 1
    elements = np.asarray(elements, dtype=np.int64)
    lane_masks = np.asarray(lane_masks, dtype=np.uint32)
    if elements.shape != lane_masks.shape:
        raise ValueError("elements and lane_masks must align")
    if elements.size and (elements.min() < 0 or elements.max() >= n):
        raise ValueError("element index out of range for shape")
    mask = np.zeros(n, dtype=np.uint32)
    if elements.size:
        np.bitwise_or.at(mask, elements, lane_masks)
    return mask.reshape(shape)


def positions_to_sparse(positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Fold flat bit positions into sparse (elements, lane masks) form.

    O(K log K) in the number of flipped bits — never touches the dense
    element space, which is what makes small-p sampling cheap end to end.
    """
    positions = np.asarray(positions, dtype=np.int64)
    if positions.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint32)
    element_of = positions // BITS_PER_FLOAT
    lane_bit = np.uint32(1) << (positions % BITS_PER_FLOAT).astype(np.uint32)
    elements, inverse = np.unique(element_of, return_inverse=True)
    lane_masks = np.zeros(elements.size, dtype=np.uint32)
    np.bitwise_or.at(lane_masks, inverse, lane_bit)
    return elements, lane_masks


def sample_bernoulli_mask(
    shape: tuple[int, ...],
    p: float,
    rng: int | np.random.Generator | None,
    bits: np.ndarray | None = None,
) -> np.ndarray:
    """Draw a uint32 flip mask with every bit i.i.d. Bernoulli(p).

    Exact sparse construction; see module docstring. ``bits`` restricts the
    vulnerable bit lanes (default: all 32).
    """
    n = int(np.prod(shape)) if shape else 1
    positions = sample_flip_positions(n, p, rng, bits=bits)
    return positions_to_mask(positions, shape)


def count_set_bits(mask: np.ndarray) -> int:
    """Total number of set bits (Hamming weight) across a uint32 mask array."""
    flat = np.asarray(mask, dtype=np.uint32).reshape(-1)
    # Classic SWAR popcount, vectorised. The first subtraction already
    # allocates a fresh array, so the input is never modified in place.
    v = flat - ((flat >> np.uint32(1)) & np.uint32(0x55555555))
    v = (v & np.uint32(0x33333333)) + ((v >> np.uint32(2)) & np.uint32(0x33333333))
    v = (v + (v >> np.uint32(4))) & np.uint32(0x0F0F0F0F)
    return int((v * np.uint32(0x01010101) >> np.uint32(24)).sum())
