"""IEEE-754 float32 bit manipulation.

The paper's fault model operates on the 32-bit floating-point encodings of
network parameters, inputs, and activations: "each bit error is treated as a
Bernoulli random variable with probability p" and corrupted values are
produced "by performing bitwise-XOR operations with flipped bits". This
package provides the exact, vectorised machinery for that:

* reinterpretation between float32 arrays and uint32 bit patterns,
* XOR application of flip masks,
* efficient sampling of i.i.d. Bernoulli bit masks (sparse at small p), and
* IEEE-754 field decomposition (sign / exponent / mantissa) for the
  bit-position sensitivity ablation.
"""

from repro.bits.float32 import (
    BITS_PER_FLOAT,
    float_to_bits,
    bits_to_float,
    apply_bit_mask,
    flip_bit,
    sample_bernoulli_mask,
    sample_flip_positions,
    positions_to_mask,
    mask_to_positions,
    count_set_bits,
)
from repro.bits.fields import (
    SIGN_BIT,
    EXPONENT_BITS,
    MANTISSA_BITS,
    bit_field,
    field_mask,
    describe_flip,
)

__all__ = [
    "BITS_PER_FLOAT",
    "float_to_bits",
    "bits_to_float",
    "apply_bit_mask",
    "flip_bit",
    "sample_bernoulli_mask",
    "sample_flip_positions",
    "positions_to_mask",
    "mask_to_positions",
    "count_set_bits",
    "SIGN_BIT",
    "EXPONENT_BITS",
    "MANTISSA_BITS",
    "bit_field",
    "field_mask",
    "describe_flip",
]
