"""IEEE-754 single-precision field semantics.

Bit layout (bit 0 = least significant):

====  =========  ==========================================
bits  field      effect of a flip
====  =========  ==========================================
0–22  mantissa   relative error up to ~12 % (bit 22) down to 2⁻²³
23–30 exponent   multiplies magnitude by 2^(±2^k); bit 30 is catastrophic
31    sign       negates the value
====  =========  ==========================================

The bit-position ablation (experiment A1) uses these helpers to explain
*why* most Bernoulli flips are benign: 23 of 32 lanes are mantissa bits
whose effect on a trained weight is numerically tiny.
"""

from __future__ import annotations

import numpy as np

from repro.bits.float32 import flip_bit

__all__ = ["SIGN_BIT", "EXPONENT_BITS", "MANTISSA_BITS", "bit_field", "field_mask", "describe_flip"]

SIGN_BIT = 31
EXPONENT_BITS = tuple(range(23, 31))
MANTISSA_BITS = tuple(range(0, 23))


def bit_field(bit: int) -> str:
    """Classify a bit index as ``"sign"``, ``"exponent"``, or ``"mantissa"``."""
    if not 0 <= bit < 32:
        raise ValueError(f"bit must be in [0, 32), got {bit}")
    if bit == SIGN_BIT:
        return "sign"
    if bit >= 23:
        return "exponent"
    return "mantissa"


def field_mask(field: str) -> np.uint32:
    """uint32 mask with all bits of the named field set."""
    if field == "sign":
        return np.uint32(1 << SIGN_BIT)
    if field == "exponent":
        return np.uint32(sum(1 << b for b in EXPONENT_BITS))
    if field == "mantissa":
        return np.uint32(sum(1 << b for b in MANTISSA_BITS))
    raise ValueError(f"unknown field {field!r}; expected sign/exponent/mantissa")


def describe_flip(value: float, bit: int) -> dict[str, object]:
    """Report the numerical consequence of flipping ``bit`` in ``value``.

    Returns a dict with the flipped value, the field name, absolute and
    relative magnitude change, and whether the result is non-finite —
    the raw material for the A1 ablation tables.
    """
    flipped = flip_bit(value, bit)
    abs_change = abs(flipped - value)
    denom = abs(value) if value != 0.0 else 1.0
    return {
        "original": float(np.float32(value)),
        "flipped": flipped,
        "bit": bit,
        "field": bit_field(bit),
        "abs_change": abs_change,
        "rel_change": abs_change / denom,
        "non_finite": bool(not np.isfinite(flipped)),
    }
