"""Command-line interface: golden-run training and injection campaigns.

Usage (after ``pip install -e .``):

.. code-block:: console

   python -m repro train mlp-moons --out golden.npz
   python -m repro campaign golden.npz --workbench mlp-moons --p 1e-3
   python -m repro sweep golden.npz --workbench mlp-moons --workers 4
   python -m repro layerwise golden.npz --workbench mlp-moons --p 5e-3 --workers 4
   python -m repro boundary golden.npz --workbench mlp-moons

``--workers N`` (campaign/sweep/layerwise) fans the independent campaigns
out over N worker processes; results are bit-identical to ``--workers 1``
because every campaign draws only named, seed-derived RNG streams.

``--journal PATH`` (campaign/sweep/layerwise) records every completed
campaign to a crash-safe, fsync'd journal; after a crash, re-running the
same command with ``--resume`` skips completed campaigns and produces
results bit-identical to an uninterrupted run.

``--chaos site=rate[:count],...`` (campaign/sweep/layerwise) injects
deterministic, seeded infrastructure faults (worker SIGKILL, torn journal
tails, failing fsyncs — see :mod:`repro.exec.chaos`) to rehearse the
recovery paths; a chaos run that completes is bit-identical to a clean
one. ``--on-failure degrade`` quarantines poison tasks instead of
aborting, reporting explicit completed/failed accounting;
``--max-attempts`` and ``--backoff`` tune the retry policy.

``--trace PATH`` / ``--metrics PATH`` / ``--progress [PATH]``
(campaign/sweep/layerwise/assess) turn on the :mod:`repro.obs`
instrumentation: a Chrome-trace JSON timeline (open in Perfetto), the
reduced campaign metrics digest, and a live progress stream (MCMC mixing
diagnostics, sweep points, worker heartbeats) to stderr or a JSONL file.
Instrumented runs are bit-identical to bare ones.

``--serve [HOST:]PORT`` adds a live HTTP telemetry surface while the run
executes — ``/status`` (JSON progress + ETA), ``/metrics`` (OpenMetrics
for Prometheus), ``/events`` (SSE event stream), ``/healthz`` — and
``repro top <url|progress.jsonl>`` renders it as a terminal dashboard.
``--flight-recorder [DIR]`` keeps a bounded in-memory ring of recent
events and dumps a postmortem bundle on campaign abort/degrade or
SIGUSR1 (see :mod:`repro.obs.flight`).

A *workbench* bundles a model architecture with its matched dataset, both
reproducible from seeds, so a checkpoint plus a workbench name fully
determines an experiment. Available workbenches: ``mlp-moons`` (the paper's
Fig. 1 MLP on two-moons), ``mlp-images`` (small image MLP, Fig. 2 setup),
``resnet-images`` (reduced-width ResNet-18, Figs. 3/4 setup), and
``lenet-images``.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
from dataclasses import dataclass
from typing import Callable

import numpy as np

import repro.obs as obs
from repro.analysis import format_table, heatmap, line_plot
from repro.core import BayesianFaultInjector, DecisionBoundaryAnalysis, LayerwiseCampaign, ProbabilitySweep
from repro.data import ArrayDataset, DataLoader, SyntheticImageConfig, make_synthetic_images, two_moons
from repro.exec import (
    AdaptiveSpec,
    CampaignJournal,
    ChaosError,
    ChaosPlan,
    ForwardSpec,
    InjectorRecipe,
    JournalError,
    McmcSpec,
    ParallelCampaignExecutor,
    TemperedSpec,
    TemperingSpec,
    campaign_fingerprint,
)
from repro.faults import BernoulliBitFlipModel, TargetSpec
from repro.nn import LeNet, MLP, paper_mlp
from repro.nn.models import resnet18_cifar_small
from repro.nn.module import Module
from repro.obs import estimator as estimator_mod
from repro.obs import flight as flight_mod
from repro.train import Adam, Trainer, load_checkpoint, save_checkpoint
from repro.utils.logging import set_verbosity
from repro.utils.persist import atomic_write_json

__all__ = ["main", "build_parser", "WORKBENCHES", "Workbench", "build_workbench_model"]


@dataclass(frozen=True)
class Workbench:
    """A named, reproducible (model, dataset) experiment setup."""

    name: str
    build_model: Callable[[], Module]
    build_data: Callable[[int, int], tuple]  # (train_size, eval_size) → datasets
    default_epochs: int
    lr: float
    #: 2-D input window for the boundary command, or None if unsupported
    boundary_window: tuple[float, float, float, float] | None = None


def _moons_data(train_size: int, eval_size: int):
    train = ArrayDataset(*two_moons(train_size, noise=0.12, rng=0))
    evaluation = ArrayDataset(*two_moons(eval_size, noise=0.12, rng=5))
    return train, evaluation


def _image_data(config: SyntheticImageConfig):
    def build(train_size: int, eval_size: int):
        return make_synthetic_images(config, train_size, eval_size)

    return build


_MLP_IMAGES = SyntheticImageConfig(image_size=6, noise=1.2, seed=11)
_CNN_IMAGES = SyntheticImageConfig(image_size=12, noise=4.5, seed=11)

WORKBENCHES: dict[str, Workbench] = {
    "mlp-moons": Workbench(
        name="mlp-moons",
        build_model=lambda: paper_mlp(rng=0),
        build_data=_moons_data,
        default_epochs=40,
        lr=0.01,
        boundary_window=(-1.5, 2.5, -1.2, 1.7),
    ),
    "mlp-images": Workbench(
        name="mlp-images",
        build_model=lambda: MLP(3 * 6 * 6, (8,), 10, rng=0),
        build_data=_image_data(_MLP_IMAGES),
        default_epochs=20,
        lr=2e-3,
    ),
    "resnet-images": Workbench(
        name="resnet-images",
        build_model=lambda: resnet18_cifar_small(rng=0),
        build_data=_image_data(_CNN_IMAGES),
        default_epochs=8,
        lr=2e-3,
    ),
    "lenet-images": Workbench(
        name="lenet-images",
        build_model=lambda: LeNet(in_channels=3, num_classes=10, image_size=12, rng=0),
        build_data=_image_data(_CNN_IMAGES),
        default_epochs=10,
        lr=1e-3,
    ),
}


# ---------------------------------------------------------------------- #
# shared plumbing
# ---------------------------------------------------------------------- #


def _load_workbench(name: str) -> Workbench:
    if name not in WORKBENCHES:
        raise SystemExit(f"unknown workbench {name!r}; choose from {sorted(WORKBENCHES)}")
    return WORKBENCHES[name]


def build_workbench_model(name: str) -> Module:
    """Construct a workbench's (untrained) architecture by name.

    Module-level so ``functools.partial(build_workbench_model, name)`` is a
    picklable model builder for shipping campaigns to worker processes.
    """
    return _load_workbench(name).build_model()


def _campaign_setup(args) -> tuple[BayesianFaultInjector, InjectorRecipe]:
    """(injector, worker recipe) for the golden checkpoint named by ``args``."""
    workbench = _load_workbench(args.workbench)
    model = workbench.build_model()
    load_checkpoint(model, args.checkpoint)
    _, evaluation = workbench.build_data(args.train_size, args.eval_size)
    features, labels = evaluation.arrays()
    features, labels = features[: args.eval_size], labels[: args.eval_size]
    spec = TargetSpec.weights_and_biases() if args.include_biases else TargetSpec()
    fast = getattr(args, "fast", None)
    injector = BayesianFaultInjector(model, features, labels, spec=spec, seed=args.seed, fast=fast)
    recipe = InjectorRecipe.from_model(
        model, features, labels, spec=spec, seed=args.seed,
        model_builder=functools.partial(build_workbench_model, args.workbench),
        fast=fast,
    )
    return injector, recipe


def _injector_from_args(args) -> BayesianFaultInjector:
    injector, _ = _campaign_setup(args)
    return injector


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("checkpoint", help="golden-weights .npz written by `repro train`")
    parser.add_argument("--workbench", required=True, choices=sorted(WORKBENCHES))
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--train-size", type=int, default=800, help="dataset regeneration size")
    parser.add_argument("--eval-size", type=int, default=200, help="evaluation batch size")
    parser.add_argument("--include-biases", action="store_true", default=True)


def _add_durability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="record completed campaigns to this crash-safe journal (JSONL)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from an existing --journal, skipping completed campaigns "
             "(bit-identical to an uninterrupted run)",
    )


def _add_resilience(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("resilience")
    group.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="inject deterministic infrastructure faults: comma-separated "
             "site=rate[:count] rules, e.g. 'worker.sigkill=0.2,journal.torn_tail=0.3:1'. "
             "A chaos run that completes is bit-identical to a clean one",
    )
    group.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="seed for the chaos decision hash (default: 0)",
    )
    group.add_argument(
        "--on-failure", choices=("abort", "degrade"), default="abort",
        help="'abort' (default) raises on a task that exhausts its attempts; "
             "'degrade' quarantines it and completes the rest, with explicit "
             "completed/failed accounting in the output",
    )
    group.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="tries per task (first run + retries) before giving up (default: 3)",
    )
    group.add_argument(
        "--backoff", type=float, default=0.0, metavar="SECONDS",
        help="base retry backoff; attempt n waits backoff * 2^(n-1) scaled by "
             "deterministic jitter (default: 0 = retry immediately)",
    )


def _chaos_plan(args) -> ChaosPlan | None:
    """The --chaos plan, parsed and validated (SystemExit on bad syntax)."""
    spec = getattr(args, "chaos", None)
    if not spec:
        return None
    try:
        return ChaosPlan.parse(spec, seed=getattr(args, "chaos_seed", 0))
    except ChaosError as exc:
        raise SystemExit(f"--chaos: {exc}") from exc


def _resilient_executor(recipe, args, journal) -> ParallelCampaignExecutor:
    """Build the campaign executor honouring the resilience flags."""
    if getattr(args, "max_attempts", 3) < 1:
        raise SystemExit(f"--max-attempts must be >= 1, got {args.max_attempts}")
    if getattr(args, "backoff", 0.0) < 0:
        raise SystemExit(f"--backoff must be non-negative, got {args.backoff}")
    return ParallelCampaignExecutor(
        recipe,
        workers=args.workers,
        journal=journal,
        max_attempts=getattr(args, "max_attempts", 3),
        on_failure=getattr(args, "on_failure", "abort"),
        backoff_s=getattr(args, "backoff", 0.0),
        chaos=_chaos_plan(args),
    )


def _needs_executor(args) -> bool:
    """Whether the resilience flags demand the executor path at workers=1."""
    return (
        getattr(args, "chaos", None) is not None
        or getattr(args, "on_failure", "abort") != "abort"
    )


def _add_fast(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fast", action=argparse.BooleanOptionalAction, default=None,
        help="fast faulted-forward path (prefix caching + batched evaluation; "
             "delta-forward lockstep chains for mcmc/tempered/tempering); "
             "bit-identical to the standard path. Default: auto-enable when "
             "supported; --fast requires it (error if unavailable), --no-fast "
             "forces the standard path",
    )


def _validate_workers(args) -> None:
    if getattr(args, "workers", 1) < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")


def _add_observability(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome-trace JSON of the run (open in Perfetto or chrome://tracing)",
    )
    group.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write the campaign metrics digest (counters/gauges/histograms) as JSON",
    )
    group.add_argument(
        "--progress", nargs="?", const="-", default=None, metavar="PATH",
        help="stream live progress events (MCMC mixing, sweep points, worker heartbeats); "
             "to stderr by default, or as JSONL to PATH",
    )
    group.add_argument(
        "--profile", nargs="?", const="-", default=None, metavar="PATH",
        help="profile the run (per-op/per-layer/per-phase); prints the hot-spot table, "
             "and writes a speedscope-loadable collapsed-stack file to PATH if given",
    )
    group.add_argument(
        "--serve", default=None, metavar="[HOST:]PORT",
        help="serve live telemetry over HTTP while the command runs — /status (JSON), "
             "/metrics (OpenMetrics), /events (SSE), /healthz — watchable with "
             "`repro top http://HOST:PORT`. Implies detailed metrics; port 0 picks a "
             "free port. Strictly passive: results stay bit-identical",
    )
    group.add_argument(
        "--flight-recorder", nargs="?", const=".", default=None, metavar="DIR",
        help="keep a bounded ring of recent events in memory and dump a postmortem "
             "bundle into DIR (default: current directory) when the campaign aborts "
             "or degrades, or on SIGUSR1",
    )
    group.add_argument(
        "--target-halfwidth", type=float, default=None, metavar="W",
        help="arm the advisory stopping monitor: track per-stratum posterior credible "
             "intervals and report the first task at which each stratum's CI half-width "
             "dropped to W. Strictly observational — never stops the run, results stay "
             "bit-identical",
    )
    group.add_argument(
        "--target-mass", type=float, default=0.95, metavar="MASS",
        help="credible mass for the stopping monitor's intervals (default 0.95)",
    )
    group.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise library log verbosity (-v INFO, -vv DEBUG); propagated to workers",
    )


def _setup_observability(args) -> None:
    """Install the instruments requested on the command line (process-global)."""
    verbose = getattr(args, "verbose", 0)
    if verbose:
        set_verbosity("DEBUG" if verbose > 1 else "INFO")
    if getattr(args, "trace", None):
        obs.configure(tracer=True)
    if getattr(args, "metrics", None) or getattr(args, "serve", None):
        # a served /metrics endpoint needs the registry attached
        obs.configure(metrics=True)
    sinks = []
    progress = getattr(args, "progress", None)
    if progress is not None:
        sinks.append(obs.StderrSink() if progress == "-" else obs.JsonlSink(progress))
    target = None
    halfwidth = getattr(args, "target_halfwidth", None)
    if halfwidth is not None:
        try:
            target = estimator_mod.StoppingTarget(
                halfwidth, getattr(args, "target_mass", estimator_mod.DEFAULT_MASS)
            )
        except ValueError as exc:
            raise SystemExit(f"--target-halfwidth: {exc}") from exc
    serve = getattr(args, "serve", None)
    estimator = None
    if serve is not None or target is not None:
        # live posterior telemetry: always on with a server (it backs
        # /estimates), and with a stopping target even headless
        estimator = estimator_mod.install(estimator_mod.EstimatorTracker(target=target))
        sinks.append(estimator)
        args._estimator = estimator
    if serve is not None:
        from repro.obs.server import SseSink, StatusServer, StatusTracker, parse_endpoint

        try:
            host, port = parse_endpoint(serve)
        except ValueError as exc:
            raise SystemExit(f"--serve: {exc}") from exc
        tracker, sse = StatusTracker(), SseSink()
        sinks.extend((tracker, sse))
        try:
            server = StatusServer(
                host, port, tracker=tracker, sse=sse, estimator=estimator,
                labels={"pid": str(os.getpid())},
            ).start()
        except OSError as exc:
            raise SystemExit(f"--serve: cannot bind {serve!r}: {exc}") from exc
        args._status_server = server
        print(f"status server: {server.url} "
              "(endpoints: /status /metrics /estimates /events /healthz)", file=sys.stderr)
    if sinks:
        obs.configure(progress=sinks[0] if len(sinks) == 1 else obs.TeeSink(*sinks))
    if getattr(args, "profile", None) is not None:
        obs.configure(profiler=True)
    flight_dir = getattr(args, "flight_recorder", None)
    if flight_dir is not None:
        recorder = flight_mod.install(flight_mod.FlightRecorder(autodump_dir=flight_dir))
        flight_mod.enable_signal_dump(recorder)


def _finalize_observability(args) -> None:
    """Flush requested artifacts; runs even when the command fails (partial data helps).

    Artifact writes are best-effort: a full disk at shutdown must not mask
    the command's own exit status, so each failure is reported and skipped.
    """
    def _write(label: str, path: str, write: Callable[[], None], hint: str = "") -> None:
        try:
            write()
        except OSError as exc:
            print(f"warning: could not write {label} to {path}: {exc}", file=sys.stderr)
        else:
            print(f"{label} written to {path}{hint}", file=sys.stderr)

    trace_path = getattr(args, "trace", None)
    if trace_path and obs.tracer().enabled:
        _write("trace", trace_path, lambda: obs.tracer().save(trace_path),
               hint=" (open in Perfetto)")
    profile_arg = getattr(args, "profile", None)
    profiler = obs.profiler()
    registry = obs.metrics()
    if profile_arg is not None and profiler is not None:
        if registry is not None:
            # project profile totals so --metrics and --profile compose
            profiler.publish_to(registry)
        print(profiler.hotspot_table(), file=sys.stderr)
        if profile_arg != "-":
            _write("collapsed stacks", profile_arg,
                   lambda: profiler.save_collapsed(profile_arg),
                   hint=" (open in speedscope)")
    metrics_path = getattr(args, "metrics", None)
    if metrics_path and registry is not None:
        _write("metrics", metrics_path,
               lambda: atomic_write_json(
                   metrics_path, {**obs.artifact_stamp(), **registry.snapshot()}
               ))
    server = getattr(args, "_status_server", None)
    if server is not None:
        server.stop()
    estimator = getattr(args, "_estimator", None)
    if estimator is not None:
        if estimator.target is not None and estimator.contributions:
            for line in estimator_mod.StoppingMonitor(estimator).report_lines():
                print(line, file=sys.stderr)
        estimator_mod.uninstall()
    recorder = flight_mod.active()
    if recorder is not None:
        for path in recorder.dumps:
            print(f"postmortem bundle written to {path}", file=sys.stderr)
        flight_mod.uninstall()


def _print_executor_summary(executor) -> None:
    if executor is not None:
        print(f"executor: {executor.stats.summary()}")


def _validate_journal_path(path: str) -> None:
    """Fail fast on an unusable --journal path, before any campaign work.

    A journal that cannot be created or appended to would otherwise
    surface as a raw ``OSError`` mid-campaign — after minutes of work.
    """
    parent = os.path.dirname(os.path.abspath(path)) or "."
    if not os.path.isdir(parent):
        raise SystemExit(
            f"--journal: parent directory {parent!r} does not exist; "
            "create it first (the journal file itself is created for you)"
        )
    if not os.access(parent, os.W_OK):
        raise SystemExit(f"--journal: directory {parent!r} is not writable")
    if os.path.exists(path):
        if os.path.isdir(path):
            raise SystemExit(f"--journal: {path!r} is a directory, not a file")
        if not os.access(path, os.W_OK):
            raise SystemExit(
                f"--journal: {path!r} is read-only; journals must be appendable to record progress"
            )


def _open_journal(args, specs) -> CampaignJournal | None:
    """Open/create the campaign journal requested on the command line.

    Validates the ``--journal`` / ``--resume`` combinations: resuming
    requires both the flag and an existing journal file, while starting a
    fresh run refuses to silently append to a journal that already exists.
    """
    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal PATH (nothing to resume from)")
    if not args.journal:
        return None
    _validate_journal_path(args.journal)
    fingerprint = campaign_fingerprint(specs, args.seed)
    try:
        if args.resume:
            if not os.path.exists(args.journal):
                raise SystemExit(
                    f"--resume: no journal at {args.journal!r}; "
                    "run once without --resume to create it"
                )
            return CampaignJournal.resume(args.journal, fingerprint=fingerprint)
        if os.path.exists(args.journal):
            raise SystemExit(
                f"journal {args.journal!r} already exists; "
                "pass --resume to continue it or pick a fresh path"
            )
        return CampaignJournal(args.journal, fingerprint=fingerprint)
    except JournalError as exc:
        raise SystemExit(str(exc)) from exc


def _print_journal_status(journal, executor=None) -> None:
    if journal is None:
        return
    if journal.hits:
        print(f"journal: {journal.hits} campaign(s) restored, "
              f"{len(journal)} recorded at {journal.path}")
    else:
        print(f"journal: {len(journal)} campaign(s) recorded at {journal.path}")


# ---------------------------------------------------------------------- #
# commands
# ---------------------------------------------------------------------- #


def _cmd_train(args) -> int:
    workbench = _load_workbench(args.workbench)
    model = workbench.build_model()
    train, evaluation = workbench.build_data(args.train_size, args.eval_size)
    loader = DataLoader(train, batch_size=args.batch_size, shuffle=True, rng=1)
    val = DataLoader(evaluation, batch_size=256)
    epochs = args.epochs or workbench.default_epochs
    trainer = Trainer(model, Adam(model.parameters(), lr=workbench.lr))
    result = trainer.fit(loader, epochs=epochs, val_loader=val)
    save_checkpoint(model, args.out, accuracy=result.final_val_accuracy, epochs=epochs)
    print(f"trained {args.workbench}: val accuracy {result.final_val_accuracy:.1%}")
    print(f"golden weights written to {args.out}")
    return 0


def _campaign_spec_from_args(args):
    steps = max(4, args.samples // args.chains)
    fast = getattr(args, "fast", None)
    if args.method == "forward":
        return ForwardSpec(p=args.p, samples=args.samples, chains=args.chains)
    if args.method == "mcmc":
        return McmcSpec(p=args.p, chains=args.chains, steps=steps, fast=fast)
    if args.method == "tempered":
        return TemperedSpec(
            p=args.p, beta=args.beta, chains=args.chains, steps=steps, fast=fast
        )
    if args.method == "tempering":
        return TemperingSpec(p=args.p, chains=args.chains, sweeps=steps, fast=fast)
    return AdaptiveSpec(p=args.p, chains=args.chains, max_steps=args.samples)


def _cmd_campaign(args) -> int:
    _validate_workers(args)
    injector, recipe = _campaign_setup(args)
    print(f"golden error: {injector.golden_error:.2%}")
    spec = _campaign_spec_from_args(args)
    journal = _open_journal(args, [spec])
    executor = None
    if args.workers > 1 or journal is not None or _needs_executor(args):
        # the executor path journals completed tasks even at workers=1
        executor = _resilient_executor(recipe, args, journal)
        campaign = executor.run([spec])[0]
    else:
        campaign = injector.run(spec)
        estimator_mod.publish_outcome(0, campaign, spec=spec, target=injector.spec)
    if campaign is None:  # quarantined under --on-failure degrade
        failure = executor.stats.failed_tasks[0] if executor.stats.failed_tasks else None
        reason = failure.reason if failure else "task failed"
        print(f"campaign FAILED ({reason}); no result (ran with --on-failure degrade)")
        _print_journal_status(journal, executor)
        _print_executor_summary(executor)
        return 1
    if isinstance(campaign, tuple):  # tempered: (result, weighted error)
        campaign, weighted = campaign
        print(f"importance-weighted prior error: {weighted:.2%}")
    print(campaign)
    print(format_table([campaign.summary_row()]))
    if campaign.completeness is not None:
        print(campaign.completeness)
    _print_journal_status(journal, executor)
    _print_executor_summary(executor)
    return 0


def _cmd_sweep(args) -> int:
    _validate_workers(args)
    injector, recipe = _campaign_setup(args)
    p_values = tuple(np.logspace(np.log10(args.p_min), np.log10(args.p_max), args.points))
    base_spec = ForwardSpec(p=float(p_values[0]), samples=args.samples, chains=args.chains)
    journal = _open_journal(args, [base_spec.with_p(float(p)) for p in p_values])
    executor = None
    if args.workers > 1 or _needs_executor(args):
        executor = _resilient_executor(recipe, args, journal)
    sweep = ProbabilitySweep(
        injector, p_values=p_values, spec=base_spec, executor=executor, journal=journal
    ).run()
    _print_journal_status(journal, executor)
    _print_executor_summary(executor)
    if sweep.degraded:
        accounting = sweep.accounting()
        print(f"DEGRADED result: {accounting['completed']}/{accounting['points']} "
              f"points completed; failed p = "
              + ", ".join(f"{entry['p']:.3g} ({entry['cause']})"
                          for entry in accounting["failed_points"]))
    if not sweep.points:
        print("no sweep points completed; nothing to report")
        return 1
    print(format_table(sweep.table()))
    print()
    print(
        line_plot(
            sweep.probabilities(), 100 * sweep.errors(), log_x=True,
            title="classification error (%) vs flip probability",
            x_label="p", y_label="% error", reference=100 * sweep.golden_error,
        )
    )
    fit = sweep.fit_regimes(truncate_saturation=True)
    print(f"\ntwo regimes: {fit.has_two_regimes}; knee at p = {fit.knee_p:.2e}")
    return 0


def _cmd_layerwise(args) -> int:
    _validate_workers(args)
    workbench = _load_workbench(args.workbench)
    model = workbench.build_model()
    load_checkpoint(model, args.checkpoint)
    _, evaluation = workbench.build_data(args.train_size, args.eval_size)
    features, labels = evaluation.arrays()
    spec = ForwardSpec(p=args.p, samples=args.samples, chains=1)
    journal = _open_journal(args, [spec])
    executor = None
    if args.workers > 1 or _needs_executor(args):
        executor = _resilient_executor(None, args, journal)
    campaign = LayerwiseCampaign(
        model, features[: args.eval_size], labels[: args.eval_size],
        p=args.p, samples=args.samples, chains=1, seed=args.seed,
        executor=executor, journal=journal,
        model_builder=functools.partial(build_workbench_model, args.workbench),
        fast=getattr(args, "fast", None),
    ).run()
    _print_journal_status(journal, executor)
    _print_executor_summary(executor)
    if campaign.degraded:
        accounting = campaign.accounting()
        print(f"DEGRADED result: {accounting['completed']}/{accounting['layers']} "
              f"layers completed; failed: "
              + ", ".join(f"{entry['layer']} ({entry['cause']})"
                          for entry in accounting["failed_layers"]))
    if not campaign.results:
        print("no layer campaigns completed; nothing to report")
        return 1
    print(format_table(campaign.table(), columns=["depth", "layer", "error_pct", "parameters"]))
    stats = campaign.depth_correlation()
    print(f"\ndepth vs error: Spearman rho = {stats['spearman_rho']:+.3f} (p = {stats['spearman_p']:.3f})")
    return 0


def _cmd_assess(args) -> int:
    from repro.core import assess_model

    workbench = _load_workbench(args.workbench)
    model = workbench.build_model()
    load_checkpoint(model, args.checkpoint)
    _, evaluation = workbench.build_data(args.train_size, args.eval_size)
    features, labels = evaluation.arrays()
    assessment = assess_model(
        model,
        features[: args.eval_size],
        labels[: args.eval_size],
        seed=args.seed,
        samples_per_point=args.samples,
    )
    report = assessment.to_markdown()
    print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"\nreport written to {args.out}")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import run_groups, suite_names
    from repro.bench.runner import bench_path

    if args.list:
        for name in suite_names():
            print(name)
        return 0
    if args.group:
        unknown = sorted(set(args.group) - set(suite_names()))
        if unknown:
            raise SystemExit(f"unknown bench group(s) {unknown}; choose from {suite_names()}")
    if args.check and args.filter:
        raise SystemExit("--check and --filter are mutually exclusive "
                         "(a partial run cannot be gated against a full baseline)")
    try:
        _, reports = run_groups(
            args.group or None,
            quick=args.quick,
            seed=args.seed,
            cache_dir=args.artifacts,
            out_dir=args.out_dir,
            case_filter=args.filter,
            check=args.check,
            baseline_dir=args.baseline_dir,
            tolerance=args.tolerance,
        )
    except FileNotFoundError as exc:
        raise SystemExit(str(exc)) from exc
    if args.check:
        failures = [report for report in reports if not report.passed]
        if failures:
            names = ", ".join(report.group for report in failures)
            print(f"bench gate FAILED for: {names}", file=sys.stderr)
            return 1
        print("bench gate passed")
    else:
        print(f"baselines live at {bench_path('<group>', args.out_dir)}")
    return 0


def _cmd_boundary(args) -> int:
    workbench = _load_workbench(args.workbench)
    if workbench.boundary_window is None:
        raise SystemExit(f"workbench {workbench.name!r} has no 2-D input window for boundary analysis")
    model = workbench.build_model()
    load_checkpoint(model, args.checkpoint)
    analysis = DecisionBoundaryAnalysis(
        model, bounds=workbench.boundary_window, resolution=args.resolution,
        fault_model=BernoulliBitFlipModel(args.p), seed=args.seed,
    )
    boundary_map = analysis.run(samples=args.samples)
    print(heatmap(boundary_map.log_flip_probability(), title="log10 P(flip)", legend="log10"))
    stats = boundary_map.distance_correlation()
    print(f"\nSpearman(distance, flip probability) = {stats['spearman_rho']:+.3f} "
          f"(p = {stats['spearman_p']:.2e})")
    return 0


def _cmd_top(args) -> int:
    from repro.obs.top import run_top

    if args.interval <= 0:
        raise SystemExit(f"top: --interval must be positive, got {args.interval}")
    if not args.source.startswith(("http://", "https://")) and not os.path.exists(args.source):
        raise SystemExit(
            f"top: no such file {args.source!r} "
            "(pass a --serve status URL or a --progress JSONL path)"
        )
    return run_top(
        args.source,
        interval_s=args.interval,
        frames=args.frames,
        clear=not args.no_clear,
    )


# ---------------------------------------------------------------------- #
# parser
# ---------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BDLFI: Bayesian fault-injection campaigns from the command line",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    train = subparsers.add_parser("train", help="train a golden network")
    train.add_argument("workbench", choices=sorted(WORKBENCHES))
    train.add_argument("--out", required=True, help="checkpoint path (.npz)")
    train.add_argument("--epochs", type=int, default=None)
    train.add_argument("--batch-size", type=int, default=64)
    train.add_argument("--train-size", type=int, default=800)
    train.add_argument("--eval-size", type=int, default=200)
    train.set_defaults(handler=_cmd_train)

    campaign = subparsers.add_parser("campaign", help="one fault-injection campaign")
    _add_common(campaign)
    campaign.add_argument("--p", type=float, default=1e-3, help="bit-flip probability")
    campaign.add_argument("--samples", type=int, default=200)
    campaign.add_argument("--chains", type=int, default=2)
    campaign.add_argument(
        "--method",
        choices=("forward", "mcmc", "tempered", "adaptive", "tempering"),
        default="forward",
    )
    campaign.add_argument(
        "--beta", type=float, default=8.0,
        help="inverse temperature for --method tempered (failure-biased walk, "
             "importance-reweighted back to the prior)",
    )
    campaign.add_argument(
        "--workers", type=int, default=1, help="worker processes for campaign execution"
    )
    _add_fast(campaign)
    _add_durability(campaign)
    _add_resilience(campaign)
    _add_observability(campaign)
    campaign.set_defaults(handler=_cmd_campaign)

    sweep = subparsers.add_parser("sweep", help="error vs flip-probability sweep (Figs. 2/4)")
    _add_common(sweep)
    sweep.add_argument("--p-min", type=float, default=1e-5)
    sweep.add_argument("--p-max", type=float, default=1e-1)
    sweep.add_argument("--points", type=int, default=9)
    sweep.add_argument("--samples", type=int, default=100)
    sweep.add_argument("--chains", type=int, default=2)
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; one campaign per sweep point fans out over the pool",
    )
    _add_fast(sweep)
    _add_durability(sweep)
    _add_resilience(sweep)
    _add_observability(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    layerwise = subparsers.add_parser("layerwise", help="per-layer campaign (Fig. 3)")
    _add_common(layerwise)
    layerwise.add_argument("--p", type=float, default=1e-3)
    layerwise.add_argument("--samples", type=int, default=50)
    layerwise.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; one campaign per layer fans out over the pool",
    )
    _add_fast(layerwise)
    _add_durability(layerwise)
    _add_resilience(layerwise)
    _add_observability(layerwise)
    layerwise.set_defaults(handler=_cmd_layerwise)

    assess = subparsers.add_parser("assess", help="full resilience assessment report")
    _add_common(assess)
    assess.add_argument("--samples", type=int, default=100, help="campaign draws per sweep point")
    assess.add_argument("--out", default=None, help="also write the markdown report here")
    _add_observability(assess)
    assess.set_defaults(handler=_cmd_assess)

    bench = subparsers.add_parser(
        "bench", help="run the reproducible benchmark suites (BENCH_*.json baselines)"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="quick tier: smaller grids/budgets, same case names (what CI gates on)",
    )
    bench.add_argument(
        "--group", action="append", default=None, metavar="NAME",
        help="suite to run (repeatable; default: all; see --list)",
    )
    bench.add_argument("--list", action="store_true", help="list available suites and exit")
    bench.add_argument(
        "--filter", default=None, metavar="PATTERN",
        help="fnmatch pattern over case names; filtered runs print timings "
             "but never write records or gate",
    )
    bench.add_argument(
        "--out-dir", default=".", metavar="DIR",
        help="directory for BENCH_<group>.json records (default: current directory)",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="after running, gate against committed baselines; non-zero exit on regression",
    )
    bench.add_argument(
        "--baseline-dir", default=None, metavar="DIR",
        help="where committed baselines live (default: --out-dir)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=2.0,
        help="max allowed current/baseline median ratio for --check (default: 2.0)",
    )
    bench.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="golden-checkpoint cache directory (default: benchmarks/_artifacts)",
    )
    bench.add_argument("--seed", type=int, default=2019)
    bench.set_defaults(handler=_cmd_bench)

    top = subparsers.add_parser(
        "top", help="live terminal dashboard for a running campaign"
    )
    top.add_argument(
        "source",
        help="a --serve status URL (http://HOST:PORT) or a --progress JSONL file",
    )
    top.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh interval (default: 1.0)",
    )
    top.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="render N frames then exit (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen (logs, dumb terminals)",
    )
    top.set_defaults(handler=_cmd_top)

    boundary = subparsers.add_parser("boundary", help="decision-boundary map (Fig. 1 (3))")
    _add_common(boundary)
    boundary.add_argument("--p", type=float, default=1e-3)
    boundary.add_argument("--samples", type=int, default=100)
    boundary.add_argument("--resolution", type=int, default=40)
    boundary.set_defaults(handler=_cmd_boundary)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _setup_observability(args)
    try:
        return args.handler(args)
    finally:
        _finalize_observability(args)
        obs.reset()


if __name__ == "__main__":
    sys.exit(main())
