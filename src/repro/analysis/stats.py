"""Resampling statistics and correlation helpers."""

from __future__ import annotations

import numpy as np
from scipy import stats as sps

from repro.bayes.intervals import central_tails
from repro.utils.rng import as_generator

__all__ = ["bootstrap_ci", "bootstrap_mean_difference", "permutation_test", "rank_correlation"]


def bootstrap_ci(
    samples: np.ndarray,
    statistic=np.mean,
    confidence: float = 0.95,
    n_boot: int = 2000,
    rng: int | np.random.Generator | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap interval for ``statistic(samples)``."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or samples.size < 2:
        raise ValueError("samples must be a 1-D array with at least 2 points")
    tails = central_tails(confidence)
    gen = as_generator(rng)
    indices = gen.integers(0, samples.size, size=(n_boot, samples.size))
    replicates = np.apply_along_axis(statistic, 1, samples[indices])
    lo, hi = np.quantile(replicates, tails)
    return float(lo), float(hi)


def bootstrap_mean_difference(
    a: np.ndarray,
    b: np.ndarray,
    confidence: float = 0.95,
    n_boot: int = 2000,
    rng: int | np.random.Generator | None = None,
) -> tuple[float, float, float]:
    """(mean(a) − mean(b), ci_lo, ci_hi) via independent resampling."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ValueError("both samples need at least 2 points")
    tails = central_tails(confidence)
    gen = as_generator(rng)
    idx_a = gen.integers(0, a.size, size=(n_boot, a.size))
    idx_b = gen.integers(0, b.size, size=(n_boot, b.size))
    diffs = a[idx_a].mean(axis=1) - b[idx_b].mean(axis=1)
    lo, hi = np.quantile(diffs, tails)
    return float(a.mean() - b.mean()), float(lo), float(hi)


def permutation_test(
    a: np.ndarray,
    b: np.ndarray,
    n_perm: int = 2000,
    rng: int | np.random.Generator | None = None,
) -> float:
    """Two-sided permutation p-value for a difference in means."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    gen = as_generator(rng)
    observed = abs(a.mean() - b.mean())
    pooled = np.concatenate([a, b])
    n_a = a.size
    count = 0
    for _ in range(n_perm):
        gen.shuffle(pooled)
        if abs(pooled[:n_a].mean() - pooled[n_a:].mean()) >= observed:
            count += 1
    # Add-one smoothing keeps the p-value away from an impossible exact 0.
    return (count + 1) / (n_perm + 1)


def rank_correlation(x: np.ndarray, y: np.ndarray) -> dict[str, float]:
    """Spearman ρ and Kendall τ with p-values, as a flat dict."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be aligned 1-D arrays")
    if x.size < 3:
        raise ValueError("need at least 3 points for rank correlation")
    spearman = sps.spearmanr(x, y)
    kendall = sps.kendalltau(x, y)
    return {
        "spearman_rho": float(spearman.statistic),
        "spearman_p": float(spearman.pvalue),
        "kendall_tau": float(kendall.statistic),
        "kendall_p": float(kendall.pvalue),
    }
