"""Table formatting and result persistence for the experiment harnesses."""

from __future__ import annotations

import os
from typing import Mapping, Sequence

import numpy as np

from repro.utils.persist import atomic_write_json, read_checked_json

__all__ = ["format_table", "format_series", "ResultWriter"]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0 or (1e-3 <= abs(value) < 1e5):
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(empty table)"
    columns = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in cells
    ]
    return "\n".join([header, rule, *body])


def format_series(name: str, x: np.ndarray, y: np.ndarray, x_name: str = "x", y_name: str = "y") -> str:
    """Compact two-column listing of a figure series."""
    lines = [f"{name}:", f"  {x_name:>12}  {y_name:>12}"]
    for xi, yi in zip(np.asarray(x), np.asarray(y)):
        lines.append(f"  {_fmt(float(xi)):>12}  {_fmt(float(yi)):>12}")
    return "\n".join(lines)


class ResultWriter:
    """Persist experiment outputs under a results directory as JSON.

    Arrays are converted to lists; every record is stamped with the
    experiment id so EXPERIMENTS.md can cite files directly. Writes are
    atomic (tmp file + ``os.replace``) and carry an embedded content
    checksum that :meth:`read` verifies, so a crash mid-write can never
    leave a torn or silently-corrupt result file.
    """

    def __init__(self, directory: str = "results") -> None:
        self.directory = directory

    def write(self, experiment_id: str, payload: Mapping[str, object]) -> str:
        path = os.path.join(self.directory, f"{experiment_id}.json")
        atomic_write_json(path, {"experiment": experiment_id, **payload}, default=_jsonify)
        return path

    def read(self, experiment_id: str) -> dict:
        path = os.path.join(self.directory, f"{experiment_id}.json")
        return read_checked_json(path)


def _jsonify(value: object):
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    raise TypeError(f"cannot serialise {type(value).__name__}")
