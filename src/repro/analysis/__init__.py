"""Statistical analysis and terminal reporting.

The offline environment has no plotting stack, so every paper figure is
emitted as (a) a numeric table and (b) an ASCII rendering, both produced by
this package. Statistics here back the experiment claims: bootstrap and
binomial intervals, permutation tests for distributional differences, and
rank correlations.
"""

from repro.analysis.stats import (
    bootstrap_ci,
    bootstrap_mean_difference,
    permutation_test,
    rank_correlation,
)
from repro.analysis.ascii_plot import line_plot, multi_line_plot, scatter_plot, histogram_plot, heatmap
from repro.analysis.report import format_table, format_series, ResultWriter

__all__ = [
    "bootstrap_ci",
    "bootstrap_mean_difference",
    "permutation_test",
    "rank_correlation",
    "line_plot",
    "multi_line_plot",
    "scatter_plot",
    "histogram_plot",
    "heatmap",
    "format_table",
    "format_series",
    "ResultWriter",
]
