"""Terminal renderings of the paper's figures.

No plotting stack exists offline, so the benchmark harnesses draw each
figure in ASCII: line plots for the error-vs-p sweeps (Figs. 2 and 4), a
bar-per-layer plot for Fig. 3, and a character-ramp heatmap for the
decision-boundary field of Fig. 1 ③.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["line_plot", "multi_line_plot", "scatter_plot", "histogram_plot", "heatmap"]

_RAMP = " .:-=+*#%@"


def _scale(values: np.ndarray, lo: float, hi: float, steps: int) -> np.ndarray:
    if hi <= lo:
        return np.zeros(len(values), dtype=int)
    scaled = (np.asarray(values, dtype=np.float64) - lo) / (hi - lo) * (steps - 1)
    return np.clip(np.round(scaled), 0, steps - 1).astype(int)


def line_plot(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 70,
    height: int = 18,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
    reference: float | None = None,
) -> str:
    """Render a single series; ``reference`` draws a horizontal marker line
    (used for the golden-run error in Figs. 2 and 4)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or x.size == 0:
        raise ValueError("x and y must be aligned non-empty 1-D arrays")
    plot_x = np.log10(x) if log_x else x
    y_all = np.append(y, reference) if reference is not None else y
    y_lo, y_hi = float(np.min(y_all)), float(np.max(y_all))
    pad = (y_hi - y_lo) * 0.05 or 1.0
    y_lo, y_hi = y_lo - pad, y_hi + pad

    grid = [[" "] * width for _ in range(height)]
    if reference is not None:
        ref_row = height - 1 - _scale(np.asarray([reference]), y_lo, y_hi, height)[0]
        for col in range(width):
            grid[ref_row][col] = "-"
    cols = _scale(plot_x, float(plot_x.min()), float(plot_x.max()), width)
    rows = height - 1 - _scale(y, y_lo, y_hi, height)
    for i in range(len(x) - 1):
        _draw_segment(grid, cols[i], rows[i], cols[i + 1], rows[i + 1])
    for col, row in zip(cols, rows):
        grid[row][col] = "o"

    lines = []
    if title:
        lines.append(title.center(width + 10))
    for r, row in enumerate(grid):
        label = ""
        if r == 0:
            label = f"{y_hi:8.2f} "
        elif r == height - 1:
            label = f"{y_lo:8.2f} "
        lines.append(f"{label:>9}|" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    x_lo_txt = f"{x.min():.1e}" if log_x else f"{x.min():.2f}"
    x_hi_txt = f"{x.max():.1e}" if log_x else f"{x.max():.2f}"
    axis = f"{x_lo_txt}  {x_label}  {x_hi_txt}".center(width)
    lines.append(" " * 10 + axis)
    if reference is not None:
        lines.append(" " * 10 + f"(---- reference: {reference:.3f} {y_label})".center(width))
    return "\n".join(lines)


def multi_line_plot(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    width: int = 70,
    height: int = 18,
    title: str = "",
    x_label: str = "x",
    log_x: bool = False,
) -> str:
    """Overlay several series on shared axes, one marker per series.

    Used for head-to-head figures (e.g. float32 vs int8 resilience,
    protected vs unprotected campaigns). Up to 6 series; the legend maps
    markers to names.
    """
    x = np.asarray(x, dtype=np.float64)
    if not series:
        raise ValueError("series must be non-empty")
    if len(series) > 6:
        raise ValueError(f"at most 6 series supported, got {len(series)}")
    markers = "o*x+#%"
    values = {name: np.asarray(v, dtype=np.float64) for name, v in series.items()}
    for name, v in values.items():
        if v.shape != x.shape:
            raise ValueError(f"series {name!r} shape {v.shape} does not match x {x.shape}")

    plot_x = np.log10(x) if log_x else x
    all_y = np.concatenate(list(values.values()))
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    pad = (y_hi - y_lo) * 0.05 or 1.0
    y_lo, y_hi = y_lo - pad, y_hi + pad

    grid = [[" "] * width for _ in range(height)]
    cols = _scale(plot_x, float(plot_x.min()), float(plot_x.max()), width)
    for marker, (name, y) in zip(markers, values.items()):
        rows = height - 1 - _scale(y, y_lo, y_hi, height)
        for i in range(len(x) - 1):
            _draw_segment(grid, cols[i], rows[i], cols[i + 1], rows[i + 1])
        for col, row in zip(cols, rows):
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title.center(width + 10))
    for r, row in enumerate(grid):
        label = f"{y_hi:8.2f} " if r == 0 else (f"{y_lo:8.2f} " if r == height - 1 else "")
        lines.append(f"{label:>9}|" + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    x_lo_txt = f"{x.min():.1e}" if log_x else f"{x.min():.2f}"
    x_hi_txt = f"{x.max():.1e}" if log_x else f"{x.max():.2f}"
    lines.append(" " * 10 + f"{x_lo_txt}  {x_label}  {x_hi_txt}".center(width))
    legend = "   ".join(f"'{marker}' = {name}" for marker, name in zip(markers, values))
    lines.append(" " * 10 + legend.center(width))
    return "\n".join(lines)


def _draw_segment(grid: list[list[str]], c0: int, r0: int, c1: int, r1: int) -> None:
    steps = max(abs(c1 - c0), abs(r1 - r0), 1)
    for t in range(steps + 1):
        col = round(c0 + (c1 - c0) * t / steps)
        row = round(r0 + (r1 - r0) * t / steps)
        if grid[row][col] == " ":
            grid[row][col] = "."


def scatter_plot(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 70,
    height: int = 18,
    title: str = "",
    marker: str = "x",
) -> str:
    """Point cloud (used for the layerwise error-vs-depth view of Fig. 3)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.size == 0:
        raise ValueError("x and y must be aligned non-empty arrays")
    grid = [[" "] * width for _ in range(height)]
    y_lo, y_hi = float(y.min()), float(y.max())
    pad = (y_hi - y_lo) * 0.05 or 1.0
    cols = _scale(x, float(x.min()), float(x.max()), width)
    rows = height - 1 - _scale(y, y_lo - pad, y_hi + pad, height)
    for col, row in zip(cols, rows):
        grid[row][col] = marker
    lines = [title.center(width)] if title else []
    lines.append(f"{y_hi + pad:8.2f} " + "")
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{y_lo - pad:8.2f} " + "+" + "-" * width)
    return "\n".join(lines)


def histogram_plot(
    counts: np.ndarray, edges: np.ndarray, width: int = 50, title: str = ""
) -> str:
    """Horizontal-bar histogram (the error distribution of Fig. 1 ③)."""
    counts = np.asarray(counts)
    edges = np.asarray(edges)
    if len(edges) != len(counts) + 1:
        raise ValueError("edges must be one longer than counts")
    peak = counts.max() if counts.size else 1
    lines = [title] if title else []
    for i, count in enumerate(counts):
        bar = "#" * int(math.ceil(width * count / peak)) if peak else ""
        lines.append(f"[{edges[i]:7.3f}, {edges[i+1]:7.3f})  {bar} {count}")
    return "\n".join(lines)


def heatmap(values: np.ndarray, title: str = "", legend: str = "") -> str:
    """Character-ramp rendering of a 2-D field (Fig. 1 ③ error-probability map)."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"heatmap expects a 2-D array, got shape {values.shape}")
    finite = values[np.isfinite(values)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 1.0
    span = hi - lo or 1.0
    lines = [title] if title else []
    for row in values[::-1]:  # render with y increasing upward
        chars = []
        for v in row:
            if not np.isfinite(v):
                chars.append("?")
            else:
                chars.append(_RAMP[int((v - lo) / span * (len(_RAMP) - 1))])
        lines.append("".join(chars))
    footer = f"scale: '{_RAMP[0]}'={lo:.3g} .. '{_RAMP[-1]}'={hi:.3g}"
    if legend:
        footer += f"  ({legend})"
    lines.append(footer)
    return "\n".join(lines)
