"""Experiment E5 — advantage #1: campaign completeness via MCMC mixing.

Two demonstrations:

1. diagnostics trajectory — R̂ and ESS of a multi-chain campaign as the
   sample count grows, showing convergence to the mixed regime;
2. adaptive stopping — the completeness criterion halts the campaign with
   a budget far below a conservative fixed-N campaign while matching its
   estimate.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import BayesianFaultInjector
from repro.faults import TargetSpec
from repro.mcmc import CompletenessCriterion, effective_sample_size, split_r_hat

FLIP_P = 5e-3
FIXED_BUDGET_STEPS = 500
CHAINS = 4


def test_completeness_diagnostics_trajectory(benchmark, golden_mlp_moons, moons_eval_batch, results_writer):
    eval_x, eval_y = moons_eval_batch
    injector = BayesianFaultInjector(
        golden_mlp_moons, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=2019
    )

    campaign = benchmark.pedantic(
        lambda: injector.mcmc_campaign(FLIP_P, chains=CHAINS, steps=FIXED_BUDGET_STEPS),
        rounds=1,
        iterations=1,
    )

    matrix = campaign.chains.matrix()
    rows = []
    for steps in (50, 100, 200, 350, FIXED_BUDGET_STEPS):
        prefix = matrix[:, :steps]
        rows.append(
            {
                "steps_per_chain": steps,
                "r_hat": split_r_hat(prefix),
                "ess": effective_sample_size(prefix),
                "estimate_pct": 100 * prefix.mean(),
            }
        )

    print("\n=== E5a: mixing diagnostics vs campaign size (MCMC, 4 chains) ===")
    print(format_table(rows))
    print(f"final completeness: {campaign.completeness}")

    results_writer.write("E5a_mixing_trajectory", {"rows": rows, "p": FLIP_P})

    assert rows[-1]["r_hat"] < 1.1  # chains agree by the end
    assert rows[-1]["ess"] > rows[0]["ess"]


def test_completeness_adaptive_stopping(benchmark, golden_mlp_moons, moons_eval_batch, results_writer):
    eval_x, eval_y = moons_eval_batch
    injector = BayesianFaultInjector(
        golden_mlp_moons, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=77
    )
    criterion = CompletenessCriterion(stderr_tolerance=0.01, min_ess=100)

    adaptive = benchmark.pedantic(
        lambda: injector.run_until_complete(
            FLIP_P, criterion=criterion, chains=CHAINS, batch_steps=50, max_steps=1000
        ),
        rounds=1,
        iterations=1,
    )
    reference = injector.forward_campaign(FLIP_P, samples=CHAINS * FIXED_BUDGET_STEPS, chains=CHAINS)

    rows = [
        {
            "campaign": "adaptive (stop when mixed)",
            "evaluations": adaptive.total_evaluations,
            "estimate_pct": 100 * adaptive.mean_error,
            "complete": str(adaptive.completeness.complete),
        },
        {
            "campaign": f"fixed N={CHAINS * FIXED_BUDGET_STEPS}",
            "evaluations": reference.total_evaluations,
            "estimate_pct": 100 * reference.mean_error,
            "complete": "n/a",
        },
    ]
    print("\n=== E5b: adaptive stopping vs fixed budget ===")
    print(format_table(rows))
    print(f"adaptive report: {adaptive.completeness}")

    results_writer.write(
        "E5b_adaptive_stopping",
        {
            "adaptive_evaluations": adaptive.total_evaluations,
            "fixed_evaluations": reference.total_evaluations,
            "adaptive_estimate": adaptive.mean_error,
            "fixed_estimate": reference.mean_error,
        },
    )

    assert adaptive.completeness.complete
    assert adaptive.total_evaluations < reference.total_evaluations
    assert abs(adaptive.mean_error - reference.mean_error) < 0.05
