"""Ablation A3 — micro-benchmarks of the hot paths.

pytest-benchmark timings for the primitives campaign cost is built from:
mask sampling, XOR application, a faulted forward pass, one MCMC step, and
the conv2d kernel.
"""

import numpy as np

from repro.bits import apply_bit_mask, sample_bernoulli_mask
from repro.core import BayesianFaultInjector
from repro.faults import BernoulliBitFlipModel, FaultConfiguration, TargetSpec
from repro.mcmc import MetropolisHastingsSampler, PriorTarget, SingleBitToggle
from repro.tensor import Tensor, conv2d, no_grad


def test_mask_sampling_small_p(benchmark):
    """Sparse Bernoulli mask draw over 1M floats at p=1e-5."""
    rng = np.random.default_rng(0)
    benchmark(lambda: sample_bernoulli_mask((1_000_000,), 1e-5, rng))


def test_mask_application(benchmark):
    values = np.random.default_rng(1).normal(size=1_000_000).astype(np.float32)
    mask = sample_bernoulli_mask((1_000_000,), 1e-4, np.random.default_rng(2))
    benchmark(lambda: apply_bit_mask(values, mask))


def test_faulted_forward_pass_mlp(benchmark, golden_mlp_moons, moons_eval_batch):
    eval_x, eval_y = moons_eval_batch
    injector = BayesianFaultInjector(
        golden_mlp_moons, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )
    model = BernoulliBitFlipModel(1e-3)
    statistic = injector.make_statistic(model, np.random.default_rng(3))
    rng = np.random.default_rng(4)
    configuration = FaultConfiguration.sample(injector.parameter_targets, model, rng)
    benchmark(lambda: statistic(configuration))


def test_mcmc_step_cost(benchmark, golden_mlp_moons, moons_eval_batch):
    eval_x, eval_y = moons_eval_batch
    injector = BayesianFaultInjector(
        golden_mlp_moons, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )
    fault_model = BernoulliBitFlipModel(1e-3)
    sampler = MetropolisHastingsSampler(
        PriorTarget(fault_model),
        SingleBitToggle(injector.parameter_targets),
        injector.make_statistic(fault_model, np.random.default_rng(5)),
        initial=lambda r: FaultConfiguration.sample(injector.parameter_targets, fault_model, r),
    )
    rng = np.random.default_rng(6)
    benchmark(lambda: sampler.run_chain(10, rng))


def test_batched_campaign_throughput(benchmark, golden_mlp_moons, moons_eval_batch):
    """Vectorised 200-configuration campaign (vs one-at-a-time in
    test_faulted_forward_pass_mlp × 200)."""
    from repro.core import BatchedMLPEvaluator

    eval_x, eval_y = moons_eval_batch
    injector = BayesianFaultInjector(
        golden_mlp_moons, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )
    evaluator = BatchedMLPEvaluator(injector)
    model = BernoulliBitFlipModel(1e-3)
    rng = np.random.default_rng(8)
    configurations = [
        FaultConfiguration.sample(injector.parameter_targets, model, rng) for _ in range(200)
    ]
    benchmark(lambda: evaluator.evaluate(configurations))


def test_conv2d_forward(benchmark):
    rng = np.random.default_rng(7)
    x = Tensor(rng.normal(size=(16, 16, 12, 12)).astype(np.float32))
    w = Tensor(rng.normal(size=(32, 16, 3, 3)).astype(np.float32))

    def run():
        with no_grad():
            return conv2d(x, w, stride=1, padding=1)

    benchmark(run)


def test_resnet_inference(benchmark, golden_resnet_images, resnet_image_eval):
    eval_x, _ = resnet_image_eval
    x = Tensor(eval_x)

    def run():
        with no_grad():
            return golden_resnet_images(x)

    benchmark(run)
